//! Integration tests for the feature modules layered on top of the core
//! pipeline: paths/completeness, projection, schema diffing, streaming
//! inference and counting fusion — all exercised on the realistic dataset
//! profiles.

use typefuse::infer::streaming::infer_type_from_str;
use typefuse::infer::{project, CountingFuser};
use typefuse::prelude::*;
use typefuse::types::diff::{diff, SchemaChange};
use typefuse::types::paths::{covers_value_paths, type_paths, value_paths};
use typefuse::types::summary::TypeSummary;

const SEED: u64 = 424242;

fn schema_of(profile: Profile, n: usize) -> (Vec<Value>, Type) {
    let values: Vec<Value> = profile.generate(SEED, n).collect();
    let schema = JobConfig::new()
        .without_type_stats()
        .build()
        .run_values(values.clone())
        .schema;
    (values, schema)
}

#[test]
fn completeness_on_every_profile() {
    // Section 1's headline property on realistic data: every traversable
    // value path is a traversable schema path, and vice versa every
    // schema path is witnessed by at least one record.
    for profile in Profile::ALL {
        let (values, schema) = schema_of(profile, 200);
        for v in &values {
            assert!(
                covers_value_paths(&schema, v),
                "{profile}: paths not covered"
            );
        }
        let sp = type_paths(&schema);
        let mut witnessed = std::collections::BTreeSet::new();
        for v in &values {
            witnessed.extend(value_paths(v));
        }
        assert_eq!(
            sp, witnessed,
            "{profile}: schema paths must be exactly the witnessed paths"
        );
    }
}

#[test]
fn projection_prunes_nytimes_to_a_headline_view() {
    let (values, _) = schema_of(Profile::NYTimes, 50);
    let requirement = typefuse::types::parse_type(
        "{headline: {main: Str}, pub_date: Str, word_count: Num + Str}",
    )
    .unwrap();
    for v in &values {
        let projected = project(v, &requirement);
        // Much smaller…
        assert!(
            projected.tree_size() * 3 < v.tree_size(),
            "not much smaller"
        );
        // …but still carrying the requested paths.
        assert!(projected.get("headline").is_some());
        assert!(projected.get("pub_date").is_some());
        assert!(projected.get("snippet").is_none(), "unrequested field kept");
    }
}

#[test]
fn diff_detects_profile_parameter_drift() {
    use typefuse::datagen::nytimes::NYTimesProfile;
    use typefuse::datagen::DatasetProfile;

    // Same profile, but the producer stops emitting the kicker variant:
    // the kicker fields must show up as removed.
    let before: Vec<Value> = NYTimesProfile::default().generate(SEED, 300).collect();
    let after_profile = NYTimesProfile {
        kicker_variant_prob: 0.0,
        ..Default::default()
    };
    let after: Vec<Value> = after_profile.generate(SEED, 300).collect();

    let old = JobConfig::new()
        .without_type_stats()
        .build()
        .run_values(before)
        .schema;
    let new = JobConfig::new()
        .without_type_stats()
        .build()
        .run_values(after)
        .schema;
    let changes = diff(&old, &new);
    let removed: Vec<&str> = changes
        .iter()
        .filter_map(|c| match c {
            SchemaChange::Removed { path } => Some(path.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        removed.contains(&"$.headline.kicker"),
        "changes: {changes:?}"
    );
    assert!(removed.contains(&"$.headline.content_kicker"));
    // print_headline flips from optional to mandatory (it is now the only
    // variant).
    assert!(changes.iter().any(|c| matches!(
        c,
        SchemaChange::OptionalityChanged { path, was_optional: true } if path == "$.headline.print_headline"
    )));
}

#[test]
fn streaming_inference_matches_tree_on_profiles() {
    for profile in Profile::ALL {
        for v in profile.generate(SEED, 60) {
            let text = v.to_string();
            let direct = infer_type_from_str(&text).unwrap();
            assert_eq!(direct, typefuse::infer::infer_type(&v), "{profile}");
        }
    }
}

#[test]
fn counting_fuser_exposes_the_twitter_split() {
    let values: Vec<Value> = Profile::Twitter.generate(SEED, 2000).collect();
    let mut cf = CountingFuser::new();
    values.iter().for_each(|v| cf.absorb(v));
    let cs = cf.finish();

    let delete_count = cs.path_counts.get("$.delete").copied().unwrap_or(0);
    let text_count = cs.path_counts.get("$.text").copied().unwrap_or(0);
    assert!(delete_count > 0, "deletes present");
    assert!(
        delete_count * 10 < text_count,
        "deletes ({delete_count}) are a small fraction of tweets ({text_count})"
    );
    // A tweet path and a delete path never co-occur, so no path spans all
    // records — mandatory_paths must be empty for this mixed feed.
    assert!(cs.mandatory_paths().is_empty());
}

#[test]
fn summary_explains_wikidata_blowup() {
    let (_, github) = schema_of(Profile::GitHub, 300);
    let (_, wikidata) = schema_of(Profile::Wikidata, 300);
    let (g, w) = (TypeSummary::of(&github), TypeSummary::of(&wikidata));

    // Wikidata's fused size is dominated by record fields coming from
    // ids-as-keys: an order of magnitude more fields, more optional
    // fields and more record nodes (one per keyed entry) than the
    // homogeneous GitHub schema.
    assert!(
        w.fields > g.fields * 5,
        "wikidata fields {} vs github {}",
        w.fields,
        g.fields
    );
    assert!(
        w.optional_fields > g.optional_fields * 5,
        "wikidata optional fields {} vs github {}",
        w.optional_fields,
        g.optional_fields
    );
    assert!(
        w.records > g.records * 5,
        "wikidata records {} vs github {}",
        w.records,
        g.records
    );
    assert!(
        g.optional_ratio() < 0.5,
        "github optional ratio {}",
        g.optional_ratio()
    );
}

#[test]
fn json_schema_export_is_valid_json_for_all_profiles() {
    for profile in Profile::ALL {
        let (_, schema) = schema_of(profile, 100);
        let doc = typefuse::types::export::to_json_schema_document(&schema);
        let text = typefuse::json::to_string_pretty(&doc);
        let back = parse_value(&text).expect("export emits valid JSON");
        assert_eq!(
            back.get("$schema").and_then(Value::as_str),
            Some("https://json-schema.org/draft/2020-12/schema")
        );
    }
}

#[test]
fn incremental_plus_diff_gives_change_feed() {
    // Maintain a schema over a stream; each time it changes, the diff
    // against the previous snapshot is non-empty and anchored at real
    // paths.
    let values: Vec<Value> = Profile::Twitter.generate(SEED, 400).collect();
    let mut inc = Incremental::new();
    let mut snapshot = Type::Bottom;
    let mut change_events = 0;
    for v in &values {
        inc.absorb(v);
        if inc.schema() != &snapshot {
            // Note: some syntactic changes are invisible to `diff` by
            // design — a positional array widening to its starred form
            // keeps the same paths and kinds — so the diff may be empty
            // even though the schema changed syntactically.
            let changes = diff(&snapshot, inc.schema());
            for c in &changes {
                assert!(c.path().starts_with('$'), "malformed path in {c}");
            }
            if !changes.is_empty() {
                change_events += 1;
            }
            snapshot = inc.schema().clone();
        }
    }
    assert!(
        change_events > 3,
        "the stream should widen the schema a few times"
    );
    assert!(
        change_events < 100,
        "the schema must stabilise, not churn ({change_events} changes)"
    );
}

#[test]
fn wikidata_sites_are_detected_as_map_like() {
    use typefuse::infer::{find_map_like, MapLikeConfig};

    let (_, schema) = schema_of(Profile::Wikidata, 400);
    let sites = find_map_like(&schema, MapLikeConfig::default());
    let paths: Vec<&str> = sites.iter().map(|s| s.path.as_str()).collect();
    // The ids-as-keys sites the paper blames for Wikidata's bad fusion.
    assert!(paths.contains(&"$.claims"), "sites: {paths:?}");
    assert!(paths.contains(&"$.labels"), "sites: {paths:?}");
    let claims = sites.iter().find(|s| s.path == "$.claims").unwrap();
    assert!(claims.keys > 100, "claims keys {}", claims.keys);
    assert!(
        claims.compression() > 20.0,
        "compression {}",
        claims.compression()
    );

    // GitHub has no such pathology.
    let (_, github) = schema_of(Profile::GitHub, 400);
    assert!(find_map_like(&github, MapLikeConfig::default()).is_empty());
}
