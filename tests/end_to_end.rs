//! End-to-end integration tests spanning all crates: datagen → json →
//! infer → engine → types.

use typefuse::infer::fuse;
use typefuse::pipeline::SchemaJob;
use typefuse::prelude::*;
use typefuse::types::is_subtype;

const N: usize = 400;
const SEED: u64 = 20170321; // EDBT 2017 :-)

fn run_profile(profile: Profile) -> (Vec<Value>, typefuse::pipeline::SchemaResult) {
    let values: Vec<Value> = profile.generate(SEED, N).collect();
    let result = JobConfig::new()
        .partitions(8)
        .build()
        .run_values(values.clone());
    (values, result)
}

#[test]
fn every_profile_schema_admits_every_record() {
    for profile in Profile::ALL {
        let (values, result) = run_profile(profile);
        for (i, v) in values.iter().enumerate() {
            assert!(
                result.schema.admits(v),
                "{profile}: record {i} not admitted by fused schema"
            );
        }
        result.schema.check_invariants().unwrap();
    }
}

#[test]
fn schemas_survive_the_text_round_trip() {
    for profile in Profile::ALL {
        let (_, result) = run_profile(profile);
        let printed = result.schema.to_string();
        let reparsed = typefuse::types::parse_type(&printed)
            .unwrap_or_else(|e| panic!("{profile}: cannot reparse schema: {e}"));
        assert_eq!(reparsed.to_string(), printed, "{profile}");
    }
}

#[test]
fn partition_count_never_changes_the_schema() {
    let values: Vec<Value> = Profile::Twitter.generate(SEED, 300).collect();
    let reference = JobConfig::new()
        .partitions(1)
        .build()
        .run_values(values.clone())
        .schema;
    for partitions in [2, 3, 16, 301] {
        let schema = JobConfig::new()
            .partitions(partitions)
            .build()
            .run_values(values.clone())
            .schema;
        assert_eq!(schema, reference, "partitions = {partitions}");
    }
}

#[test]
fn worker_count_never_changes_the_schema() {
    let values: Vec<Value> = Profile::Wikidata.generate(SEED, 200).collect();
    let reference = JobConfig::new()
        .workers(1)
        .build()
        .run_values(values.clone())
        .schema;
    for workers in [2, 4, 8] {
        let schema = JobConfig::new()
            .workers(workers)
            .build()
            .run_values(values.clone())
            .schema;
        assert_eq!(schema, reference, "workers = {workers}");
    }
}

#[test]
fn compaction_profile_shapes_match_the_paper() {
    // Table 2 vs Table 4: homogeneous GitHub compacts near 1x; Wikidata's
    // ids-as-keys blow the fused type up well past the average input type.
    let (_, github) = run_profile(Profile::GitHub);
    let (_, wikidata) = run_profile(Profile::Wikidata);

    assert!(
        github.compaction_ratio() < 2.0,
        "github ratio {:.2} should be small",
        github.compaction_ratio()
    );
    assert!(
        wikidata.compaction_ratio() > github.compaction_ratio() * 2.0,
        "wikidata ({:.2}) should compact much worse than github ({:.2})",
        wikidata.compaction_ratio(),
        github.compaction_ratio()
    );
}

#[test]
fn distinct_type_counts_reflect_heterogeneity() {
    let (_, github) = run_profile(Profile::GitHub);
    let (_, wikidata) = run_profile(Profile::Wikidata);
    // GitHub: slow distinct-type growth. Wikidata: nearly all distinct.
    assert!(
        github.type_stats.distinct < N / 2,
        "github distinct = {}",
        github.type_stats.distinct
    );
    assert!(
        wikidata.type_stats.distinct > (N * 9) / 10,
        "wikidata distinct = {}",
        wikidata.type_stats.distinct
    );
}

#[test]
fn twitter_min_type_is_the_delete_envelope() {
    let (_, twitter) = run_profile(Profile::Twitter);
    // Deletes dominate the min column (Table 3 reports 7; our value model
    // counts field nodes, giving 10-11 for the same envelope).
    assert!(
        twitter.type_stats.min_size <= 12,
        "min type size {} too large — deletes missing?",
        twitter.type_stats.min_size
    );
    assert!(twitter.type_stats.max_size > 100);
}

#[test]
fn growing_a_dataset_only_widens_the_schema() {
    // More data can only move the schema up the subtype order.
    let all: Vec<Value> = Profile::NYTimes.generate(SEED, 300).collect();
    let small = SchemaJob::new().run_values(all[..100].to_vec()).schema;
    let large = SchemaJob::new().run_values(all.clone()).schema;
    let merged = fuse(&small, &large);
    assert_eq!(merged, large, "small ⊔ large must equal large");
    assert!(is_subtype(&small, &large));
}

#[test]
fn ndjson_files_round_trip_through_the_pipeline() {
    // Serialize a generated dataset to NDJSON text, read it back through
    // the real parser, and check the schema matches the in-memory run.
    let values: Vec<Value> = Profile::GitHub.generate(SEED, 100).collect();
    let mut ndjson = Vec::new();
    typefuse::json::ndjson::write_ndjson(&mut ndjson, &values).unwrap();

    let from_text = SchemaJob::new().run_ndjson(&ndjson[..]).unwrap();
    let from_memory = SchemaJob::new().run_values(values);
    assert_eq!(from_text.schema, from_memory.schema);
    assert_eq!(from_text.records, from_memory.records);
}

#[test]
fn map_paths_are_byte_identical_on_every_profile() {
    // The acceptance bar for the event fast path: on all four workload
    // profiles, the default event route and the tree route produce
    // byte-identical schemas and the same statistics.
    for profile in Profile::ALL {
        let values: Vec<Value> = profile.generate(SEED, 200).collect();
        let mut ndjson = Vec::new();
        typefuse::json::ndjson::write_ndjson(&mut ndjson, &values).unwrap();

        let via_events = JobConfig::new()
            .map_path(MapPath::Events)
            .build()
            .run_ndjson(&ndjson[..])
            .unwrap();
        let via_values = JobConfig::new()
            .map_path(MapPath::Values)
            .build()
            .run_ndjson(&ndjson[..])
            .unwrap();
        assert_eq!(
            via_events.schema.to_string(),
            via_values.schema.to_string(),
            "{profile}: schemas must render identically"
        );
        assert_eq!(via_events.schema, via_values.schema, "{profile}");
        assert_eq!(via_events.records, via_values.records, "{profile}");
        assert_eq!(via_events.type_stats, via_values.type_stats, "{profile}");
        assert_eq!(via_events.fused_size, via_values.fused_size, "{profile}");
    }
}

#[test]
fn source_api_routes_agree() {
    // One job, three sources: values, a pre-partitioned dataset, and an
    // NDJSON stream all land on the same schema.
    let values: Vec<Value> = Profile::Twitter.generate(SEED, 120).collect();
    let mut ndjson = Vec::new();
    typefuse::json::ndjson::write_ndjson(&mut ndjson, &values).unwrap();
    let job = JobConfig::new().partitions(6).build();

    let via_values = job.run(Source::values(values.clone())).unwrap();
    let dataset = Dataset::from_vec(values, 6);
    let via_dataset = job.run(Source::dataset(&dataset)).unwrap();
    let via_ndjson = job.run(Source::ndjson(&ndjson[..])).unwrap();

    assert_eq!(via_values.schema, via_dataset.schema);
    assert_eq!(via_values.schema, via_ndjson.schema);
    assert_eq!(via_ndjson.records, via_values.records);
}

#[test]
fn mixed_profile_stream_fuses_into_a_union_free_top_record() {
    // Records from different sources still fuse into one record type
    // (all profiles emit records, so the top level is a single record
    // with everything optional that is not shared).
    let mut values: Vec<Value> = Profile::GitHub.generate(SEED, 50).collect();
    values.extend(Profile::Twitter.generate(SEED, 50));
    let result = SchemaJob::new().run_values(values.clone());
    assert!(matches!(result.schema, Type::Record(_)));
    for v in &values {
        assert!(result.schema.admits(v));
    }
}

#[test]
fn incremental_maintenance_matches_batch_on_real_profiles() {
    for profile in [Profile::GitHub, Profile::NYTimes] {
        let values: Vec<Value> = profile.generate(SEED, 150).collect();
        let mut inc = Incremental::new();
        for v in &values {
            inc.absorb(v);
        }
        let batch = SchemaJob::new().run_values(values);
        assert_eq!(inc.schema(), &batch.schema, "{profile}");
    }
}
