//! Route-differential test for the shape-dedup reduce: over every
//! synthetic profile, the dedup route must be byte-identical to the
//! plain reduce on both Map paths, and the dedup counting strategy must
//! reproduce the plain one's totals and per-path rows exactly.

use typefuse::pipeline::{DedupMode, MapPath, Source};
use typefuse::JobConfig;
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_engine::Dataset;
use typefuse_infer::{Counting, CountingFuser, DedupCounting, FuseConfig, Fuser};
use typefuse_json::Value;
use typefuse_obs::Recorder;

const RECORDS: usize = 1000;
const SEED: u64 = 20170321;

fn dataset(profile: Profile) -> (Vec<Value>, String) {
    let values: Vec<Value> = profile.generate(SEED, RECORDS).collect();
    let mut buf = Vec::new();
    typefuse_json::ndjson::write_ndjson(&mut buf, &values).unwrap();
    (values, String::from_utf8(buf).unwrap())
}

#[test]
fn dedup_event_and_value_routes_are_byte_identical() {
    for profile in Profile::ALL {
        let (_, text) = dataset(profile);
        let baseline = JobConfig::new()
            .dedup(DedupMode::Off)
            .map_path(MapPath::Values)
            .build()
            .run(Source::ndjson(text.as_bytes()))
            .unwrap();
        for mode in [DedupMode::On, DedupMode::Auto] {
            for path in [MapPath::Events, MapPath::Values] {
                let run = JobConfig::new()
                    .dedup(mode)
                    .map_path(path)
                    .partitions(3)
                    .build()
                    .run(Source::ndjson(text.as_bytes()))
                    .unwrap();
                assert_eq!(
                    run.schema.to_string(),
                    baseline.schema.to_string(),
                    "{profile} {mode:?} {path:?}: schema text diverged"
                );
                assert_eq!(run.schema, baseline.schema, "{profile} {mode:?} {path:?}");
                assert_eq!(run.records, baseline.records, "{profile}");
            }
        }
    }
}

#[test]
fn dedup_counting_totals_match_plain_counting() {
    let recorder = Recorder::disabled();
    let runtime = typefuse_engine::Runtime::default();
    let plan = typefuse_engine::ReducePlan::default();
    for profile in Profile::ALL {
        let (values, _) = dataset(profile);
        let data = Dataset::from_vec(values, 4);

        let (acc, _) = data.fuse_values(&runtime, plan, &Counting, &recorder);
        let plain = acc.unwrap_or_else(CountingFuser::new).finish();

        let fuser = DedupCounting::new(FuseConfig::default());
        let (acc, _) = data.fuse_values(&runtime, plan, &fuser, &recorder);
        let dedup = acc.unwrap_or_else(|| fuser.empty()).finish();

        assert_eq!(dedup.total, plain.total, "{profile}");
        assert_eq!(dedup.schema, plain.schema, "{profile}");
        assert_eq!(
            dedup.path_counts, plain.path_counts,
            "{profile}: per-path presence counts diverged"
        );
    }
}

#[test]
fn dedup_route_surfaces_its_counters() {
    // GitHub is the high-redundancy profile: far fewer shapes than
    // records, so Auto must pick the dedup route and the cache must hit.
    let (_, text) = dataset(Profile::GitHub);
    let rec = Recorder::enabled();
    let run = JobConfig::new()
        .dedup(DedupMode::Auto)
        .recorder(rec.clone())
        .build()
        .run(Source::ndjson(text.as_bytes()))
        .unwrap();
    let report = run.run_report(&rec);
    assert_eq!(report.counters["records"], RECORDS as u64);
    assert_eq!(report.counters["infer.dedup"], 1, "auto must pick dedup");
    let distinct = report.counters["infer.distinct_shapes"];
    assert!(
        distinct > 0 && distinct < RECORDS as u64 / 2,
        "github shapes should repeat (distinct = {distinct})"
    );
    assert!(report.counters["fuse.cache_hits"] > 0);
    assert_eq!(
        report.counters["fuse.calls"],
        report.counters["fuse.cache_misses"]
    );
}
