//! Route-differential suite for the raw-shape signature cache
//! (`MapPath::Shape`): over every synthetic profile, the shape route
//! must be byte-identical to the events and tree routes for any worker
//! count, partitioning, dedup mode, and error policy — including the
//! exact bad-record reports — plus property tests pinning the SWAR
//! structural scan and signature soundness on adversarial escape,
//! unicode, and block-boundary inputs.

use proptest::prelude::*;
use typefuse::faults::ErrorPolicy;
use typefuse::pipeline::{DedupMode, MapPath, Source};
use typefuse::JobConfig;
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_json::scan::{scan, scan_scalar};
use typefuse_json::{ParserOptions, Value};
use typefuse_obs::Recorder;

const RECORDS: usize = 1000;
const SEED: u64 = 20170321;

fn dataset(profile: Profile) -> String {
    let values: Vec<Value> = profile.generate(SEED, RECORDS).collect();
    let mut buf = Vec::new();
    typefuse_json::ndjson::write_ndjson(&mut buf, &values).unwrap();
    String::from_utf8(buf).unwrap()
}

/// Corrupt every 37th line so the error policies have work to do. The
/// corruptions hit different parser stages: truncation, a bare token,
/// and a broken escape.
fn corrupt(text: &str) -> String {
    let mut out = String::new();
    for (i, line) in text.lines().enumerate() {
        if i % 37 == 7 {
            match i % 3 {
                0 => out.push_str(&line[..line.len() / 2]),
                1 => out.push_str("nul"),
                _ => out.push_str("{\"k\": \"\\q\"}"),
            }
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn shape_route_is_byte_identical_across_the_matrix() {
    for profile in Profile::ALL {
        let text = dataset(profile);
        let baseline = JobConfig::new()
            .map_path(MapPath::Events)
            .build()
            .run(Source::ndjson(text.as_bytes()))
            .unwrap();
        for workers in [1, 4] {
            for partitions in [1, 5] {
                for dedup in [DedupMode::Off, DedupMode::On] {
                    for path in [MapPath::Shape, MapPath::Values] {
                        let run = JobConfig::new()
                            .map_path(path)
                            .workers(workers)
                            .partitions(partitions)
                            .dedup(dedup)
                            .build()
                            .run(Source::ndjson(text.as_bytes()))
                            .unwrap();
                        let tag = format!("{profile} {path:?} w{workers} p{partitions} {dedup:?}");
                        assert_eq!(
                            run.schema.to_string(),
                            baseline.schema.to_string(),
                            "{tag}: schema text diverged"
                        );
                        assert_eq!(run.schema, baseline.schema, "{tag}");
                        assert_eq!(run.records, baseline.records, "{tag}");
                    }
                }
            }
        }
    }
}

#[test]
fn shape_route_reports_the_same_errors_under_every_policy() {
    let dir = std::env::temp_dir().join("typefuse-shape-path");
    std::fs::create_dir_all(&dir).unwrap();
    for profile in Profile::ALL {
        let text = corrupt(&dataset(profile));
        for (name, policy) in [
            ("skip", ErrorPolicy::skip()),
            (
                "quarantine",
                ErrorPolicy::quarantine(dir.join(format!("{profile}.ndjson"))),
            ),
        ] {
            let mut runs = Vec::new();
            for path in [MapPath::Events, MapPath::Shape, MapPath::Values] {
                let run = JobConfig::new()
                    .map_path(path)
                    .workers(4)
                    .partitions(3)
                    .on_error(policy.clone())
                    .build()
                    .run(Source::ndjson(text.as_bytes()))
                    .unwrap();
                runs.push((path, run));
            }
            let (_, baseline) = &runs[0];
            assert!(
                !baseline.errors.is_empty(),
                "{profile}: corruption produced no bad records"
            );
            for (path, run) in &runs[1..] {
                let tag = format!("{profile} {name} {path:?}");
                assert_eq!(run.schema, baseline.schema, "{tag}");
                assert_eq!(run.records, baseline.records, "{tag}");
                assert_eq!(
                    run.errors.skipped(),
                    baseline.errors.skipped(),
                    "{tag}: skipped count diverged"
                );
                let sig = |r: &typefuse::faults::ErrorReport| {
                    r.records()
                        .iter()
                        .map(|b| (b.at, b.error.to_string(), b.text.clone()))
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    sig(&run.errors),
                    sig(&baseline.errors),
                    "{tag}: bad-record report diverged"
                );
            }
        }
    }
}

#[test]
fn shape_route_fails_fast_at_the_same_record() {
    let text = corrupt(&dataset(Profile::Twitter));
    let mut firsts = Vec::new();
    for path in [MapPath::Events, MapPath::Shape, MapPath::Values] {
        let err = JobConfig::new()
            .map_path(path)
            .workers(4)
            .partitions(3)
            .build()
            .run(Source::ndjson(text.as_bytes()))
            .unwrap_err();
        firsts.push((path, err.to_string()));
    }
    assert_eq!(firsts[0].1, firsts[1].1, "shape fail-fast diverged");
    assert_eq!(firsts[0].1, firsts[2].1, "values fail-fast diverged");
}

#[test]
fn shape_counters_account_for_every_record() {
    // GitHub is the shape-redundant profile: the cache must hit, and
    // hits + misses must cover the whole dataset exactly.
    let text = dataset(Profile::GitHub);
    let rec = Recorder::enabled();
    let run = JobConfig::new()
        .map_path(MapPath::Shape)
        .recorder(rec.clone())
        .partitions(2)
        .build()
        .run(Source::ndjson(text.as_bytes()))
        .unwrap();
    let report = run.run_report(&rec);
    let hits = report.counters["infer.shape_hits"];
    let misses = report.counters["infer.shape_misses"];
    assert_eq!(hits + misses, RECORDS as u64);
    assert!(
        hits > misses,
        "github should be cache-friendly (hits {hits}, misses {misses})"
    );
    // Hit-path records still count toward the fold's own bookkeeping.
    assert_eq!(report.counters["json.records"], RECORDS as u64);
}

proptest! {
    /// The SWAR scan agrees with the byte-at-a-time reference on
    /// arbitrary bytes — structural positions, quote positions,
    /// newlines, and the unterminated flag.
    #[test]
    fn swar_scan_matches_the_scalar_reference(input in proptest::collection::vec(any::<u8>(), 0..400)) {
        let fast = scan(&input);
        let slow = scan_scalar(&input);
        prop_assert_eq!(fast.structurals, slow.structurals);
        prop_assert_eq!(fast.quotes, slow.quotes);
        prop_assert_eq!(fast.newlines, slow.newlines);
        prop_assert_eq!(fast.unterminated, slow.unterminated);
    }

    /// Backslash runs ending in a quote, slid across every alignment of
    /// the 8-byte word and 64-byte block boundaries. Odd runs escape
    /// the quote (string stays open); even runs leave it meaningful.
    #[test]
    fn escape_runs_survive_any_block_alignment(pad in 0usize..130, run in 0usize..10) {
        let mut input = Vec::new();
        input.push(b'"');
        input.resize(1 + pad, b'x');
        input.resize(1 + pad + run, b'\\');
        input.push(b'"');
        input.extend_from_slice(b" {\"k\": [1, true]}");
        let fast = scan(&input);
        let slow = scan_scalar(&input);
        prop_assert_eq!(&fast.structurals, &slow.structurals);
        prop_assert_eq!(&fast.quotes, &slow.quotes);
        prop_assert_eq!(fast.unterminated, slow.unterminated);
        // Odd-length runs escape the closing quote: the string swallows
        // the rest of the input and never terminates.
        prop_assert_eq!(fast.unterminated, run % 2 == 1);
    }

    /// Signature soundness on adversarial records: equal signatures
    /// must never merge records the parser treats differently, so the
    /// cached fold stays byte-identical to the direct fold — including
    /// on records far longer than one 64-byte scan block, keys with
    /// unicode escapes, and deep nesting.
    #[test]
    fn cache_matches_the_direct_fold_on_generated_records(
        seed in any::<u64>(),
        n in 1usize..40,
        profile_idx in 0usize..4,
        filler in 0usize..300,
    ) {
        let profile = Profile::ALL[profile_idx];
        let mut lines: Vec<String> = profile
            .generate(seed, n)
            .map(|v| typefuse_json::to_string(&v))
            .collect();
        // One record longer than any scan block, with escapes near the
        // tail so the escape carry crosses block boundaries.
        lines.push(format!(
            "{{\"long\": \"{}\\\\\\\"tail\", \"\\u00e9\": [0.5, null, {{}}]}}",
            "x".repeat(filler)
        ));
        let opts = ParserOptions::default();
        let rec = Recorder::disabled();
        let mut cache = typefuse_infer::ShapeCache::new();
        for line in &lines {
            // Twice per line: the second pass exercises the hit path.
            let direct = typefuse_infer::streaming::infer_type_from_str(line).unwrap();
            let cached = cache.infer_line(line.as_bytes(), &opts, &rec).unwrap();
            let hit = cache.infer_line(line.as_bytes(), &opts, &rec).unwrap();
            prop_assert_eq!(&cached, &direct, "miss path diverged on {}", line);
            prop_assert_eq!(&hit, &direct, "hit path diverged on {}", line);
        }
        prop_assert!(cache.hits() >= lines.len() as u64);
    }
}
