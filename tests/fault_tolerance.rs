//! Fault-tolerant ingestion, end to end: error policies, quarantine,
//! retries, panic isolation — driven by the `typefuse-json` testkit's
//! fault-injection harness.
//!
//! The load-bearing property throughout: because fusion is commutative
//! and associative (Theorem 5.5), dropping a bad record is a local
//! decision — a corpus with k bad lines under `Skip`/`Quarantine`
//! yields *exactly* the schema of the clean subset alone, for every
//! worker count, map path, and dedup setting.

use std::io::BufReader;

use proptest::prelude::*;
use typefuse::faults::read_quarantine;
use typefuse::json::testkit::{Fault, FaultyReader};
use typefuse::pipeline::DedupMode;
use typefuse::prelude::*;
use typefuse::{BadRecord, Error, IoSite};
use typefuse_json::{ErrorKind, Position};

/// A dirty corpus and its clean subset.
fn dirty_corpus(records: usize, bad_every: usize) -> (String, String, u64) {
    let mut dirty = String::new();
    let mut clean = String::new();
    let mut bad = 0;
    for i in 0..records {
        if i % bad_every == bad_every - 1 {
            dirty.push_str("{definitely not json\n");
            bad += 1;
        } else {
            let line = format!(
                "{{\"id\":{i},\"name\":\"u{i}\",\"tags\":[{}],\"active\":{}}}\n",
                i % 3,
                i % 2 == 0
            );
            dirty.push_str(&line);
            clean.push_str(&line);
        }
    }
    (dirty, clean, bad)
}

fn job(workers: usize, map_path: MapPath, dedup: DedupMode) -> JobConfig {
    JobConfig::new()
        .workers(workers)
        .map_path(map_path)
        .dedup(dedup)
        .without_type_stats()
}

#[test]
fn skip_matches_the_clean_subset_across_the_whole_matrix() {
    let (dirty, clean, bad) = dirty_corpus(120, 7);
    let mut reference = None;
    for workers in [1, 2, 4] {
        for map_path in [MapPath::Events, MapPath::Values] {
            for dedup in [DedupMode::On, DedupMode::Off] {
                let label = format!("workers={workers} map_path={map_path:?} dedup={dedup:?}");
                let expect = job(workers, map_path, dedup)
                    .build()
                    .run(Source::ndjson(clean.as_bytes()))
                    .unwrap_or_else(|e| panic!("{label}: clean run failed: {e}"));
                let got = job(workers, map_path, dedup)
                    .on_error(ErrorPolicy::skip())
                    .build()
                    .run(Source::ndjson(dirty.as_bytes()))
                    .unwrap_or_else(|e| panic!("{label}: dirty run failed: {e}"));
                assert_eq!(got.schema, expect.schema, "{label}");
                assert_eq!(got.records, expect.records, "{label}");
                assert_eq!(got.errors.skipped(), bad, "{label}");
                // The error report itself is a monoid: byte-identical
                // across every configuration.
                match &reference {
                    None => reference = Some(got.errors.clone()),
                    Some(r) => assert_eq!(&got.errors, r, "{label}"),
                }
            }
        }
    }
}

#[test]
fn fail_fast_is_the_default_and_stops_at_the_earliest_line() {
    let (dirty, _, _) = dirty_corpus(40, 5);
    for workers in [1, 4] {
        let err = JobConfig::new()
            .workers(workers)
            .build()
            .run(Source::ndjson(dirty.as_bytes()))
            .unwrap_err();
        match err {
            Error::Parse(e) => assert_eq!(e.span().start.line, 5, "earliest bad line wins"),
            other => panic!("expected a parse error, got {other}"),
        }
    }
}

#[test]
fn budget_boundary_is_exact_and_partition_independent() {
    let (dirty, _, bad) = dirty_corpus(90, 9);
    for workers in [1, 3, 8] {
        let under = JobConfig::new()
            .workers(workers)
            .on_error(ErrorPolicy::Skip {
                max_errors: Some(bad),
            })
            .build()
            .run(Source::ndjson(dirty.as_bytes()));
        assert!(under.is_ok(), "budget == errors passes (workers={workers})");

        let over = JobConfig::new()
            .workers(workers)
            .on_error(ErrorPolicy::Skip {
                max_errors: Some(bad - 1),
            })
            .build()
            .run(Source::ndjson(dirty.as_bytes()))
            .unwrap_err();
        match over {
            Error::Budget { errors, limit, .. } => {
                assert_eq!(errors, bad);
                assert_eq!(limit, bad - 1);
            }
            other => panic!("expected a budget error, got {other}"),
        }
    }
}

#[test]
fn quarantine_sidecar_is_identical_across_worker_counts_and_replays() {
    let (dirty, _, bad) = dirty_corpus(80, 8);
    let dir = std::env::temp_dir().join("typefuse-fault-tolerance");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sidecars = Vec::new();
    for workers in [1, 4] {
        let sink = dir.join(format!("quarantine-w{workers}.ndjson"));
        let rec = Recorder::enabled();
        let result = JobConfig::new()
            .workers(workers)
            .recorder(rec.clone())
            .on_error(ErrorPolicy::quarantine(&sink))
            .build()
            .run(Source::ndjson(dirty.as_bytes()))
            .unwrap();
        assert_eq!(result.errors.skipped(), bad);
        let report = rec.snapshot();
        assert_eq!(report.counters["ingest.skipped"], bad);
        assert_eq!(report.counters["ingest.quarantined"], bad);
        // Replaying the sidecar recovers exactly the skipped records.
        let entries = read_quarantine(&sink).unwrap();
        assert_eq!(entries.len() as u64, bad);
        for (_, error, text) in &entries {
            assert!(!error.is_empty());
            assert_eq!(text.as_deref(), Some("{definitely not json"));
        }
        sidecars.push(std::fs::read(&sink).unwrap());
        std::fs::remove_file(&sink).ok();
    }
    assert_eq!(sidecars[0], sidecars[1], "sidecar bytes are deterministic");
}

#[test]
fn truncated_final_line_with_and_without_newline() {
    // A final line that is valid JSON parses whether or not the stream
    // ends in a newline; a *cut-off* final record is an error —
    // fail-fast aborts, skip drops exactly that record.
    for map_path in [MapPath::Events, MapPath::Values] {
        for tail_newline in [true, false] {
            let mut good = String::from("{\"a\":1}\n{\"a\":2,\"b\":\"x\"}");
            if tail_newline {
                good.push('\n');
            }
            let result = job(2, map_path, DedupMode::Off)
                .build()
                .run(Source::ndjson(good.as_bytes()))
                .unwrap();
            assert_eq!(result.records, 2, "{map_path:?} newline={tail_newline}");

            let mut cut = String::from("{\"a\":1}\n{\"a\":2,\"b\":");
            if tail_newline {
                cut.push('\n');
            }
            let err = job(2, map_path, DedupMode::Off)
                .build()
                .run(Source::ndjson(cut.as_bytes()))
                .unwrap_err();
            assert!(
                matches!(err, Error::Parse(_)),
                "{map_path:?} newline={tail_newline}: {err}"
            );

            let skipped = job(2, map_path, DedupMode::Off)
                .on_error(ErrorPolicy::skip())
                .build()
                .run(Source::ndjson(cut.as_bytes()))
                .unwrap();
            assert_eq!(skipped.records, 1);
            assert_eq!(skipped.errors.skipped(), 1);
            assert_eq!(skipped.errors.first().unwrap().at, 2);
        }
    }
}

#[test]
fn injected_worker_panic_surfaces_as_an_error_not_an_abort() {
    let (dirty, _, _) = dirty_corpus(64, 1000); // all clean
    for map_path in [MapPath::Events, MapPath::Values] {
        let rec = Recorder::enabled();
        let err = JobConfig::new()
            .workers(4)
            .map_path(map_path)
            .recorder(rec.clone())
            .chaos_panic_at(17)
            .build()
            .run(Source::ndjson(dirty.as_bytes()))
            .unwrap_err();
        match &err {
            Error::Worker(p) => {
                assert!(p.message.contains("injected chaos panic at line 17"), "{p}");
            }
            other => panic!("{map_path:?}: expected Error::Worker, got {other}"),
        }
        assert!(err.is_worker());
        assert!(rec.snapshot().counters["ingest.worker_panics"] >= 1);
    }
}

#[test]
fn transient_read_faults_are_retried_to_success() {
    let data = "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n";
    let rec = Recorder::enabled();
    let reader = FaultyReader::new(
        data.as_bytes(),
        vec![
            Fault::TransientAt {
                offset: 8,
                kind: std::io::ErrorKind::Interrupted,
                times: 2,
            },
            Fault::TransientAt {
                offset: 16,
                kind: std::io::ErrorKind::WouldBlock,
                times: 1,
            },
        ],
    );
    let result = JobConfig::new()
        .recorder(rec.clone())
        .retry(RetryPolicy::default())
        .build()
        .run(Source::ndjson(BufReader::new(reader)))
        .unwrap();
    assert_eq!(result.records, 3);
    assert_eq!(rec.snapshot().counters["ingest.retries"], 3);
}

#[test]
fn exhausted_retries_surface_as_io_with_the_line() {
    let data = "{\"a\":1}\n{\"a\":2}\n";
    let reader = FaultyReader::new(
        data.as_bytes(),
        vec![Fault::TransientAt {
            offset: 8,
            kind: std::io::ErrorKind::Interrupted,
            times: 100,
        }],
    );
    let err = JobConfig::new()
        .retry(RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        })
        .build()
        .run(Source::ndjson(BufReader::new(reader)))
        .unwrap_err();
    assert!(err.is_io(), "{err}");
    assert!(err.to_string().contains("line 2"), "{err}");
}

#[test]
fn permanent_read_faults_are_io_errors_under_every_policy() {
    let data = "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n";
    for policy in [ErrorPolicy::FailFast, ErrorPolicy::skip()] {
        let reader = FaultyReader::new(
            data.as_bytes(),
            vec![Fault::FailAt {
                offset: 12,
                kind: std::io::ErrorKind::ConnectionReset,
            }],
        );
        let err = JobConfig::new()
            .on_error(policy.clone())
            .build()
            .run(Source::ndjson(BufReader::new(reader)))
            .unwrap_err();
        assert!(err.is_io(), "{policy:?}: {err}");
    }
}

#[test]
fn corrupt_bytes_and_truncation_degrade_per_policy() {
    let data = "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n";
    // Corrupt one byte inside record 2: `{"a"X2}` is a parse error.
    let corrupted = || {
        FaultyReader::new(
            data.as_bytes(),
            vec![Fault::CorruptByte {
                offset: 12,
                byte: b'X',
            }],
        )
    };
    let err = SchemaJob::new()
        .run(Source::ndjson(BufReader::new(corrupted())))
        .unwrap_err();
    assert!(matches!(err, Error::Parse(_)), "{err}");

    let result = JobConfig::new()
        .on_error(ErrorPolicy::skip())
        .build()
        .run(Source::ndjson(BufReader::new(corrupted())))
        .unwrap();
    assert_eq!(result.records, 2);
    assert_eq!(result.errors.first().unwrap().at, 2);

    // Truncate the stream mid-record: the torn tail is one bad record.
    let truncated = FaultyReader::new(data.as_bytes(), vec![Fault::TruncateAt { offset: 12 }]);
    let result = JobConfig::new()
        .on_error(ErrorPolicy::skip())
        .build()
        .run(Source::ndjson(BufReader::new(truncated)))
        .unwrap();
    assert_eq!(result.records, 1);
    assert_eq!(result.errors.skipped(), 1);
}

#[test]
fn short_reads_change_nothing() {
    let (dirty, clean, _) = dirty_corpus(50, 6);
    let expect = SchemaJob::new()
        .run(Source::ndjson(clean.as_bytes()))
        .unwrap();
    let reader = FaultyReader::new(dirty.as_bytes(), vec![Fault::ShortReads { max: 3 }]);
    let got = JobConfig::new()
        .on_error(ErrorPolicy::skip())
        .build()
        .run(Source::ndjson(BufReader::new(reader)))
        .unwrap();
    assert_eq!(got.schema, expect.schema);
}

#[test]
fn oversized_lines_follow_the_policy() {
    let data = "{\"a\":1}\n{\"pad\":\"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\"}\n{\"a\":2}\n";
    let err = JobConfig::new()
        .max_line_bytes(32)
        .build()
        .run(Source::ndjson(data.as_bytes()))
        .unwrap_err();
    assert!(err.to_string().contains("line-size guard"), "{err}");

    let result = JobConfig::new()
        .max_line_bytes(32)
        .on_error(ErrorPolicy::skip())
        .build()
        .run(Source::ndjson(data.as_bytes()))
        .unwrap();
    assert_eq!(result.records, 2);
    assert_eq!(result.errors.skipped(), 1);
    assert_eq!(result.errors.first().unwrap().at, 2);
}

#[test]
fn io_site_formats_all_coordinates() {
    let err = Error::io_at(
        std::io::Error::other("boom"),
        IoSite::offset(123).in_split(4),
    );
    let msg = err.to_string();
    assert!(msg.contains("byte 123") && msg.contains("split 4"), "{msg}");
}

// ---- Property tests ---------------------------------------------------

fn bad_record(at: u64, tag: u8) -> BadRecord {
    BadRecord {
        at,
        error: typefuse_json::Error::at(
            ErrorKind::RecordTooLarge(tag as usize),
            Position {
                offset: at as usize,
                line: at as u32,
                column: 1,
            },
        ),
        text: Some(format!("line-{at}-{tag}")),
    }
}

proptest! {
    /// Merging per-partition reports in any grouping and order yields
    /// the same report — the property that makes skip deterministic.
    #[test]
    fn error_report_merge_is_partition_invariant(
        entries in prop::collection::vec((0u64..500, 0u8..4), 0..60),
        split in 1usize..6,
    ) {
        // One report built sequentially…
        let mut sequential = ErrorReport::new();
        for &(at, tag) in &entries {
            sequential.note(bad_record(at, tag));
        }
        // …versus the same entries split into `split` chunks, each
        // merged right-to-left.
        let chunk = entries.len().div_ceil(split).max(1);
        let mut partials: Vec<ErrorReport> = entries
            .chunks(chunk)
            .map(|part| {
                let mut r = ErrorReport::new();
                for &(at, tag) in part {
                    r.note(bad_record(at, tag));
                }
                r
            })
            .collect();
        partials.reverse();
        let mut merged = ErrorReport::new();
        for p in &partials {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.skipped(), entries.len() as u64);
    }

    /// The tentpole acceptance property: a corpus with bad lines under
    /// Skip yields exactly the clean subset's schema for any worker
    /// count and map path.
    #[test]
    fn skip_equals_clean_subset_for_random_corpora(
        lines in prop::collection::vec(0usize..6, 1..40),
        workers in 1usize..5,
        events in any::<bool>(),
    ) {
        const POOL: [&str; 6] = [
            "{\"a\":1}",
            "{\"a\":\"x\",\"b\":[1,2]}",
            "{\"b\":[],\"c\":{\"d\":true}}",
            "{oops",          // bad
            "[1,,2]",         // bad
            "nul",            // bad
        ];
        let map_path = if events { MapPath::Events } else { MapPath::Values };
        let mut dirty = String::new();
        let mut clean = String::new();
        for &i in &lines {
            dirty.push_str(POOL[i]);
            dirty.push('\n');
            if i < 3 {
                clean.push_str(POOL[i]);
                clean.push('\n');
            }
        }
        let expect = job(workers, map_path, DedupMode::Auto)
            .build()
            .run(Source::ndjson(clean.as_bytes()))
            .unwrap();
        let got = job(workers, map_path, DedupMode::Auto)
            .on_error(ErrorPolicy::skip())
            .build()
            .run(Source::ndjson(dirty.as_bytes()))
            .unwrap();
        prop_assert_eq!(got.schema, expect.schema);
        prop_assert_eq!(got.records, expect.records);
        let bad = lines.iter().filter(|&&i| i >= 3).count() as u64;
        prop_assert_eq!(got.errors.skipped(), bad);
    }
}
