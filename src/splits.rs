//! Parallel NDJSON file ingestion via byte-range splits.
//!
//! Spark reads HDFS files as block-aligned *input splits*: each task
//! seeks to its byte range and snaps to the next newline so every record
//! is processed exactly once. This module reproduces that mechanism for
//! local NDJSON files, so `SchemaJob`-style inference can run all cores
//! on one big file without first loading it into memory:
//!
//! * [`plan_splits`] — cut `[0, len)` into `n` ranges;
//! * [`read_split`] — the snap-to-newline rule: a split owns every line
//!   that *starts* within its range (the first split also owns offset 0);
//! * [`infer_file_schema`] — per-split streaming inference (text → type,
//!   no value trees) fused across splits; the result is identical for
//!   any split count, by associativity.
//! * [`infer_file_schema_with`] — the same, with an [`IngestOptions`]
//!   bundle of error policy, transient-I/O retry and parser limits. Bad
//!   records are collected per split into an [`ErrorReport`] and merged,
//!   so skip/quarantine outcomes are byte-identical for any split count.
//!
//! The NDJSON line-size guard (`max_line_bytes`) is deliberately *not*
//! part of [`IngestOptions`]: a capped line would desynchronise the
//! snap-to-newline ownership rule between neighbouring splits. Oversized
//! lines in split mode surface as parse errors of their own accord.

use std::fs::File;
use std::io::{BufReader, Seek, SeekFrom};
use std::path::Path;

use crate::error::{Error, IoSite};
use crate::faults::{BadRecord, ErrorPolicy, ErrorReport, RetryPolicy};
use typefuse_engine::Runtime;
use typefuse_infer::{streaming, Incremental};
use typefuse_json::ndjson::{read_line_bounded, trim_ascii_bytes};
use typefuse_json::{ParserOptions, Position};
use typefuse_obs::{span, Recorder};
use typefuse_types::Type;

/// A byte range `[start, end)` of the input file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Split {
    /// First byte of the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

/// Cut `[0, file_len)` into at most `parts` contiguous ranges of roughly
/// equal size (at least one byte each; fewer ranges for tiny files).
pub fn plan_splits(file_len: u64, parts: usize) -> Vec<Split> {
    if file_len == 0 {
        return Vec::new();
    }
    let parts = (parts.max(1) as u64).min(file_len);
    let base = file_len / parts;
    let rem = file_len % parts;
    let mut splits = Vec::with_capacity(parts as usize);
    let mut start = 0;
    for i in 0..parts {
        let len = base + u64::from(i < rem);
        splits.push(Split {
            start,
            end: start + len,
        });
        start += len;
    }
    splits
}

/// Fault-tolerance knobs for file-split ingestion, shared by every
/// split worker of one [`infer_file_schema_with`] run.
#[derive(Debug, Clone, Default)]
pub struct IngestOptions {
    /// What to do with records that fail to parse.
    pub policy: ErrorPolicy,
    /// Retry budget for transient I/O errors (`Interrupted`,
    /// `WouldBlock`); retries count towards `ingest.retries`.
    pub retry: RetryPolicy,
    /// Parser limits (recursion depth, duplicate-key handling).
    pub parser: ParserOptions,
}

/// Read the lines owned by `split`: every line *starting* inside
/// `[start, end)`. A split with `start > 0` first skips the tail of the
/// line that began in the previous split; a line straddling `end` is
/// still read to completion by its owner.
pub fn read_split(
    path: &Path,
    split: Split,
    mut on_line: impl FnMut(u64, &str) -> Result<(), Error>,
) -> Result<(), Error> {
    read_split_with(
        path,
        split,
        RetryPolicy::none(),
        &Recorder::disabled(),
        |offset, bytes| {
            let text = std::str::from_utf8(bytes).map_err(|e| {
                Error::io_at(
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e),
                    IoSite::offset(offset),
                )
            })?;
            on_line(offset, text)
        },
    )
}

/// [`read_split`] with transient-I/O retry and byte-level lines. Each
/// read failure is retried per `retry` (counting `ingest.retries` on
/// `rec`) before surfacing as [`Error::Io`] with the byte offset of the
/// failed read. Lines are handed to `on_line` untrimmed of their
/// content but stripped of surrounding ASCII whitespace; blank lines
/// are skipped. Invalid UTF-8 reaches `on_line` verbatim, so the parser
/// reports it as a positioned parse error instead of a bare I/O error.
pub fn read_split_with(
    path: &Path,
    split: Split,
    retry: RetryPolicy,
    rec: &Recorder,
    mut on_line: impl FnMut(u64, &[u8]) -> Result<(), Error>,
) -> Result<(), Error> {
    let file = File::open(path).map_err(|e| Error::io_at(e, IoSite::offset(split.start)))?;
    let mut reader = BufReader::new(file);
    let mut pos = split.start;
    if split.start > 0 {
        reader
            .seek(SeekFrom::Start(split.start - 1))
            .map_err(|e| Error::io_at(e, IoSite::offset(split.start - 1)))?;
        // Skip the (possibly empty) remainder of the previous line. If
        // the byte before our range is itself a newline, the line starts
        // exactly at `start` and belongs to us: the skip consumes just
        // that newline byte.
        let mut skipped = Vec::new();
        let raw = read_line_bounded(&mut reader, &mut skipped, None, retry, rec)
            .map_err(|e| Error::io_at(e, IoSite::offset(split.start - 1)))?;
        pos = split.start - 1 + raw.consumed as u64;
    }
    let mut line = Vec::new();
    while pos < split.end {
        line.clear();
        let raw = read_line_bounded(&mut reader, &mut line, None, retry, rec)
            .map_err(|e| Error::io_at(e, IoSite::offset(pos)))?;
        if raw.consumed == 0 {
            break; // EOF
        }
        let line_start = pos;
        pos += raw.consumed as u64;
        let trimmed = trim_ascii_bytes(&line);
        if !trimmed.is_empty() {
            on_line(line_start, trimmed)?;
        }
    }
    Ok(())
}

/// Outcome of [`infer_file_schema`].
#[derive(Debug, Clone)]
pub struct FileSchema {
    /// The fused schema of every record in the file.
    pub schema: Type,
    /// Number of records.
    pub records: u64,
    /// Splits processed.
    pub splits: usize,
    /// Records skipped or quarantined by the error policy (empty under
    /// fail-fast). `BadRecord::at` is the absolute byte offset of the
    /// offending line.
    pub errors: ErrorReport,
}

/// Infer the schema of an NDJSON file with `runtime.workers()` parallel
/// splits, using streaming inference (no value trees; memory stays
/// O(schema) per split).
pub fn infer_file_schema(path: &Path, runtime: &Runtime) -> Result<FileSchema, Error> {
    infer_file_schema_recorded(path, runtime, &Recorder::disabled())
}

/// [`infer_file_schema`] with observability: counts `streaming.splits`
/// and per-split `json.bytes` / `json.records`, and wraps each split in
/// a `split.N` span so the trace shows how evenly the byte ranges load
/// the workers. A disabled recorder costs nothing.
pub fn infer_file_schema_recorded(
    path: &Path,
    runtime: &Runtime,
    rec: &Recorder,
) -> Result<FileSchema, Error> {
    let options = IngestOptions {
        policy: ErrorPolicy::FailFast,
        retry: RetryPolicy::none(),
        parser: ParserOptions::default(),
    };
    infer_file_schema_with(path, runtime, &options, rec)
}

/// [`infer_file_schema_recorded`] with fault tolerance: the
/// [`IngestOptions`] error policy decides whether a bad record aborts
/// the run (fail-fast, the default), is dropped, or is quarantined;
/// transient read errors are retried per the retry policy; and a
/// panicking split worker surfaces as [`Error::Worker`] instead of
/// tearing down the process.
///
/// Per-split [`ErrorReport`]s are merged before the policy budget is
/// evaluated, so — like the fused schema itself — the skip/quarantine
/// outcome is byte-identical for every worker and split count.
pub fn infer_file_schema_with(
    path: &Path,
    runtime: &Runtime,
    options: &IngestOptions,
    rec: &Recorder,
) -> Result<FileSchema, Error> {
    let len = std::fs::metadata(path)
        .map_err(|e| Error::io_at(e, IoSite::default()))?
        .len();
    let splits = plan_splits(len, runtime.workers() * 4);
    rec.add("streaming.splits", splits.len() as u64);
    let fail_fast = options.policy.is_fail_fast();
    let keeps_text = options.policy.keeps_text();
    let (outcome, _) = runtime.try_run_indexed(&splits, |i, &split| {
        let _span = span!(rec, "split", i);
        let mut acc = Incremental::new();
        let mut report = ErrorReport::new();
        let result = read_split_with(path, split, options.retry, rec, |offset, line| {
            match streaming::infer_with_options(line, options.parser.clone()) {
                Ok(ty) => {
                    rec.add("json.records", 1);
                    acc.absorb_type(ty);
                    Ok(())
                }
                Err(e) => {
                    rec.add("json.parse_errors", 1);
                    // Re-anchor at the file offset for actionable messages.
                    let anchored = typefuse_json::Error::at(
                        e.kind().clone(),
                        Position {
                            offset: offset as usize + e.span().start.offset,
                            line: 1,
                            column: (e.span().start.offset + 1) as u32,
                        },
                    );
                    if fail_fast {
                        Err(Error::Parse(anchored))
                    } else {
                        report.note(BadRecord {
                            at: offset,
                            error: anchored,
                            text: keeps_text.then(|| String::from_utf8_lossy(line).into_owned()),
                        });
                        Ok(())
                    }
                }
            }
        });
        rec.add("json.bytes", split.end - split.start);
        result.map(|()| (acc, report))
    });
    let accs = outcome.map_err(|p| {
        rec.add("ingest.worker_panics", p.panics as u64);
        Error::Worker(p)
    })?;
    let mut total = Incremental::new();
    let mut errors = ErrorReport::new();
    let split_count = accs.len();
    // Splits are ordered by byte range, so taking the first per-split
    // error yields the earliest failure in the file deterministically.
    for acc in accs {
        let (acc, report) = acc?;
        total.merge(&acc);
        errors.merge(&report);
    }
    options.policy.enforce(&errors, rec)?;
    rec.add("records", total.count());
    Ok(FileSchema {
        schema: total.schema().clone(),
        records: total.count(),
        splits: split_count,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::DatasetProfile;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_file(name: &str, contents: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("typefuse-splits-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path
    }

    #[test]
    fn plan_covers_the_file_exactly() {
        for (len, parts) in [(100u64, 4usize), (7, 3), (1, 8), (10, 1)] {
            let splits = plan_splits(len, parts);
            assert_eq!(splits[0].start, 0);
            assert_eq!(splits.last().unwrap().end, len);
            for pair in splits.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gapless");
            }
            assert!(splits.len() <= parts);
        }
        assert!(plan_splits(0, 4).is_empty());
    }

    #[test]
    fn every_line_is_owned_by_exactly_one_split() {
        let contents: String = (0..50).map(|i| format!("{{\"n\":{i}}}\n")).collect();
        let path = temp_file("ownership.ndjson", &contents);
        for parts in [1, 2, 3, 7, 13] {
            let splits = plan_splits(contents.len() as u64, parts);
            let mut seen: Vec<u64> = Vec::new();
            for split in splits {
                read_split(&path, split, |offset, _| {
                    seen.push(offset);
                    Ok(())
                })
                .unwrap();
            }
            seen.sort_unstable();
            assert_eq!(seen.len(), 50, "parts = {parts}");
            seen.dedup();
            assert_eq!(seen.len(), 50, "duplicate ownership with {parts} parts");
        }
    }

    #[test]
    fn split_boundaries_mid_line_are_handled() {
        // Construct lines of very different lengths so boundaries fall
        // everywhere, including immediately after newlines.
        let contents = "{\"a\":1}\n{\"long\":\"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\"}\n{}\n";
        let path = temp_file("straddle.ndjson", contents);
        for parts in 1..=contents.len() {
            let splits = plan_splits(contents.len() as u64, parts);
            let mut count = 0;
            for split in splits {
                read_split(&path, split, |_, line| {
                    assert!(
                        typefuse_json::parse_value(line).is_ok(),
                        "torn line {line:?}"
                    );
                    count += 1;
                    Ok(())
                })
                .unwrap();
            }
            assert_eq!(count, 3, "parts = {parts}");
        }
    }

    #[test]
    fn file_schema_matches_in_memory_pipeline() {
        let values: Vec<typefuse_json::Value> =
            crate::datagen::Profile::Twitter.generate(3, 200).collect();
        let mut contents = Vec::new();
        typefuse_json::ndjson::write_ndjson(&mut contents, &values).unwrap();
        let path = temp_file("twitter.ndjson", std::str::from_utf8(&contents).unwrap());

        let from_file = infer_file_schema(&path, &Runtime::new(4)).unwrap();
        let in_memory = crate::config::JobConfig::new()
            .without_type_stats()
            .build()
            .run_values(values);
        assert_eq!(from_file.schema, in_memory.schema);
        assert_eq!(from_file.records, in_memory.records);
        assert!(from_file.splits >= 1);
        assert!(from_file.errors.is_empty());
    }

    #[test]
    fn recorded_file_inference_counts_splits_and_records() {
        let contents: String = (0..40).map(|i| format!("{{\"n\":{i}}}\n")).collect();
        let path = temp_file("recorded.ndjson", &contents);
        let rec = Recorder::enabled();
        let fs = infer_file_schema_recorded(&path, &Runtime::new(2), &rec).unwrap();
        let report = rec.snapshot();
        assert_eq!(report.counters["streaming.splits"], fs.splits as u64);
        assert_eq!(report.counters["json.records"], 40);
        assert_eq!(report.counters["records"], 40);
        assert_eq!(report.counters["json.bytes"], contents.len() as u64);
        // One span per split, named split.0 .. split.N-1.
        let split_spans = report
            .spans
            .keys()
            .filter(|k| k.starts_with("split."))
            .count();
        assert_eq!(split_spans, fs.splits);
    }

    #[test]
    fn parse_errors_carry_file_offsets() {
        let contents = "{\"ok\":1}\n{broken\n";
        let path = temp_file("bad.ndjson", contents);
        let err = infer_file_schema(&path, &Runtime::sequential()).unwrap_err();
        // The bad record starts at byte 9; the offending byte is inside it.
        let span = err.span().expect("parse error carries a span");
        assert!(span.start.offset >= 9, "offset {}", span.start.offset);
    }

    #[test]
    fn empty_and_blank_files() {
        let path = temp_file("empty.ndjson", "");
        let fs = infer_file_schema(&path, &Runtime::sequential()).unwrap();
        assert_eq!(fs.records, 0);
        assert_eq!(fs.schema, Type::Bottom);

        let path = temp_file("blank.ndjson", "\n\n  \n");
        let fs = infer_file_schema(&path, &Runtime::new(2)).unwrap();
        assert_eq!(fs.records, 0);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = infer_file_schema(
            Path::new("/nonexistent/typefuse.ndjson"),
            &Runtime::sequential(),
        )
        .unwrap_err();
        assert!(err.is_io());
    }

    #[test]
    fn skip_policy_matches_the_clean_subset_for_any_worker_count() {
        let mut contents = String::new();
        let mut clean = String::new();
        for i in 0..60 {
            if i % 7 == 3 {
                contents.push_str("{broken!!\n");
            } else {
                let line = format!("{{\"n\":{i},\"s\":\"x\"}}\n");
                contents.push_str(&line);
                clean.push_str(&line);
            }
        }
        let dirty = temp_file("skip-dirty.ndjson", &contents);
        let clean_path = temp_file("skip-clean.ndjson", &clean);
        let expect = infer_file_schema(&clean_path, &Runtime::sequential()).unwrap();

        let options = IngestOptions {
            policy: ErrorPolicy::skip(),
            ..IngestOptions::default()
        };
        let mut reports = Vec::new();
        for workers in [1, 2, 3, 8] {
            let rec = Recorder::enabled();
            let fs =
                infer_file_schema_with(&dirty, &Runtime::new(workers), &options, &rec).unwrap();
            assert_eq!(fs.schema, expect.schema, "workers = {workers}");
            assert_eq!(fs.records, expect.records, "workers = {workers}");
            assert_eq!(fs.errors.skipped(), 9, "workers = {workers}");
            assert_eq!(rec.snapshot().counters["ingest.skipped"], 9);
            reports.push(fs.errors);
        }
        // Bad-record reports are byte-identical across worker counts.
        for pair in reports.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
        // `at` is the absolute byte offset of each bad line.
        let offsets: Vec<u64> = reports[0].records().iter().map(|r| r.at).collect();
        let mut expected_offsets = Vec::new();
        let mut pos = 0u64;
        for line in contents.split_inclusive('\n') {
            if line.starts_with("{broken") {
                expected_offsets.push(pos);
            }
            pos += line.len() as u64;
        }
        assert_eq!(offsets, expected_offsets);
    }

    #[test]
    fn split_budget_is_enforced_after_merging() {
        let mut contents = String::new();
        for i in 0..20 {
            if i % 5 == 0 {
                contents.push_str("nope\n");
            } else {
                contents.push_str(&format!("{{\"n\":{i}}}\n"));
            }
        }
        let path = temp_file("budget.ndjson", &contents);
        // 4 bad lines: a budget of 4 passes, 3 fails — for any workers.
        for workers in [1, 4] {
            let ok = IngestOptions {
                policy: ErrorPolicy::Skip {
                    max_errors: Some(4),
                },
                ..IngestOptions::default()
            };
            infer_file_schema_with(&path, &Runtime::new(workers), &ok, &Recorder::disabled())
                .unwrap();
            let tight = IngestOptions {
                policy: ErrorPolicy::Skip {
                    max_errors: Some(3),
                },
                ..IngestOptions::default()
            };
            let err = infer_file_schema_with(
                &path,
                &Runtime::new(workers),
                &tight,
                &Recorder::disabled(),
            )
            .unwrap_err();
            assert!(err.is_budget(), "workers = {workers}: {err}");
        }
    }

    #[test]
    fn quarantined_splits_write_the_sidecar() {
        let contents = "{\"a\":1}\n{oops\n{\"a\":2}\n";
        let path = temp_file("quarantine-src.ndjson", contents);
        let sink = std::env::temp_dir()
            .join("typefuse-splits-tests")
            .join("quarantine-sink.ndjson");
        let options = IngestOptions {
            policy: ErrorPolicy::quarantine(&sink),
            ..IngestOptions::default()
        };
        let rec = Recorder::enabled();
        let fs = infer_file_schema_with(&path, &Runtime::new(2), &options, &rec).unwrap();
        assert_eq!(fs.records, 2);
        assert_eq!(fs.errors.skipped(), 1);
        assert_eq!(rec.snapshot().counters["ingest.quarantined"], 1);
        let entries = crate::faults::read_quarantine(&sink).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, 8); // byte offset of the bad line
        assert_eq!(entries[0].2.as_deref(), Some("{oops"));
        std::fs::remove_file(&sink).ok();
    }

    #[test]
    fn parser_options_flow_into_split_inference() {
        let contents = "{\"a\":{\"b\":{\"c\":1}}}\n";
        let path = temp_file("depth.ndjson", contents);
        let shallow = IngestOptions {
            parser: ParserOptions {
                max_depth: 2,
                ..ParserOptions::default()
            },
            ..IngestOptions::default()
        };
        let err = infer_file_schema_with(
            &path,
            &Runtime::sequential(),
            &shallow,
            &Recorder::disabled(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
    }
}
