//! Parallel NDJSON file ingestion via byte-range splits.
//!
//! Spark reads HDFS files as block-aligned *input splits*: each task
//! seeks to its byte range and snaps to the next newline so every record
//! is processed exactly once. This module reproduces that mechanism for
//! local NDJSON files, so `SchemaJob`-style inference can run all cores
//! on one big file without first loading it into memory:
//!
//! * [`plan_splits`] — cut `[0, len)` into `n` ranges;
//! * [`read_split`] — the snap-to-newline rule: a split owns every line
//!   that *starts* within its range (the first split also owns offset 0);
//! * [`infer_file_schema`] — per-split streaming inference (text → type,
//!   no value trees) fused across splits; the result is identical for
//!   any split count, by associativity.

use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::Path;

use crate::error::Error;
use typefuse_engine::Runtime;
use typefuse_infer::{streaming, Incremental};
use typefuse_json::Position;
use typefuse_obs::{span, Recorder};
use typefuse_types::Type;

/// A byte range `[start, end)` of the input file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Split {
    /// First byte of the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

/// Cut `[0, file_len)` into at most `parts` contiguous ranges of roughly
/// equal size (at least one byte each; fewer ranges for tiny files).
pub fn plan_splits(file_len: u64, parts: usize) -> Vec<Split> {
    if file_len == 0 {
        return Vec::new();
    }
    let parts = (parts.max(1) as u64).min(file_len);
    let base = file_len / parts;
    let rem = file_len % parts;
    let mut splits = Vec::with_capacity(parts as usize);
    let mut start = 0;
    for i in 0..parts {
        let len = base + u64::from(i < rem);
        splits.push(Split {
            start,
            end: start + len,
        });
        start += len;
    }
    splits
}

/// Read the lines owned by `split`: every line *starting* inside
/// `[start, end)`. A split with `start > 0` first skips the tail of the
/// line that began in the previous split; a line straddling `end` is
/// still read to completion by its owner.
pub fn read_split(
    path: &Path,
    split: Split,
    mut on_line: impl FnMut(u64, &str) -> Result<(), Error>,
) -> Result<(), Error> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut pos = split.start;
    if split.start > 0 {
        reader.seek(SeekFrom::Start(split.start - 1))?;
        // Skip the (possibly empty) remainder of the previous line. If
        // the byte before our range is itself a newline, the line starts
        // exactly at `start` and belongs to us: read_until consumes just
        // that newline byte.
        let mut skipped = Vec::new();
        let n = reader.read_until(b'\n', &mut skipped)? as u64;
        pos = split.start - 1 + n;
    }
    let mut line = String::new();
    while pos < split.end {
        line.clear();
        let n = reader.read_line(&mut line)? as u64;
        if n == 0 {
            break; // EOF
        }
        let line_start = pos;
        pos += n;
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            on_line(line_start, trimmed)?;
        }
    }
    Ok(())
}

/// Outcome of [`infer_file_schema`].
#[derive(Debug, Clone)]
pub struct FileSchema {
    /// The fused schema of every record in the file.
    pub schema: Type,
    /// Number of records.
    pub records: u64,
    /// Splits processed.
    pub splits: usize,
}

/// Infer the schema of an NDJSON file with `runtime.workers()` parallel
/// splits, using streaming inference (no value trees; memory stays
/// O(schema) per split).
pub fn infer_file_schema(path: &Path, runtime: &Runtime) -> Result<FileSchema, Error> {
    infer_file_schema_recorded(path, runtime, &Recorder::disabled())
}

/// [`infer_file_schema`] with observability: counts `streaming.splits`
/// and per-split `json.bytes` / `json.records`, and wraps each split in
/// a `split.N` span so the trace shows how evenly the byte ranges load
/// the workers. A disabled recorder costs nothing.
pub fn infer_file_schema_recorded(
    path: &Path,
    runtime: &Runtime,
    rec: &Recorder,
) -> Result<FileSchema, Error> {
    let len = std::fs::metadata(path)?.len();
    let splits = plan_splits(len, runtime.workers() * 4);
    rec.add("streaming.splits", splits.len() as u64);
    let (accs, _) = runtime.run_indexed(&splits, |i, &split| {
        let _span = span!(rec, "split", i);
        let mut acc = Incremental::new();
        let result = read_split(path, split, |offset, line| {
            let ty = streaming::infer_type_from_str(line).map_err(|e| {
                // Re-anchor at the file offset for actionable messages.
                Error::Parse(typefuse_json::Error::at(
                    e.kind().clone(),
                    Position {
                        offset: offset as usize + e.span().start.offset,
                        line: 1,
                        column: (e.span().start.offset + 1) as u32,
                    },
                ))
            })?;
            rec.add("json.records", 1);
            acc.absorb_type(ty);
            Ok(())
        });
        rec.add("json.bytes", split.end - split.start);
        result.map(|()| acc)
    });
    let mut total = Incremental::new();
    let split_count = accs.len();
    for acc in accs {
        total.merge(&acc?);
    }
    rec.add("records", total.count());
    Ok(FileSchema {
        schema: total.schema().clone(),
        records: total.count(),
        splits: split_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::DatasetProfile;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_file(name: &str, contents: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("typefuse-splits-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path
    }

    #[test]
    fn plan_covers_the_file_exactly() {
        for (len, parts) in [(100u64, 4usize), (7, 3), (1, 8), (10, 1)] {
            let splits = plan_splits(len, parts);
            assert_eq!(splits[0].start, 0);
            assert_eq!(splits.last().unwrap().end, len);
            for pair in splits.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gapless");
            }
            assert!(splits.len() <= parts);
        }
        assert!(plan_splits(0, 4).is_empty());
    }

    #[test]
    fn every_line_is_owned_by_exactly_one_split() {
        let contents: String = (0..50).map(|i| format!("{{\"n\":{i}}}\n")).collect();
        let path = temp_file("ownership.ndjson", &contents);
        for parts in [1, 2, 3, 7, 13] {
            let splits = plan_splits(contents.len() as u64, parts);
            let mut seen: Vec<u64> = Vec::new();
            for split in splits {
                read_split(&path, split, |offset, _| {
                    seen.push(offset);
                    Ok(())
                })
                .unwrap();
            }
            seen.sort_unstable();
            assert_eq!(seen.len(), 50, "parts = {parts}");
            seen.dedup();
            assert_eq!(seen.len(), 50, "duplicate ownership with {parts} parts");
        }
    }

    #[test]
    fn split_boundaries_mid_line_are_handled() {
        // Construct lines of very different lengths so boundaries fall
        // everywhere, including immediately after newlines.
        let contents = "{\"a\":1}\n{\"long\":\"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\"}\n{}\n";
        let path = temp_file("straddle.ndjson", contents);
        for parts in 1..=contents.len() {
            let splits = plan_splits(contents.len() as u64, parts);
            let mut count = 0;
            for split in splits {
                read_split(&path, split, |_, line| {
                    assert!(
                        typefuse_json::parse_value(line).is_ok(),
                        "torn line {line:?}"
                    );
                    count += 1;
                    Ok(())
                })
                .unwrap();
            }
            assert_eq!(count, 3, "parts = {parts}");
        }
    }

    #[test]
    fn file_schema_matches_in_memory_pipeline() {
        let values: Vec<typefuse_json::Value> =
            crate::datagen::Profile::Twitter.generate(3, 200).collect();
        let mut contents = Vec::new();
        typefuse_json::ndjson::write_ndjson(&mut contents, &values).unwrap();
        let path = temp_file("twitter.ndjson", std::str::from_utf8(&contents).unwrap());

        let from_file = infer_file_schema(&path, &Runtime::new(4)).unwrap();
        let in_memory = crate::pipeline::SchemaJob::new()
            .without_type_stats()
            .run_values(values);
        assert_eq!(from_file.schema, in_memory.schema);
        assert_eq!(from_file.records, in_memory.records);
        assert!(from_file.splits >= 1);
    }

    #[test]
    fn recorded_file_inference_counts_splits_and_records() {
        let contents: String = (0..40).map(|i| format!("{{\"n\":{i}}}\n")).collect();
        let path = temp_file("recorded.ndjson", &contents);
        let rec = Recorder::enabled();
        let fs = infer_file_schema_recorded(&path, &Runtime::new(2), &rec).unwrap();
        let report = rec.snapshot();
        assert_eq!(report.counters["streaming.splits"], fs.splits as u64);
        assert_eq!(report.counters["json.records"], 40);
        assert_eq!(report.counters["records"], 40);
        assert_eq!(report.counters["json.bytes"], contents.len() as u64);
        // One span per split, named split.0 .. split.N-1.
        let split_spans = report
            .spans
            .keys()
            .filter(|k| k.starts_with("split."))
            .count();
        assert_eq!(split_spans, fs.splits);
    }

    #[test]
    fn parse_errors_carry_file_offsets() {
        let contents = "{\"ok\":1}\n{broken\n";
        let path = temp_file("bad.ndjson", contents);
        let err = infer_file_schema(&path, &Runtime::sequential()).unwrap_err();
        // The bad record starts at byte 9; the offending byte is inside it.
        let span = err.span().expect("parse error carries a span");
        assert!(span.start.offset >= 9, "offset {}", span.start.offset);
    }

    #[test]
    fn empty_and_blank_files() {
        let path = temp_file("empty.ndjson", "");
        let fs = infer_file_schema(&path, &Runtime::sequential()).unwrap();
        assert_eq!(fs.records, 0);
        assert_eq!(fs.schema, Type::Bottom);

        let path = temp_file("blank.ndjson", "\n\n  \n");
        let fs = infer_file_schema(&path, &Runtime::new(2)).unwrap();
        assert_eq!(fs.records, 0);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = infer_file_schema(
            Path::new("/nonexistent/typefuse.ndjson"),
            &Runtime::sequential(),
        )
        .unwrap_err();
        assert!(err.is_io());
    }
}
