//! The façade crate's unified error type.
//!
//! The pipeline entry points used to leak `typefuse_json::Error` (which
//! smuggled I/O failures through `ErrorKind::Io(String)`); the CLI then
//! re-wrapped both into its own error. [`Error`] consolidates the two
//! failure modes every ingestion path actually has — the input could not
//! be *read*, or a record could not be *parsed* — so `SchemaJob::run`,
//! the split reader and the CLI all speak one type.

use std::fmt;

use typefuse_json::Span;

/// Any failure of a pipeline run: I/O on the input, or a malformed
/// record.
#[derive(Debug)]
pub enum Error {
    /// A record failed to parse. The inner error's position is anchored
    /// to the input (line number for NDJSON streams, byte offset for
    /// file splits).
    Parse(typefuse_json::Error),
    /// The input could not be read.
    Io(std::io::Error),
}

impl Error {
    /// The input span of a parse error (`None` for I/O errors).
    pub fn span(&self) -> Option<Span> {
        match self {
            Error::Parse(e) => Some(e.span()),
            Error::Io(_) => None,
        }
    }

    /// Whether this is an I/O (read) failure.
    pub fn is_io(&self) -> bool {
        matches!(self, Error::Io(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Io(e) => write!(f, "input error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<typefuse_json::Error> for Error {
    fn from(e: typefuse_json::Error) -> Self {
        Error::Parse(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::parse_value;

    #[test]
    fn parse_errors_keep_their_span() {
        let inner = parse_value("{oops").unwrap_err();
        let span = inner.span();
        let err = Error::from(inner);
        assert_eq!(err.span(), Some(span));
        assert!(!err.is_io());
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn io_errors_have_no_span() {
        let err = Error::from(std::io::Error::other("disk on fire"));
        assert!(err.is_io());
        assert_eq!(err.span(), None);
        assert!(err.to_string().contains("disk on fire"));
    }
}
