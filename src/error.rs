//! The façade crate's unified error type.
//!
//! The pipeline entry points used to leak `typefuse_json::Error` (which
//! smuggled I/O failures through `ErrorKind::Io(String)`); the CLI then
//! re-wrapped both into its own error. [`Error`] consolidates the
//! failure modes every ingestion path actually has — the input could not
//! be *read*, a record could not be *parsed*, an error-policy budget was
//! exhausted, or a worker thread panicked — so `SchemaJob::run`, the
//! split reader and the CLI all speak one type.

use std::fmt;

use typefuse_json::Span;

/// Where in the input stream a mid-stream I/O failure happened.
///
/// NDJSON line readers know the 1-based line they were on; the split
/// reader knows the byte offset and the split index. Carrying whichever
/// coordinates are available makes "the read failed" actionable on a
/// multi-gigabyte file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSite {
    /// Absolute byte offset in the input, when known.
    pub offset: Option<u64>,
    /// 1-based line number, when known (NDJSON streams).
    pub line: Option<u32>,
    /// Split index, when the input was read in parallel splits.
    pub split: Option<usize>,
}

impl IoSite {
    /// A site known only by line number.
    pub fn line(line: u32) -> Self {
        IoSite {
            line: Some(line),
            ..IoSite::default()
        }
    }

    /// A site known only by byte offset.
    pub fn offset(offset: u64) -> Self {
        IoSite {
            offset: Some(offset),
            ..IoSite::default()
        }
    }

    /// Attach the split index.
    pub fn in_split(mut self, split: usize) -> Self {
        self.split = Some(split);
        self
    }

    fn is_known(&self) -> bool {
        self.offset.is_some() || self.line.is_some() || self.split.is_some()
    }
}

impl fmt::Display for IoSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(offset) = self.offset {
            write!(f, "byte {offset}")?;
            sep = ", ";
        }
        if let Some(line) = self.line {
            write!(f, "{sep}line {line}")?;
            sep = ", ";
        }
        if let Some(split) = self.split {
            write!(f, "{sep}split {split}")?;
        }
        Ok(())
    }
}

/// Any failure of a pipeline run: I/O on the input, a malformed record,
/// an exhausted error budget, or a panicking worker.
#[derive(Debug)]
pub enum Error {
    /// A record failed to parse. The inner error's position is anchored
    /// to the input (line number for NDJSON streams, byte offset for
    /// file splits).
    Parse(typefuse_json::Error),
    /// The input could not be read. `site` locates the failed read in
    /// the stream when the reader knows where it was.
    Io {
        /// The underlying I/O error.
        source: std::io::Error,
        /// Stream coordinates of the failed read, when known.
        site: IoSite,
    },
    /// A `Skip`/`Quarantine` error policy ran out of budget. `first` is
    /// the earliest bad record (deterministic under any partitioning).
    Budget {
        /// Total bad records observed (may exceed `limit`).
        errors: u64,
        /// The configured `max_errors` that was exceeded.
        limit: u64,
        /// The earliest parse error in input order.
        first: Box<typefuse_json::Error>,
    },
    /// A worker thread panicked; the run was isolated and aborted
    /// cleanly instead of tearing down the process.
    Worker(typefuse_engine::WorkerPanic),
}

impl Error {
    /// An I/O error with known stream coordinates.
    pub fn io_at(source: std::io::Error, site: IoSite) -> Self {
        Error::Io { source, site }
    }

    /// The input span of the offending record (`None` for I/O and
    /// worker errors). A budget error reports the span of the earliest
    /// bad record.
    pub fn span(&self) -> Option<Span> {
        match self {
            Error::Parse(e) => Some(e.span()),
            Error::Budget { first, .. } => Some(first.span()),
            Error::Io { .. } | Error::Worker(_) => None,
        }
    }

    /// Whether this is an I/O (read) failure.
    pub fn is_io(&self) -> bool {
        matches!(self, Error::Io { .. })
    }

    /// Whether this is an exhausted error budget.
    pub fn is_budget(&self) -> bool {
        matches!(self, Error::Budget { .. })
    }

    /// Whether this is an isolated worker panic.
    pub fn is_worker(&self) -> bool {
        matches!(self, Error::Worker(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Io { source, site } if site.is_known() => {
                write!(f, "input error at {site}: {source}")
            }
            Error::Io { source, .. } => write!(f, "input error: {source}"),
            Error::Budget {
                errors,
                limit,
                first,
            } => write!(
                f,
                "error budget exceeded: {errors} bad records (limit {limit}); first: {first}"
            ),
            Error::Worker(p) => write!(f, "{p}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            Error::Budget { first, .. } => Some(first),
            Error::Worker(p) => Some(p),
        }
    }
}

impl From<typefuse_json::Error> for Error {
    fn from(e: typefuse_json::Error) -> Self {
        Error::Parse(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(source: std::io::Error) -> Self {
        Error::Io {
            source,
            site: IoSite::default(),
        }
    }
}

impl From<typefuse_engine::WorkerPanic> for Error {
    fn from(p: typefuse_engine::WorkerPanic) -> Self {
        Error::Worker(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::parse_value;

    #[test]
    fn parse_errors_keep_their_span() {
        let inner = parse_value("{oops").unwrap_err();
        let span = inner.span();
        let err = Error::from(inner);
        assert_eq!(err.span(), Some(span));
        assert!(!err.is_io());
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn io_errors_have_no_span() {
        let err = Error::from(std::io::Error::other("disk on fire"));
        assert!(err.is_io());
        assert_eq!(err.span(), None);
        assert!(err.to_string().contains("disk on fire"));
    }

    #[test]
    fn io_site_appears_in_the_message() {
        let err = Error::io_at(
            std::io::Error::other("reset by peer"),
            IoSite::offset(4096).in_split(3),
        );
        let msg = err.to_string();
        assert!(msg.contains("byte 4096"), "{msg}");
        assert!(msg.contains("split 3"), "{msg}");
        assert!(msg.contains("reset by peer"), "{msg}");

        let err = Error::io_at(std::io::Error::other("gone"), IoSite::line(17));
        assert!(err.to_string().contains("line 17"));
    }

    #[test]
    fn budget_error_reports_count_limit_and_first() {
        let first = parse_value("{oops").unwrap_err();
        let span = first.span();
        let err = Error::Budget {
            errors: 12,
            limit: 10,
            first: Box::new(first),
        };
        assert!(err.is_budget());
        assert_eq!(err.span(), Some(span));
        let msg = err.to_string();
        assert!(msg.contains("12 bad records"), "{msg}");
        assert!(msg.contains("limit 10"), "{msg}");
    }

    #[test]
    fn worker_panics_convert() {
        let err = Error::from(typefuse_engine::WorkerPanic {
            partition: 2,
            message: "boom".into(),
            panics: 1,
        });
        assert!(err.is_worker());
        assert!(err.to_string().contains("partition 2"));
    }
}
