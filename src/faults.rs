//! Fault-tolerant ingestion: error policies, the mergeable
//! [`ErrorReport`] monoid, and quarantine sidecars.
//!
//! The paper's premise is *massive* real-world JSON (Section 6), and at
//! that scale dirty data is the norm. Because the paper's fusion is
//! commutative and associative (Theorem 5.5), skipping or quarantining
//! one record is a purely *local* decision: removing a record from any
//! partition yields exactly the schema of the clean subset, regardless
//! of how the input was partitioned. The [`ErrorPolicy`] on
//! `SchemaJob` exploits this, and the [`ErrorReport`] collected along
//! the way is itself a commutative monoid — like the fused types — so
//! the reported errors are byte-identical across worker counts, map
//! paths, and dedup settings.
//!
//! * [`ErrorPolicy::FailFast`] — stop at the earliest bad record
//!   (default; byte-identical to the pre-policy behaviour).
//! * [`ErrorPolicy::Skip`] — drop bad records, subject to a
//!   deterministic error budget evaluated *after* merging (so a budget
//!   decision never depends on partitioning).
//! * [`ErrorPolicy::Quarantine`] — like `Skip`, but every bad line is
//!   written with its position and error to a sidecar NDJSON file for
//!   later repair; [`read_quarantine`] replays the sidecar.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use typefuse_json::{Map, Value};

pub use typefuse_json::RetryPolicy;

/// How the ingestion pipeline treats records that fail to parse.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Abort the run at the earliest bad record (in input order).
    #[default]
    FailFast,
    /// Drop bad records and keep going. With `max_errors: Some(k)`,
    /// more than `k` bad records fail the run with
    /// [`Error::Budget`](crate::Error::Budget); the budget is checked
    /// after merging all partitions, so the outcome is independent of
    /// worker count and partitioning.
    Skip {
        /// Maximum tolerated bad records (`None` = unlimited).
        max_errors: Option<u64>,
    },
    /// Like `Skip`, but write each bad record's text, position and
    /// error to a sidecar NDJSON file.
    Quarantine {
        /// Path of the sidecar NDJSON file (overwritten per run).
        sink: PathBuf,
        /// Maximum tolerated bad records (`None` = unlimited).
        max_errors: Option<u64>,
    },
}

impl ErrorPolicy {
    /// `Skip` with an unlimited budget.
    pub fn skip() -> Self {
        ErrorPolicy::Skip { max_errors: None }
    }

    /// `Quarantine` into `sink` with an unlimited budget.
    pub fn quarantine(sink: impl Into<PathBuf>) -> Self {
        ErrorPolicy::Quarantine {
            sink: sink.into(),
            max_errors: None,
        }
    }

    /// Whether this is the fail-fast policy.
    pub fn is_fail_fast(&self) -> bool {
        matches!(self, ErrorPolicy::FailFast)
    }

    /// The configured error budget, if any.
    pub fn max_errors(&self) -> Option<u64> {
        match self {
            ErrorPolicy::FailFast => None,
            ErrorPolicy::Skip { max_errors } => *max_errors,
            ErrorPolicy::Quarantine { max_errors, .. } => *max_errors,
        }
    }

    /// Whether bad-record text must be retained (quarantine writes it
    /// to the sidecar; skip and fail-fast don't need it).
    pub fn keeps_text(&self) -> bool {
        matches!(self, ErrorPolicy::Quarantine { .. })
    }

    /// Apply this policy to a fully merged report: fail fast on the
    /// earliest bad record, or count skips (`ingest.skipped`), write the
    /// quarantine sidecar (`ingest.quarantined`) and enforce the error
    /// budget. Called once per run *after* all partitions merged, so the
    /// outcome never depends on partitioning.
    pub fn enforce(
        &self,
        report: &ErrorReport,
        rec: &typefuse_obs::Recorder,
    ) -> Result<(), crate::Error> {
        match self {
            ErrorPolicy::FailFast => match report.first() {
                None => Ok(()),
                Some(bad) => Err(crate::Error::Parse(bad.error.clone())),
            },
            ErrorPolicy::Skip { max_errors } => {
                rec.add("ingest.skipped", report.skipped());
                check_budget(report, *max_errors)
            }
            ErrorPolicy::Quarantine { sink, max_errors } => {
                let written = write_quarantine(sink, report)?;
                rec.add("ingest.quarantined", written);
                rec.add("ingest.skipped", report.skipped());
                check_budget(report, *max_errors)
            }
        }
    }
}

fn check_budget(report: &ErrorReport, limit: Option<u64>) -> Result<(), crate::Error> {
    match limit {
        Some(limit) if report.skipped() > limit => Err(crate::Error::Budget {
            errors: report.skipped(),
            limit,
            first: Box::new(
                report
                    .first()
                    .expect("over-budget report is non-empty")
                    .error
                    .clone(),
            ),
        }),
        _ => Ok(()),
    }
}

/// One record that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRecord {
    /// Input-order coordinate: the 1-based line number for NDJSON
    /// streams, the absolute byte offset for split file reads. Total
    /// input order is what makes merged reports deterministic.
    pub at: u64,
    /// What went wrong.
    pub error: typefuse_json::Error,
    /// The offending line's text, when the policy keeps it (lossy
    /// UTF-8; capped by the line-size guard).
    pub text: Option<String>,
}

/// How many bad records a report retains verbatim; beyond this only the
/// `skipped` tally grows. 100k errors at ~100 bytes each bounds report
/// memory at ~10 MB however dirty a 22 GB input turns out to be.
pub const MAX_KEPT: usize = 100_000;

/// A mergeable, commutative summary of every record a run skipped or
/// quarantined.
///
/// `ErrorReport` is a monoid under [`merge`](ErrorReport::merge) with
/// [`ErrorReport::default`] as identity: records are kept sorted by
/// input position (ties broken by error text), deduplicated, and
/// truncated to the [`MAX_KEPT`] *smallest* positions. Keeping the
/// smallest makes truncation associative — any merge order converges on
/// the same earliest-K records — so reports are byte-identical across
/// worker counts and partitionings, exactly like the fused schema
/// itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorReport {
    records: Vec<BadRecord>,
    skipped: u64,
}

impl ErrorReport {
    /// An empty report (the monoid identity).
    pub fn new() -> Self {
        ErrorReport::default()
    }

    /// Record one bad record.
    pub fn note(&mut self, record: BadRecord) {
        self.skipped += 1;
        self.records.push(record);
        self.normalize();
    }

    /// Merge another report into this one. Commutative and associative:
    /// both operand orders and any grouping yield the same report.
    pub fn merge(&mut self, other: &ErrorReport) {
        self.skipped += other.skipped;
        self.records.extend(other.records.iter().cloned());
        self.normalize();
    }

    fn normalize(&mut self) {
        self.records.sort_by(|a, b| {
            (a.at, a.error.to_string(), &a.text).cmp(&(b.at, b.error.to_string(), &b.text))
        });
        self.records
            .dedup_by(|a, b| a.at == b.at && a.error == b.error && a.text == b.text);
        self.records.truncate(MAX_KEPT);
    }

    /// Reconstruct a report from checkpointed parts. The records are
    /// re-normalized, so a round trip through
    /// [`checkpoint_value`](ErrorReport::checkpoint_value) is exact.
    pub fn from_parts(records: Vec<BadRecord>, skipped: u64) -> Self {
        let mut report = ErrorReport { records, skipped };
        report.normalize();
        report
    }

    /// Serialize for a crash-recovery checkpoint: every retained record
    /// with its exact error (kind + span, via
    /// [`typefuse_json::codec`]) plus the skip tally. Unlike the
    /// quarantine sidecar this round-trips losslessly —
    /// [`from_checkpoint_value`](ErrorReport::from_checkpoint_value)
    /// restores a `==`-identical report.
    pub fn checkpoint_value(&self) -> Value {
        use typefuse_json::codec::{error_to_value, u64_to_value};
        let mut obj = Map::new();
        obj.insert("skipped", u64_to_value(self.skipped));
        let records: Vec<Value> = self
            .records
            .iter()
            .map(|bad| {
                let mut entry = Map::new();
                entry.insert("at", u64_to_value(bad.at));
                entry.insert("error", error_to_value(&bad.error));
                if let Some(text) = &bad.text {
                    entry.insert("text", Value::from(text.clone()));
                }
                Value::Object(entry)
            })
            .collect();
        obj.insert("records", Value::Array(records));
        Value::Object(obj)
    }

    /// Restore a report serialized by
    /// [`checkpoint_value`](ErrorReport::checkpoint_value).
    pub fn from_checkpoint_value(v: &Value) -> Result<Self, String> {
        use typefuse_json::codec::{error_from_value, u64_from_value};
        let skipped = v
            .get("skipped")
            .ok_or_else(|| "report missing `skipped`".to_string())
            .and_then(u64_from_value)?;
        let entries = v
            .get("records")
            .and_then(Value::as_array)
            .ok_or_else(|| "report missing `records`".to_string())?;
        let mut records = Vec::with_capacity(entries.len());
        for entry in entries {
            let at = entry
                .get("at")
                .ok_or_else(|| "bad record missing `at`".to_string())
                .and_then(u64_from_value)?;
            let error = entry
                .get("error")
                .ok_or_else(|| "bad record missing `error`".to_string())
                .and_then(error_from_value)?;
            let text = entry.get("text").and_then(Value::as_str).map(String::from);
            records.push(BadRecord { at, error, text });
        }
        Ok(ErrorReport::from_parts(records, skipped))
    }

    /// The earliest bad record, if any.
    pub fn first(&self) -> Option<&BadRecord> {
        self.records.first()
    }

    /// Total number of records skipped (may exceed `records().len()`
    /// once [`MAX_KEPT`] is reached).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The retained bad records, sorted by input position.
    pub fn records(&self) -> &[BadRecord] {
        &self.records
    }

    /// Whether no record was skipped.
    pub fn is_empty(&self) -> bool {
        self.skipped == 0
    }
}

/// Write a report's bad records as a quarantine sidecar: one NDJSON
/// object per record with `at`, `error`, and (when retained) `text`
/// fields. Returns the number of records written.
pub fn write_quarantine(path: &Path, report: &ErrorReport) -> std::io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    let mut written = 0u64;
    for bad in report.records() {
        let mut obj = Map::new();
        obj.insert("at", Value::from(bad.at as i64));
        obj.insert("error", Value::from(bad.error.to_string()));
        if let Some(text) = &bad.text {
            obj.insert("text", Value::from(text.clone()));
        }
        let line = typefuse_json::to_string(&Value::Object(obj));
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        written += 1;
    }
    out.flush()?;
    Ok(written)
}

/// Replay a quarantine sidecar written by [`write_quarantine`]: parse
/// each entry back into a [`BadRecord`] stub (`error` is re-parsed as
/// an opaque I/O-kind error carrying the original message, since error
/// kinds don't round-trip through text).
pub fn read_quarantine(path: &Path) -> std::io::Result<Vec<(u64, String, Option<String>)>> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut entries = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let v = typefuse_json::parse_value(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let at = match v.get("at") {
            Some(Value::Number(n)) => n.as_f64() as u64,
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "quarantine entry missing numeric `at`",
                ))
            }
        };
        let error = match v.get("error") {
            Some(Value::String(s)) => s.clone(),
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "quarantine entry missing `error`",
                ))
            }
        };
        let text = match v.get("text") {
            Some(Value::String(s)) => Some(s.clone()),
            _ => None,
        };
        entries.push((at, error, text));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::parse_value;

    fn bad(at: u64, input: &str) -> BadRecord {
        BadRecord {
            at,
            error: parse_value(input).unwrap_err(),
            text: Some(input.to_string()),
        }
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = ErrorReport::new();
        a.note(bad(5, "{x"));
        a.note(bad(2, "[1,"));
        let mut b = ErrorReport::new();
        b.note(bad(9, "nul"));
        b.note(bad(1, "}"));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.skipped(), 4);
        assert_eq!(
            ab.records().iter().map(|r| r.at).collect::<Vec<_>>(),
            vec![1, 2, 5, 9]
        );
    }

    #[test]
    fn merge_is_associative_with_identity() {
        let mut a = ErrorReport::new();
        a.note(bad(3, "{x"));
        let mut b = ErrorReport::new();
        b.note(bad(1, "}"));
        let mut c = ErrorReport::new();
        c.note(bad(7, "tru"));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        let mut with_identity = a.clone();
        with_identity.merge(&ErrorReport::new());
        assert_eq!(with_identity, a);
    }

    #[test]
    fn duplicate_notes_dedup_but_count() {
        let mut a = ErrorReport::new();
        a.note(bad(4, "{x"));
        let mut b = a.clone();
        b.merge(&a);
        // The same (position, error, text) triple is one retained
        // record, but both sightings count towards the tally.
        assert_eq!(b.records().len(), 1);
        assert_eq!(b.skipped(), 2);
    }

    #[test]
    fn first_is_the_earliest_position() {
        let mut r = ErrorReport::new();
        r.note(bad(100, "{x"));
        r.note(bad(7, "}"));
        assert_eq!(r.first().unwrap().at, 7);
        assert!(!r.is_empty());
        assert!(ErrorReport::new().is_empty());
    }

    #[test]
    fn checkpoint_value_round_trips_identically() {
        let mut r = ErrorReport::new();
        r.note(bad(3, "{\"a\": nul}"));
        r.note(bad(12, "[1, 2,"));
        r.note(BadRecord {
            at: 40,
            error: parse_value("}").unwrap_err(),
            text: None,
        });
        // Skip tally beyond the retained records (as after MAX_KEPT).
        let r = ErrorReport::from_parts(r.records().to_vec(), 17);
        let value = r.checkpoint_value();
        let reparsed = parse_value(&value.to_string()).unwrap();
        let back = ErrorReport::from_checkpoint_value(&reparsed).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.skipped(), 17);
        assert!(ErrorReport::from_checkpoint_value(&parse_value("{}").unwrap()).is_err());
    }

    #[test]
    fn quarantine_round_trip() {
        let dir = std::env::temp_dir().join("typefuse-faults-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine-round-trip.ndjson");
        let mut r = ErrorReport::new();
        r.note(bad(3, "{\"a\": nul}"));
        r.note(bad(12, "[1, 2,"));
        let written = write_quarantine(&path, &r).unwrap();
        assert_eq!(written, 2);
        let back = read_quarantine(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, 3);
        assert_eq!(back[1].0, 12);
        assert_eq!(back[1].2.as_deref(), Some("[1, 2,"));
        assert!(back[0].1.contains("invalid literal"), "{}", back[0].1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn policy_accessors() {
        assert!(ErrorPolicy::default().is_fail_fast());
        assert_eq!(ErrorPolicy::skip().max_errors(), None);
        assert!(!ErrorPolicy::skip().keeps_text());
        let q = ErrorPolicy::Quarantine {
            sink: PathBuf::from("q.ndjson"),
            max_errors: Some(5),
        };
        assert!(q.keeps_text());
        assert_eq!(q.max_errors(), Some(5));
    }
}
