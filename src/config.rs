//! [`JobConfig`]: the one builder every inference entry point shares.
//!
//! [`SchemaJob`] accreted a knob per PR — workers, partitions, map
//! route, dedup mode, error policy, retries, parser limits, chaos
//! hooks — each with its own chained setter, and every consumer
//! (`infer`, `stats`, `check`, `bench`, and now the resident `serve`
//! daemon) re-plumbed the subset it knew about. `JobConfig` collapses
//! that accretion into a single declarative configuration with
//! [`Default`]: build one, hand copies to batch jobs
//! ([`JobConfig::build`]) and to warm incremental accumulators alike,
//! and every consumer honors the same options the same way.
//!
//! The old per-call setters on [`SchemaJob`] are deprecated; they
//! survive one release for migration.
//!
//! ```
//! use typefuse::prelude::*;
//! use typefuse::JobConfig;
//!
//! let job = JobConfig::new().partitions(2).build();
//! let result = job.run(Source::ndjson("{\"a\":1}\n".as_bytes())).unwrap();
//! assert_eq!(result.schema.to_string(), "{a: Num}");
//! ```

use crate::faults::ErrorPolicy;
use crate::pipeline::{DedupMode, MapPath, SchemaJob};
use typefuse_engine::{ReducePlan, Runtime};
use typefuse_infer::FuseConfig;
use typefuse_json::{ParserOptions, RetryPolicy};
use typefuse_obs::Recorder;

/// Declarative configuration for schema-inference work — batch or
/// resident.
///
/// Field semantics and defaults are identical to [`SchemaJob::new`];
/// `None` for `workers`/`partitions` means "derive from the machine"
/// (all cores, 4 partitions per worker).
#[derive(Debug, Clone, Default)]
pub struct JobConfig {
    /// Worker threads; `None` uses every available core.
    pub workers: Option<usize>,
    /// Dataset partitions; `None` derives 4 × workers.
    pub partitions: Option<usize>,
    /// Reduce topology.
    pub reduce_plan: ReducePlan,
    /// Fusion configuration (array strategy).
    pub fuse_config: FuseConfig,
    /// Map-phase route for text sources.
    pub map_path: MapPath,
    /// Reduce-phase shape dedup mode.
    pub dedup: DedupMode,
    /// Collect per-record type statistics (on by default; turn off for
    /// maximum throughput).
    pub type_stats: Option<bool>,
    /// Observability recorder shared by every phase.
    pub recorder: Recorder,
    /// How records that fail to parse are treated.
    pub error_policy: ErrorPolicy,
    /// Retry policy for transient I/O errors on text sources.
    pub retry: RetryPolicy,
    /// Parser options for text sources.
    pub parser_options: ParserOptions,
    /// Per-line size guard for text sources.
    pub max_line_bytes: Option<usize>,
    /// Fault-injection hook: panic in the Map phase at this input line.
    pub chaos_panic_at: Option<u32>,
}

impl JobConfig {
    /// The default configuration (same behaviour as `SchemaJob::new()`).
    pub fn new() -> Self {
        JobConfig::default()
    }

    /// Set the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Set the partition count.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = Some(partitions.max(1));
        self
    }

    /// Set the reduce topology.
    pub fn reduce_plan(mut self, plan: ReducePlan) -> Self {
        self.reduce_plan = plan;
        self
    }

    /// Set the fusion configuration.
    pub fn fuse_config(mut self, cfg: FuseConfig) -> Self {
        self.fuse_config = cfg;
        self
    }

    /// Set the Map-phase route for text sources.
    pub fn map_path(mut self, path: MapPath) -> Self {
        self.map_path = path;
        self
    }

    /// Set the Reduce-phase dedup mode.
    pub fn dedup(mut self, mode: DedupMode) -> Self {
        self.dedup = mode;
        self
    }

    /// Disable per-record type statistics for maximum throughput.
    pub fn without_type_stats(mut self) -> Self {
        self.type_stats = Some(false);
        self
    }

    /// Attach an observability recorder (clones share state).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Set the error policy for records that fail to parse.
    pub fn on_error(mut self, policy: ErrorPolicy) -> Self {
        self.error_policy = policy;
        self
    }

    /// Set the retry policy for transient I/O errors on text sources.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Set the full parser options for text sources.
    pub fn parser_options(mut self, options: ParserOptions) -> Self {
        self.parser_options = options;
        self
    }

    /// Set the parser's recursion limit for text sources.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.parser_options.max_depth = depth;
        self
    }

    /// Cap a single input line at `cap` bytes.
    pub fn max_line_bytes(mut self, cap: usize) -> Self {
        self.max_line_bytes = Some(cap);
        self
    }

    /// Fault injection: panic in the Map phase at this 1-based input
    /// line.
    pub fn chaos_panic_at(mut self, line: u32) -> Self {
        self.chaos_panic_at = Some(line);
        self
    }

    /// Materialize a batch [`SchemaJob`] from this configuration.
    pub fn build(&self) -> SchemaJob {
        let runtime = match self.workers {
            Some(w) => Runtime::new(w),
            None => Runtime::default(),
        };
        let partitions = self.partitions.unwrap_or(runtime.workers() * 4).max(1);
        SchemaJob {
            runtime,
            partitions,
            reduce_plan: self.reduce_plan,
            fuse_config: self.fuse_config,
            map_path: self.map_path,
            dedup: self.dedup,
            collect_type_stats: self.type_stats.unwrap_or(true),
            recorder: self.recorder.clone(),
            error_policy: self.error_policy.clone(),
            retry: self.retry,
            parser_options: self.parser_options.clone(),
            max_line_bytes: self.max_line_bytes,
            chaos_panic_at: self.chaos_panic_at,
        }
    }
}

impl From<&JobConfig> for SchemaJob {
    fn from(config: &JobConfig) -> SchemaJob {
        config.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    #[test]
    fn default_build_matches_schema_job_new() {
        let built = JobConfig::new().build();
        let legacy = SchemaJob::new();
        assert_eq!(built.runtime.workers(), legacy.runtime.workers());
        assert_eq!(built.partitions, legacy.partitions);
        assert_eq!(built.reduce_plan, legacy.reduce_plan);
        assert_eq!(built.fuse_config, legacy.fuse_config);
        assert_eq!(built.map_path, legacy.map_path);
        assert_eq!(built.dedup, legacy.dedup);
        assert_eq!(built.collect_type_stats, legacy.collect_type_stats);
        assert_eq!(built.max_line_bytes, legacy.max_line_bytes);
        assert_eq!(built.chaos_panic_at, legacy.chaos_panic_at);
    }

    #[test]
    fn builder_knobs_land_in_the_job() {
        let job = JobConfig::new()
            .workers(2)
            .partitions(7)
            .map_path(MapPath::Values)
            .dedup(DedupMode::On)
            .without_type_stats()
            .max_depth(9)
            .max_line_bytes(1024)
            .chaos_panic_at(3)
            .build();
        assert_eq!(job.runtime.workers(), 2);
        assert_eq!(job.partitions, 7);
        assert_eq!(job.map_path, MapPath::Values);
        assert_eq!(job.dedup, DedupMode::On);
        assert!(!job.collect_type_stats);
        assert_eq!(job.parser_options.max_depth, 9);
        assert_eq!(job.max_line_bytes, Some(1024));
        assert_eq!(job.chaos_panic_at, Some(3));
    }

    #[test]
    fn one_config_drives_many_jobs() {
        let config = JobConfig::new().partitions(2);
        let a = config.build().run_values(vec![json!({"a": 1})]);
        let b = config
            .build()
            .run_ndjson("{\"a\":true}\n".as_bytes())
            .unwrap();
        assert_eq!(a.schema.to_string(), "{a: Num}");
        assert_eq!(b.schema.to_string(), "{a: Bool}");
    }
}
