//! The end-to-end schema-inference pipeline: the paper's two phases wired
//! onto the execution engine, plus the measurements its evaluation
//! reports.
//!
//! Every ingestion route goes through one entry point,
//! [`SchemaJob::run`], fed by a [`Source`]:
//!
//! ```
//! use typefuse::pipeline::{SchemaJob, Source};
//!
//! let data = "{\"a\":1}\n{\"a\":\"x\",\"b\":null}\n";
//! let result = SchemaJob::new().run(Source::ndjson(data.as_bytes())).unwrap();
//! assert_eq!(result.schema.to_string(), "{a: Num + Str, b: Null?}");
//! assert_eq!(result.records, 2);
//! ```
//!
//! For text sources the Map phase defaults to the **event fast path**
//! ([`MapPath::Events`]): each line folds straight from the token stream
//! into its Figure 4 type via
//! [`streaming::infer_type_from_str`](typefuse_infer::streaming), never
//! allocating the intermediate [`Value`] tree. The classic tree route
//! stays available as [`MapPath::Values`] for differential testing —
//! both produce byte-identical schemas (property-tested).
//!
//! The legacy entry points ([`SchemaJob::run_values`],
//! [`SchemaJob::run_dataset`], [`SchemaJob::run_ndjson`]) remain as thin
//! wrappers over `run`.

use std::collections::HashSet;
use std::io::BufRead;
use std::time::{Duration, Instant};

use crate::error::{Error, IoSite};
use crate::faults::{BadRecord, ErrorPolicy, ErrorReport};
use typefuse_engine::{Dataset, ReducePlan, Runtime, StageMetrics, WorkerPanic};
use typefuse_infer::{
    infer_type_recorded, streaming, DedupFuser, FuseConfig, ProfileAcc, ProfileReport, Profiling,
    RecordedFuser, ShapeCache,
};
use typefuse_json::ndjson::read_line_bounded;
use typefuse_json::{ErrorKind, Parser, ParserOptions, Position, RetryPolicy, Value};
use typefuse_obs::{Recorder, RunReport};
use typefuse_types::Type;

/// An input for [`SchemaJob::run`]: where the records come from.
///
/// The variants differ in what the Map phase can see. Text sources
/// ([`Source::Ndjson`]) support both Map routes; value sources are
/// already trees, so they always use tree inference.
pub enum Source<'a> {
    /// In-memory values, partitioned by the job's `partitions` setting.
    Values(Vec<Value>),
    /// An already partitioned dataset (borrowed; partitioning is kept).
    Dataset(&'a Dataset<Value>),
    /// An NDJSON byte stream: one record per non-blank line.
    Ndjson(Box<dyn BufRead + 'a>),
}

impl<'a> Source<'a> {
    /// An NDJSON stream source.
    pub fn ndjson<R: BufRead + 'a>(reader: R) -> Self {
        Source::Ndjson(Box::new(reader))
    }

    /// An in-memory value source.
    pub fn values(values: Vec<Value>) -> Self {
        Source::Values(values)
    }

    /// A borrowed, already partitioned dataset source.
    pub fn dataset(dataset: &'a Dataset<Value>) -> Self {
        Source::Dataset(dataset)
    }
}

impl std::fmt::Debug for Source<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::Values(v) => f.debug_tuple("Values").field(&v.len()).finish(),
            Source::Dataset(d) => f.debug_tuple("Dataset").field(&d.count()).finish(),
            Source::Ndjson(_) => f.write_str("Ndjson(..)"),
        }
    }
}

/// Which Map-phase route text sources take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapPath {
    /// Fold parser events straight into types — no `Value` trees. The
    /// default.
    #[default]
    Events,
    /// Parse each line into a [`Value`], then infer (the paper's literal
    /// two-step reading). Kept for differential testing.
    Values,
    /// Raw-shape fast path: hash each record's structural skeleton off
    /// the stage-1 SWAR scan and serve repeats from a per-partition
    /// signature → type cache ([`typefuse_infer::ShapeCache`]); misses
    /// replay the event fold, so output is byte-identical to
    /// [`MapPath::Events`].
    Shape,
}

/// Whether the Reduce phase rides the shape-dedup route
/// ([`DedupFuser`]): hash-consed type interning plus memoized fusion, so
/// each distinct `schema ⊔ shape` step is computed once and duplicates
/// replay it O(1). Output is byte-identical to the plain route either
/// way; the modes only trade constant factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupMode {
    /// Sample the first records and dedup when the data looks redundant —
    /// see [`dedup_auto_sample`]. The default.
    #[default]
    Auto,
    /// Always dedup.
    On,
    /// Never dedup (the classic [`RecordedFuser`] reduce).
    Off,
}

/// The `--dedup auto` heuristic: inspect up to the first 512 inferred
/// types and pick the dedup route when at least 64 were seen and at most
/// half of them are distinct. Tiny inputs and structurally unique
/// streams (every record its own shape, e.g. Wikidata's ids-as-keys
/// records) stay on the plain route, where interning would only add
/// overhead.
pub fn dedup_auto_sample<'a>(types: impl IntoIterator<Item = &'a Type>) -> bool {
    const SAMPLE: usize = 512;
    const MIN_SAMPLE: usize = 64;
    let mut distinct: HashSet<&Type> = HashSet::new();
    let mut seen = 0usize;
    for ty in types.into_iter().take(SAMPLE) {
        seen += 1;
        distinct.insert(ty);
    }
    seen >= MIN_SAMPLE && distinct.len() * 2 <= seen
}

/// Configuration of a schema-inference run.
#[derive(Debug, Clone)]
pub struct SchemaJob {
    /// Worker threads (default: all available).
    pub runtime: Runtime,
    /// Number of dataset partitions (default: 4 × workers).
    pub partitions: usize,
    /// How the per-partition schemas are combined.
    pub reduce_plan: ReducePlan,
    /// Fusion configuration (array strategy).
    pub fuse_config: FuseConfig,
    /// Map-phase route for text sources (default: [`MapPath::Events`]).
    pub map_path: MapPath,
    /// Whether the Reduce phase dedups shapes (default:
    /// [`DedupMode::Auto`]). Profiled runs ([`SchemaJob::run_profiled`])
    /// ignore this — they need every raw value for per-path statistics.
    pub dedup: DedupMode,
    /// Whether to collect per-record type statistics (distinct types,
    /// min/max/avg sizes — the Tables 2–5 columns). Costs one hash-set
    /// insert per record.
    pub collect_type_stats: bool,
    /// Observability recorder shared by every phase of the run (disabled
    /// by default, which costs nothing). See [`SchemaResult::run_report`]
    /// for turning it into a structured report after the run.
    pub recorder: Recorder,
    /// How records that fail to parse are treated (default:
    /// [`ErrorPolicy::FailFast`], byte-identical to the pre-policy
    /// behaviour). Skipped or quarantined records surface in
    /// [`SchemaResult::errors`]; counters `ingest.skipped` and
    /// `ingest.quarantined` track them.
    pub error_policy: ErrorPolicy,
    /// Retry policy for transient I/O errors while reading text sources
    /// (default: [`RetryPolicy::none`]). Retries count `ingest.retries`.
    pub retry: RetryPolicy,
    /// Parser options for text sources: recursion limit
    /// (`max_depth`, default 512) and duplicate-key handling.
    pub parser_options: ParserOptions,
    /// Per-line size guard for text sources: a line longer than this
    /// degrades into a `RecordTooLarge` parse error handled per
    /// `error_policy` instead of ballooning memory (default: no cap).
    pub max_line_bytes: Option<usize>,
    /// Fault-injection hook: panic inside the Map closure when it
    /// reaches this 1-based input line. Exercises worker panic
    /// isolation ([`Error::Worker`]) end to end; `None` in production.
    pub chaos_panic_at: Option<u32>,
}

impl Default for SchemaJob {
    fn default() -> Self {
        Self::new()
    }
}

impl SchemaJob {
    /// A job with default settings.
    pub fn new() -> Self {
        let runtime = Runtime::default();
        let partitions = runtime.workers() * 4;
        SchemaJob {
            runtime,
            partitions,
            reduce_plan: ReducePlan::default(),
            fuse_config: FuseConfig::default(),
            map_path: MapPath::default(),
            dedup: DedupMode::default(),
            collect_type_stats: true,
            recorder: Recorder::disabled(),
            error_policy: ErrorPolicy::default(),
            retry: RetryPolicy::none(),
            parser_options: ParserOptions::default(),
            max_line_bytes: None,
            chaos_panic_at: None,
        }
    }

    /// Set the worker count.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn workers(mut self, workers: usize) -> Self {
        self.runtime = Runtime::new(workers);
        self
    }

    /// Set the partition count.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions.max(1);
        self
    }

    /// Set the reduce topology.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn reduce_plan(mut self, plan: ReducePlan) -> Self {
        self.reduce_plan = plan;
        self
    }

    /// Set the fusion configuration.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn fuse_config(mut self, cfg: FuseConfig) -> Self {
        self.fuse_config = cfg;
        self
    }

    /// Set the Map-phase route for text sources.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn map_path(mut self, path: MapPath) -> Self {
        self.map_path = path;
        self
    }

    /// Set the Reduce-phase dedup mode.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn dedup(mut self, mode: DedupMode) -> Self {
        self.dedup = mode;
        self
    }

    /// Disable per-record type statistics for maximum throughput.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn without_type_stats(mut self) -> Self {
        self.collect_type_stats = false;
        self
    }

    /// Attach an observability recorder. Clones share state, so hold on
    /// to one clone and snapshot it (or call
    /// [`SchemaResult::run_report`]) after the run.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Set the error policy for records that fail to parse.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn on_error(mut self, policy: ErrorPolicy) -> Self {
        self.error_policy = policy;
        self
    }

    /// Set the retry policy for transient I/O errors on text sources.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Set the full parser options for text sources.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn parser_options(mut self, options: ParserOptions) -> Self {
        self.parser_options = options;
        self
    }

    /// Set the parser's recursion limit for text sources.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.parser_options.max_depth = depth;
        self
    }

    /// Cap a single input line at `cap` bytes; longer lines degrade
    /// into `RecordTooLarge` parse errors handled per the error policy.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn max_line_bytes(mut self, cap: usize) -> Self {
        self.max_line_bytes = Some(cap);
        self
    }

    /// Fault injection: panic in the Map phase at this 1-based input
    /// line (text sources), to exercise [`Error::Worker`] isolation.
    #[deprecated(note = "configure via `typefuse::JobConfig` and `build()` instead")]
    pub fn chaos_panic_at(mut self, line: u32) -> Self {
        self.chaos_panic_at = Some(line);
        self
    }

    /// Run the pipeline over any [`Source`].
    ///
    /// In-memory sources cannot fail on input; NDJSON sources fail on an
    /// unreadable chunk ([`Error::Io`], with the line it stopped at)
    /// and handle malformed records per the configured
    /// [`ErrorPolicy`]: fail fast at the earliest bad line
    /// ([`Error::Parse`], anchored at its 1-based line number), skip, or
    /// quarantine — skipped records are reported in
    /// [`SchemaResult::errors`]. A panicking worker surfaces as
    /// [`Error::Worker`] on every route.
    pub fn run(&self, source: Source<'_>) -> Result<SchemaResult, Error> {
        match source {
            Source::Values(values) => {
                self.run_value_dataset(&Dataset::from_vec(values, self.partitions))
            }
            Source::Dataset(dataset) => self.run_value_dataset(dataset),
            Source::Ndjson(reader) => self.run_lines(reader),
        }
    }

    /// Run over an in-memory value collection.
    pub fn run_values(&self, values: Vec<Value>) -> SchemaResult {
        self.run(Source::Values(values))
            .expect("in-memory sources cannot fail")
    }

    /// Run over an already partitioned dataset.
    pub fn run_dataset(&self, dataset: &Dataset<Value>) -> SchemaResult {
        self.run(Source::Dataset(dataset))
            .expect("in-memory sources cannot fail")
    }

    /// Run over an NDJSON stream, failing on the first malformed record.
    /// With an enabled recorder, reading counts `json.bytes` /
    /// `json.lines` / `json.records` under a `pipeline.read` span.
    pub fn run_ndjson<R: BufRead>(&self, reader: R) -> Result<SchemaResult, Error> {
        self.run(Source::ndjson(reader))
    }

    /// Run the **profiled** pipeline over any [`Source`]: one fused
    /// Map+Reduce pass with the [`Profiling`] strategy, producing a
    /// [`ProfileReport`] — the fused schema plus per-path presence
    /// counts, kind/length/numeric statistics and provenance lines.
    ///
    /// Records are numbered by their 1-based input line (NDJSON) or
    /// ordinal (in-memory sources), and those numbers survive the
    /// parallel reduce unchanged: every provenance aggregate is a
    /// minimum, so the profile — and its serialized report — is
    /// byte-identical for any worker count, partitioning, reduce plan
    /// and Map route (`job.map_path` picks the event fold or the tree
    /// walk for text sources; both observe identically).
    ///
    /// Parse failures are carried *through* the reduce as mergeable
    /// accumulator state, so the reported error is the earliest bad
    /// line in input order, exactly like [`SchemaJob::run`].
    pub fn run_profiled(&self, source: Source<'_>) -> Result<ProfiledResult, Error> {
        let wall_start = Instant::now();
        let rec = &self.recorder;
        let fuser = Profiling {
            config: self.fuse_config,
        };
        match source {
            Source::Values(values) => {
                let numbered: Vec<(u64, Value)> = values
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (i as u64 + 1, v))
                    .collect();
                let dataset = Dataset::from_vec(numbered, self.partitions);
                let (acc, fold_metrics) = {
                    let _span = rec.span("pipeline.profile");
                    dataset.reduce_items(
                        &self.runtime,
                        self.reduce_plan,
                        &fuser,
                        rec,
                        |_, acc, (line, v): &(u64, Value)| acc.absorb_value_at(*line, v),
                    )
                };
                self.finish_profiled(
                    acc,
                    dataset.num_partitions(),
                    fold_metrics,
                    wall_start,
                    false,
                )
            }
            Source::Dataset(dataset) => {
                // Keep the caller's partitioning; number records by their
                // global iteration order so 1 partition and N agree.
                let mut ordinal = 0u64;
                let parts: Vec<Vec<(u64, &Value)>> = dataset
                    .partitions()
                    .iter()
                    .map(|part| {
                        part.iter()
                            .map(|v| {
                                ordinal += 1;
                                (ordinal, v)
                            })
                            .collect()
                    })
                    .collect();
                let numbered = Dataset::from_partitions(parts);
                let (acc, fold_metrics) = {
                    let _span = rec.span("pipeline.profile");
                    numbered.reduce_items(
                        &self.runtime,
                        self.reduce_plan,
                        &fuser,
                        rec,
                        |_, acc, (line, v): &(u64, &Value)| acc.absorb_value_at(*line, v),
                    )
                };
                self.finish_profiled(
                    acc,
                    numbered.num_partitions(),
                    fold_metrics,
                    wall_start,
                    false,
                )
            }
            Source::Ndjson(reader) => {
                let lines: Vec<(u32, String)> = {
                    let _span = rec.span("pipeline.read");
                    read_lines(reader, rec)?
                };
                let dataset = Dataset::from_vec(lines, self.partitions);
                let map_path = self.map_path;
                let (acc, fold_metrics) = {
                    let _span = rec.span("pipeline.profile");
                    dataset.reduce_items(
                        &self.runtime,
                        self.reduce_plan,
                        &fuser,
                        rec,
                        move |_, acc, (line, text): &(u32, String)| match map_path {
                            // Profiling must observe every record's
                            // values, so the shape route cannot shortcut
                            // it: fold events like the default route.
                            MapPath::Events | MapPath::Shape => {
                                acc.absorb_line(u64::from(*line), text)
                            }
                            MapPath::Values => acc.absorb_line_as_value(u64::from(*line), text),
                        },
                    )
                };
                self.finish_profiled(
                    acc,
                    dataset.num_partitions(),
                    fold_metrics,
                    wall_start,
                    true,
                )
            }
        }
    }

    /// Shared tail of the profiled routes: surface the earliest parse
    /// error (re-anchored at its input line) or finish the profile.
    fn finish_profiled(
        &self,
        acc: Option<ProfileAcc>,
        partitions: usize,
        fold_metrics: StageMetrics,
        wall_start: Instant,
        count_json_records: bool,
    ) -> Result<ProfiledResult, Error> {
        let rec = &self.recorder;
        let acc = acc.unwrap_or_else(|| ProfileAcc::with_config(self.fuse_config));
        if let Some((line, e)) = acc.first_error() {
            rec.add("json.parse_errors", 1);
            let mut pos = e.span().start;
            pos.line = line as u32;
            return Err(Error::Parse(typefuse_json::Error::at(
                e.kind().clone(),
                pos,
            )));
        }
        let profile = acc.finish();
        let records = profile.records;
        if count_json_records {
            rec.add("json.records", records);
        }
        rec.add("records", records);
        Ok(ProfiledResult {
            profile,
            records,
            partitions,
            wall: wall_start.elapsed(),
            fold_metrics,
        })
    }

    /// The tree Map phase: infer one type per materialised value
    /// (Figure 4), then hand off to the shared Reduce tail.
    fn run_value_dataset(&self, dataset: &Dataset<Value>) -> Result<SchemaResult, Error> {
        let wall_start = Instant::now();
        let rec = &self.recorder;
        let map_start = Instant::now();
        let (types, map_metrics) = {
            let _span = rec.span("pipeline.map");
            dataset.try_map_metered(&self.runtime, |v| infer_type_recorded(v, rec))
        };
        let types = self.surface_worker(types)?;
        self.finish(
            types,
            dataset.count() as u64,
            ErrorReport::new(),
            wall_start,
            map_start.elapsed(),
            map_metrics,
        )
    }

    /// The unified text route for every Map path: read lines (with
    /// retry and the line-size guard), parse/infer each in parallel —
    /// [`MapPath::Events`] folds the token stream straight into a type,
    /// [`MapPath::Values`] materialises the `Value` tree first,
    /// [`MapPath::Shape`] serves repeated raw shapes from a
    /// per-partition signature cache (flushing `infer.shape_hits` /
    /// `infer.shape_misses` as each partition completes) and replays the
    /// event fold on misses — then
    /// apply the error policy to whatever failed. Counters:
    /// `json.bytes` / `json.lines` at read time, `json.records` /
    /// `json.parse_errors` at parse time (the event fold additionally
    /// counts `infer.events` and the `infer.frames` histogram), and
    /// `ingest.skipped` / `ingest.quarantined` / `ingest.retries` /
    /// `ingest.worker_panics` for the fault-tolerance layer.
    fn run_lines(&self, reader: Box<dyn BufRead + '_>) -> Result<SchemaResult, Error> {
        let wall_start = Instant::now();
        let rec = &self.recorder;
        let lines: Vec<RawRecord> = {
            let _span = rec.span("pipeline.read");
            self.read_raw_lines(reader)?
        };
        let dataset = Dataset::from_vec(lines, self.partitions);

        let map_start = Instant::now();
        let map_path = self.map_path;
        let chaos = self.chaos_panic_at;
        let options = &self.parser_options;
        // Shared per-record tail for every route: chaos injection, the
        // reader's pre-errors, record/error counters and error
        // re-anchoring at the record's input line (the column within the
        // line is preserved).
        let infer_record =
            |record: &RawRecord,
             infer: &mut dyn FnMut(&RawRecord) -> Result<Type, typefuse_json::Error>|
             -> Result<Type, typefuse_json::Error> {
                if chaos == Some(record.line) {
                    panic!("injected chaos panic at line {}", record.line);
                }
                if let Some(e) = &record.pre_error {
                    rec.add("json.parse_errors", 1);
                    return Err(e.clone());
                }
                match infer(record) {
                    Ok(ty) => {
                        rec.add("json.records", 1);
                        Ok(ty)
                    }
                    Err(e) => {
                        rec.add("json.parse_errors", 1);
                        let mut pos = e.span().start;
                        pos.line = record.line;
                        Err(typefuse_json::Error::at(e.kind().clone(), pos))
                    }
                }
            };
        let (typed, map_metrics) = {
            let _span = rec.span("pipeline.map");
            match map_path {
                // The shape route holds a per-partition signature cache,
                // so it maps whole partitions; hit/miss totals flush to
                // the recorder as the partition finishes.
                MapPath::Shape => dataset.try_map_partitions_metered(&self.runtime, |_, part| {
                    let mut cache = ShapeCache::new();
                    let out = part
                        .iter()
                        .map(|record| {
                            infer_record(record, &mut |r: &RawRecord| {
                                cache.infer_line(r.text.as_bytes(), options, rec)
                            })
                        })
                        .collect();
                    cache.flush_counters(rec);
                    out
                }),
                MapPath::Events => dataset.try_map_metered(&self.runtime, |record: &RawRecord| {
                    infer_record(record, &mut |r: &RawRecord| {
                        streaming::infer_with_options_recorded(
                            r.text.as_bytes(),
                            options.clone(),
                            rec,
                        )
                    })
                }),
                MapPath::Values => dataset.try_map_metered(&self.runtime, |record: &RawRecord| {
                    infer_record(record, &mut |r: &RawRecord| {
                        Parser::with_options(r.text.as_bytes(), options.clone())
                            .parse_complete()
                            .map(|v| infer_type_recorded(&v, rec))
                    })
                }),
            }
        };
        let typed = self.surface_worker(typed)?;
        let map_time = map_start.elapsed();

        // Partition the outcomes into clean types and the error report
        // (one commutative monoid, like the schema itself), then let the
        // policy decide.
        let keeps_text = self.error_policy.keeps_text();
        let mut types: Vec<Type> = Vec::new();
        let mut report = ErrorReport::new();
        for (outcome, record) in typed.collect().into_iter().zip(dataset.iter()) {
            match outcome {
                Ok(ty) => types.push(ty),
                Err(e) => report.note(BadRecord {
                    at: u64::from(record.line),
                    error: e,
                    text: keeps_text.then(|| record.text.clone()),
                }),
            }
        }
        self.apply_policy(&report)?;

        let records = types.len() as u64;
        let types = Dataset::from_vec(types, self.partitions);
        self.finish(types, records, report, wall_start, map_time, map_metrics)
    }

    /// Read the raw lines of a text source, retrying transient I/O
    /// errors and enforcing the line-size guard. Oversized and
    /// non-UTF-8 lines come back as records with a `pre_error` (so the
    /// error policy sees them in input order); an unrecoverable read
    /// error aborts with the line it happened at.
    fn read_raw_lines(&self, mut reader: Box<dyn BufRead + '_>) -> Result<Vec<RawRecord>, Error> {
        let rec = &self.recorder;
        let mut out = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut line_no: u32 = 0;
        loop {
            buf.clear();
            let raw =
                read_line_bounded(&mut reader, &mut buf, self.max_line_bytes, self.retry, rec)
                    .map_err(|e| Error::io_at(e, IoSite::line(line_no + 1)))?;
            if raw.consumed == 0 {
                return Ok(out);
            }
            rec.add("json.bytes", raw.consumed as u64);
            line_no += 1;
            rec.add("json.lines", 1);
            let pre_error = |kind: ErrorKind| {
                typefuse_json::Error::at(
                    kind,
                    Position {
                        offset: 0,
                        line: line_no,
                        column: 1,
                    },
                )
            };
            if raw.truncated {
                let cap = self.max_line_bytes.unwrap_or(usize::MAX);
                out.push(RawRecord {
                    line: line_no,
                    text: String::from_utf8_lossy(&buf).into_owned(),
                    pre_error: Some(pre_error(ErrorKind::RecordTooLarge(cap))),
                });
                continue;
            }
            match std::str::from_utf8(&buf) {
                Ok(text) => {
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        out.push(RawRecord {
                            line: line_no,
                            text: trimmed.to_string(),
                            pre_error: None,
                        });
                    }
                }
                // A non-UTF-8 line is a malformed *record*, not a dead
                // stream: report it per policy and keep reading.
                Err(_) => out.push(RawRecord {
                    line: line_no,
                    text: String::from_utf8_lossy(&buf).into_owned(),
                    pre_error: Some(pre_error(ErrorKind::InvalidUtf8)),
                }),
            }
        }
    }

    /// Decide what the collected bad records mean under this job's
    /// [`ErrorPolicy`]: fail fast on the earliest one, or skip (and
    /// quarantine) them subject to the error budget. The budget is
    /// checked on the *merged* report, so the verdict is independent of
    /// worker count and partitioning.
    fn apply_policy(&self, report: &ErrorReport) -> Result<(), Error> {
        self.error_policy.enforce(report, &self.recorder)
    }

    /// Count and convert an isolated worker panic.
    fn surface_worker<T>(&self, result: Result<T, WorkerPanic>) -> Result<T, Error> {
        result.map_err(|p| {
            self.recorder.add("ingest.worker_panics", p.panics as u64);
            Error::Worker(p)
        })
    }

    /// The shared tail of every route: type statistics, trait-driven
    /// Reduce (Figure 6 on the engine's `reduce_fused`, via
    /// [`RecordedFuser`] or — when [`DedupMode`] resolves on — the
    /// shape-dedup [`DedupFuser`]), and result assembly.
    fn finish(
        &self,
        types: Dataset<Type>,
        records: u64,
        errors: ErrorReport,
        wall_start: Instant,
        map_time: Duration,
        map_metrics: StageMetrics,
    ) -> Result<SchemaResult, Error> {
        let rec = &self.recorder;

        // ---- Type statistics (the Tables 2–5 columns). ----------------
        let type_stats = {
            let _span = rec.span("pipeline.stats");
            let stats_source: Vec<&Type> = if self.collect_type_stats {
                types.iter().collect()
            } else {
                Vec::new()
            };
            TypeStats::measure(stats_source)
        };

        // ---- Reduce phase: fuse (Figure 6). ----------------------------
        // Both routes are Fuser strategies on the same engine reduce and
        // produce byte-identical schemas; dedup only changes constants.
        let use_dedup = match self.dedup {
            DedupMode::On => true,
            DedupMode::Off => false,
            DedupMode::Auto => dedup_auto_sample(types.iter()),
        };
        let reduce_start = Instant::now();
        let (fused, reduce_metrics) = {
            let _span = rec.span("pipeline.reduce");
            if use_dedup {
                rec.add("infer.dedup", 1);
                let fuser = DedupFuser::new(self.fuse_config, rec.clone());
                types.try_reduce_fused(&self.runtime, self.reduce_plan, &fuser, rec)
            } else {
                let fuser = RecordedFuser::new(self.fuse_config, rec.clone());
                types.try_reduce_fused(&self.runtime, self.reduce_plan, &fuser, rec)
            }
        };
        let fused = self.surface_worker(fused)?;
        let reduce_time = reduce_start.elapsed();

        rec.add("records", records);
        let schema = fused.unwrap_or(Type::Bottom);
        Ok(SchemaResult {
            fused_size: schema.size(),
            schema,
            records,
            partitions: types.num_partitions(),
            type_stats,
            errors,
            map_time,
            reduce_time,
            wall: wall_start.elapsed(),
            map_metrics,
            reduce_metrics,
        })
    }
}

/// One raw input line, pre-checked at read time: `pre_error` carries a
/// read-level defect (oversized, non-UTF-8) so the Map phase and the
/// error policy see every bad record in input order.
#[derive(Debug, Clone)]
struct RawRecord {
    /// 1-based input line number.
    line: u32,
    /// Trimmed line content (lossy UTF-8 and capped when `pre_error`).
    text: String,
    /// A defect detected while reading, if any.
    pre_error: Option<typefuse_json::Error>,
}

/// Read an NDJSON stream into `(line_no, trimmed_line)` pairs, skipping
/// blanks, with the same byte/line accounting as
/// [`NdjsonReader`](typefuse_json::NdjsonReader).
fn read_lines(
    mut reader: Box<dyn BufRead + '_>,
    rec: &Recorder,
) -> Result<Vec<(u32, String)>, Error> {
    let mut lines = Vec::new();
    let mut buf = String::new();
    let mut line_no: u32 = 0;
    loop {
        buf.clear();
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            return Ok(lines);
        }
        rec.add("json.bytes", n as u64);
        line_no += 1;
        rec.add("json.lines", 1);
        let trimmed = buf.trim();
        if !trimmed.is_empty() {
            lines.push((line_no, trimmed.to_string()));
        }
    }
}

/// Distinct-type statistics — the "Inferred types size" columns of
/// Tables 2–5.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeStats {
    /// Number of distinct inferred types.
    pub distinct: usize,
    /// Smallest inferred type size.
    pub min_size: usize,
    /// Largest inferred type size.
    pub max_size: usize,
    /// Mean inferred type size over *all* records (not just distinct).
    pub avg_size: f64,
}

impl TypeStats {
    fn measure<'a>(types: Vec<&'a Type>) -> TypeStats {
        if types.is_empty() {
            return TypeStats::default();
        }
        let mut distinct: HashSet<&'a Type> = HashSet::with_capacity(types.len() / 4);
        let mut min_size = usize::MAX;
        let mut max_size = 0usize;
        let mut sum = 0u64;
        for t in &types {
            let size = t.size();
            min_size = min_size.min(size);
            max_size = max_size.max(size);
            sum += size as u64;
            distinct.insert(t);
        }
        TypeStats {
            distinct: distinct.len(),
            min_size,
            max_size,
            avg_size: sum as f64 / types.len() as f64,
        }
    }
}

/// The outcome of a schema-inference run.
#[derive(Debug, Clone)]
pub struct SchemaResult {
    /// The fused schema.
    pub schema: Type,
    /// Size of the fused schema (AST nodes) — the "Fused types size"
    /// column.
    pub fused_size: usize,
    /// Number of input records.
    pub records: u64,
    /// Partitions processed.
    pub partitions: usize,
    /// Distinct / min / max / avg inferred-type statistics.
    pub type_stats: TypeStats,
    /// Records skipped or quarantined under the job's [`ErrorPolicy`]
    /// (always empty for `FailFast` — the run errors instead).
    pub errors: ErrorReport,
    /// Wall time of the Map (inference) phase.
    pub map_time: Duration,
    /// Wall time of the Reduce (fusion) phase.
    pub reduce_time: Duration,
    /// Total wall time including statistics collection.
    pub wall: Duration,
    /// Per-partition metrics of the Map phase.
    pub map_metrics: StageMetrics,
    /// Per-partition metrics of the partition-local fold.
    pub reduce_metrics: StageMetrics,
}

impl SchemaResult {
    /// The succinctness ratio the paper discusses: fused size over the
    /// average inferred size (≤ 1.4 for GitHub, ≤ 4 for Twitter, larger
    /// for Wikidata).
    pub fn compaction_ratio(&self) -> f64 {
        if self.type_stats.avg_size == 0.0 {
            0.0
        } else {
            self.fused_size as f64 / self.type_stats.avg_size
        }
    }

    /// Assemble the full structured run report: the recorder's counters,
    /// gauges, histograms, spans and trace, plus this result's
    /// per-stage task timings (`map` and `reduce.local_fold`, each with
    /// per-task queue-wait vs execute split) and headline values.
    ///
    /// Pass the same recorder the job ran with; a disabled recorder
    /// still yields the stage timings and headline values.
    pub fn run_report(&self, recorder: &Recorder) -> RunReport {
        let mut report = recorder.snapshot();
        report.counters.insert("records".to_string(), self.records);
        report.stages.push(self.map_metrics.stage_report("map"));
        report
            .stages
            .push(self.reduce_metrics.stage_report("reduce.local_fold"));
        report
            .values
            .insert("wall_seconds".to_string(), self.wall.as_secs_f64());
        report
            .values
            .insert("map_seconds".to_string(), self.map_time.as_secs_f64());
        report
            .values
            .insert("reduce_seconds".to_string(), self.reduce_time.as_secs_f64());
        report
            .values
            .insert("fused_size".to_string(), self.fused_size as f64);
        report
            .values
            .insert("compaction_ratio".to_string(), self.compaction_ratio());
        report
            .meta
            .insert("partitions".to_string(), self.partitions.to_string());
        report
            .meta
            .insert("schema".to_string(), self.schema.to_string());
        report
    }
}

/// The outcome of a profiled run ([`SchemaJob::run_profiled`]).
#[derive(Debug, Clone)]
pub struct ProfiledResult {
    /// The per-path profile, including the fused schema.
    pub profile: ProfileReport,
    /// Number of input records.
    pub records: u64,
    /// Partitions processed.
    pub partitions: usize,
    /// Total wall time.
    pub wall: Duration,
    /// Per-partition metrics of the profiled fold.
    pub fold_metrics: StageMetrics,
}

impl ProfiledResult {
    /// Assemble a structured run report for this profiled run, mirroring
    /// [`SchemaResult::run_report`]: recorder state plus the fold's
    /// per-task timings and headline values.
    pub fn run_report(&self, recorder: &Recorder) -> RunReport {
        let mut report = recorder.snapshot();
        report.counters.insert("records".to_string(), self.records);
        report
            .stages
            .push(self.fold_metrics.stage_report("profile.local_fold"));
        report
            .values
            .insert("wall_seconds".to_string(), self.wall.as_secs_f64());
        report.values.insert(
            "profiled_paths".to_string(),
            self.profile.paths.len() as f64,
        );
        report
            .meta
            .insert("partitions".to_string(), self.partitions.to_string());
        report
            .meta
            .insert("schema".to_string(), self.profile.schema.to_string());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JobConfig;
    use typefuse_json::json;

    fn values() -> Vec<Value> {
        vec![
            json!({"a": 1, "b": "x"}),
            json!({"a": 2, "b": "y"}),
            json!({"a": null, "c": [1, 2]}),
            json!({"a": 1, "b": "x"}),
        ]
    }

    fn as_ndjson(values: &[Value]) -> String {
        let mut buf = Vec::new();
        typefuse_json::ndjson::write_ndjson(&mut buf, values).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn end_to_end_schema() {
        let r = JobConfig::new().partitions(2).build().run_values(values());
        assert_eq!(
            r.schema.to_string(),
            "{a: Null + Num, b: Str?, c: [Num, Num]?}"
        );
        assert_eq!(r.records, 4);
        assert_eq!(r.partitions, 2);
        for v in values() {
            assert!(r.schema.admits(&v));
        }
    }

    #[test]
    fn type_stats_columns() {
        let r = SchemaJob::new().run_values(values());
        // 2 distinct types: three of the four records infer {a: Num, b: Str}.
        assert_eq!(r.type_stats.distinct, 2);
        assert!(r.type_stats.min_size <= r.type_stats.max_size);
        assert!(r.type_stats.avg_size >= r.type_stats.min_size as f64);
        assert!(r.type_stats.avg_size <= r.type_stats.max_size as f64);
        assert_eq!(r.fused_size, r.schema.size());
        assert!(r.compaction_ratio() > 0.0);
    }

    #[test]
    fn partitioning_does_not_change_the_schema() {
        let base = JobConfig::new()
            .partitions(1)
            .build()
            .run_values(values())
            .schema;
        for parts in [2, 3, 7, 64] {
            let r = JobConfig::new()
                .partitions(parts)
                .build()
                .run_values(values());
            assert_eq!(r.schema, base, "partitions = {parts}");
        }
    }

    #[test]
    fn reduce_plans_agree() {
        let seq = JobConfig::new()
            .reduce_plan(ReducePlan::Sequential)
            .build()
            .run_values(values())
            .schema;
        let tree = JobConfig::new()
            .reduce_plan(ReducePlan::Tree { arity: 2 })
            .build()
            .run_values(values())
            .schema;
        assert_eq!(seq, tree);
    }

    #[test]
    fn empty_input() {
        let r = SchemaJob::new().run_values(vec![]);
        assert_eq!(r.schema, Type::Bottom);
        assert_eq!(r.records, 0);
        assert_eq!(r.type_stats, TypeStats::default());
        assert_eq!(r.compaction_ratio(), 0.0);
    }

    #[test]
    fn ndjson_entry_point() {
        let data = "{\"a\":1}\n{\"a\":\"x\"}\n";
        let r = SchemaJob::new().run_ndjson(data.as_bytes()).unwrap();
        assert_eq!(r.schema.to_string(), "{a: Num + Str}");

        let bad = "{\"a\":1}\nnot json\n";
        assert!(JobConfig::new().build().run_ndjson(bad.as_bytes()).is_err());
    }

    #[test]
    fn map_paths_agree_on_every_source_shape() {
        let data = as_ndjson(&values());
        let via_events = JobConfig::new()
            .map_path(MapPath::Events)
            .build()
            .run_ndjson(data.as_bytes())
            .unwrap();
        let via_values = JobConfig::new()
            .map_path(MapPath::Values)
            .build()
            .run_ndjson(data.as_bytes())
            .unwrap();
        let in_memory = SchemaJob::new().run_values(values());
        assert_eq!(via_events.schema, via_values.schema);
        assert_eq!(via_events.schema, in_memory.schema);
        assert_eq!(via_events.records, 4);
        assert_eq!(via_events.type_stats, via_values.type_stats);
    }

    #[test]
    fn events_path_errors_carry_line_numbers() {
        let bad = "{\"a\":1}\n\n{broken\n";
        let err = SchemaJob::new().run_ndjson(bad.as_bytes()).unwrap_err();
        match err {
            Error::Parse(e) => assert_eq!(e.span().start.line, 3),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn events_path_reports_earliest_bad_line() {
        let bad = "{\"ok\":1}\n{bad1\n{\"ok\":2}\n{bad2\n";
        let err = JobConfig::new()
            .partitions(4)
            .build()
            .run_ndjson(bad.as_bytes())
            .unwrap_err();
        assert_eq!(err.span().unwrap().start.line, 2);
    }

    #[test]
    fn recorded_run_produces_a_full_report() {
        let rec = Recorder::enabled();
        let r = JobConfig::new()
            .partitions(2)
            .recorder(rec.clone())
            .build()
            .run_values(values());
        let report = r.run_report(&rec);

        assert_eq!(report.counters["records"], 4);
        assert_eq!(report.counters["infer.types"], 4);
        // 4 records in 2 partitions: 2 fuses in the local folds, then 1
        // combining the two partials.
        assert_eq!(report.counters["fuse.calls"], 3);
        assert_eq!(report.histograms["fuse.union_width"].count, 3);
        assert_eq!(report.histograms["infer.record_width"].count, 4);
        assert!(report.gauges["infer.max_depth"] >= 2);
        assert!(report.spans.contains_key("pipeline.map"));
        assert!(report.spans.contains_key("pipeline.reduce"));
        assert!(report.spans.contains_key("reduce.level.0"));

        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["map", "reduce.local_fold"]);
        for stage in &report.stages {
            assert_eq!(stage.tasks.len(), 2, "one task per partition");
        }
        assert!(report.values.contains_key("wall_seconds"));

        // The report serializes, and the trace is non-empty Chrome JSON.
        let json = report.to_json();
        assert!(json.contains("\"fuse.calls\""));
        assert!(rec.chrome_trace_json().contains("\"traceEvents\""));
    }

    #[test]
    fn recorded_events_run_mirrors_the_value_report() {
        let data = as_ndjson(&values());
        let rec = Recorder::enabled();
        let r = JobConfig::new()
            .partitions(2)
            .recorder(rec.clone())
            .build()
            .run_ndjson(data.as_bytes())
            .unwrap();
        let report = r.run_report(&rec);
        // Same Map/Reduce metric names as the tree route...
        assert_eq!(report.counters["records"], 4);
        assert_eq!(report.counters["infer.types"], 4);
        assert_eq!(report.counters["fuse.calls"], 3);
        assert_eq!(report.histograms["infer.record_width"].count, 4);
        // ...plus the event-fold extras.
        assert!(report.counters["infer.events"] > 0);
        assert_eq!(report.histograms["infer.frames"].count, 4);
        assert!(report.spans.contains_key("pipeline.read"));
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["map", "reduce.local_fold"]);
    }

    #[test]
    fn disabled_recorder_report_still_has_stages_and_records() {
        let r = JobConfig::new().partitions(2).build().run_values(values());
        let report = r.run_report(&Recorder::disabled());
        assert_eq!(report.counters["records"], 4);
        assert_eq!(report.stages.len(), 2);
        assert!(report.histograms.is_empty());
    }

    #[test]
    fn recorded_ndjson_counts_io() {
        let data = "{\"a\":1}\n{\"a\":\"x\"}\n";
        for path in [MapPath::Events, MapPath::Values] {
            let rec = Recorder::enabled();
            let r = JobConfig::new()
                .map_path(path)
                .recorder(rec.clone())
                .build()
                .run_ndjson(data.as_bytes())
                .unwrap();
            let report = r.run_report(&rec);
            assert_eq!(report.counters["json.bytes"], data.len() as u64, "{path:?}");
            assert_eq!(report.counters["json.lines"], 2, "{path:?}");
            assert_eq!(report.counters["json.records"], 2, "{path:?}");
            assert!(report.spans.contains_key("pipeline.read"), "{path:?}");
        }
    }

    #[test]
    fn profiled_run_matches_plain_schema_and_counts() {
        let data = as_ndjson(&values());
        let plain = SchemaJob::new().run_ndjson(data.as_bytes()).unwrap();
        let profiled = SchemaJob::new()
            .run_profiled(Source::ndjson(data.as_bytes()))
            .unwrap();
        assert_eq!(profiled.profile.schema, plain.schema);
        assert_eq!(profiled.records, 4);
        let a = profiled.profile.get("$.a").unwrap();
        assert_eq!(a.count, 4);
        // b is present at lines 1, 2 and 4; line 3 demoted it.
        let b = profiled.profile.get("$.b").unwrap();
        assert_eq!(b.count, 3);
        assert_eq!(b.first_absent_line, Some(3));
        // c's Array branch was introduced at line 3.
        let c = profiled.profile.get("$.c").unwrap();
        assert_eq!(c.first_line(), Some(3));
    }

    #[test]
    fn profiled_run_is_invariant_across_workers_partitions_and_routes() {
        let data = as_ndjson(&values());
        let baseline = JobConfig::new()
            .workers(1)
            .partitions(1)
            .build()
            .run_profiled(Source::ndjson(data.as_bytes()))
            .unwrap()
            .profile;
        let baseline_json = baseline.to_json();
        for workers in [1, 4] {
            for parts in [1, 3, 7] {
                for path in [MapPath::Events, MapPath::Values] {
                    for plan in [ReducePlan::Sequential, ReducePlan::Tree { arity: 2 }] {
                        let p = JobConfig::new()
                            .workers(workers)
                            .partitions(parts)
                            .map_path(path)
                            .reduce_plan(plan)
                            .build()
                            .run_profiled(Source::ndjson(data.as_bytes()))
                            .unwrap()
                            .profile;
                        assert_eq!(p, baseline, "{workers}w {parts}p {path:?} {plan:?}");
                        assert_eq!(p.to_json(), baseline_json);
                    }
                }
            }
        }
        // In-memory sources number records by ordinal, matching the
        // NDJSON line numbers of the same records.
        let via_values = JobConfig::new()
            .build()
            .run_profiled(Source::values(values()))
            .unwrap()
            .profile;
        assert_eq!(via_values.to_json(), baseline_json);
        let dataset = Dataset::from_vec(values(), 3);
        let via_dataset = JobConfig::new()
            .build()
            .run_profiled(Source::dataset(&dataset))
            .unwrap()
            .profile;
        assert_eq!(via_dataset.to_json(), baseline_json);
    }

    #[test]
    fn profiled_run_reports_earliest_bad_line() {
        let bad = "{\"ok\":1}\n{bad1\n{\"ok\":2}\n{bad2\n";
        for path in [MapPath::Events, MapPath::Values] {
            let err = JobConfig::new()
                .partitions(4)
                .map_path(path)
                .build()
                .run_profiled(Source::ndjson(bad.as_bytes()))
                .unwrap_err();
            assert_eq!(err.span().unwrap().start.line, 2, "{path:?}");
        }
    }

    #[test]
    fn profiled_run_report_has_fold_stage() {
        let rec = Recorder::enabled();
        let r = JobConfig::new()
            .partitions(2)
            .recorder(rec.clone())
            .build()
            .run_profiled(Source::values(values()))
            .unwrap();
        let report = r.run_report(&rec);
        assert_eq!(report.counters["records"], 4);
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["profile.local_fold"]);
        assert!(report.spans.contains_key("pipeline.profile"));
        assert_eq!(
            report.values["profiled_paths"], 5.0,
            "$, $.a, $.b, $.c, $.c[]"
        );
    }

    #[test]
    fn dedup_modes_agree_byte_for_byte() {
        // Enough repetition that Auto resolves on, with an array-bearing
        // record so positional-array collapse is exercised.
        let vals: Vec<Value> = values().into_iter().cycle().take(200).collect();
        let data = as_ndjson(&vals);
        let baseline = JobConfig::new()
            .dedup(DedupMode::Off)
            .build()
            .run_ndjson(data.as_bytes())
            .unwrap();
        for mode in [DedupMode::On, DedupMode::Auto] {
            for path in [MapPath::Events, MapPath::Values] {
                for workers in [1, 4] {
                    let r = JobConfig::new()
                        .dedup(mode)
                        .map_path(path)
                        .workers(workers)
                        .build()
                        .run_ndjson(data.as_bytes())
                        .unwrap();
                    assert_eq!(
                        r.schema.to_string(),
                        baseline.schema.to_string(),
                        "{mode:?} {path:?} {workers}w"
                    );
                    assert_eq!(r.records, baseline.records);
                }
            }
        }
    }

    #[test]
    fn auto_picks_dedup_on_redundant_streams_only() {
        // 200 records, 2 distinct shapes → dedup.
        let redundant: Vec<Type> = values()
            .iter()
            .cycle()
            .take(200)
            .map(typefuse_infer::infer_type)
            .collect();
        assert!(dedup_auto_sample(
            redundant.iter().take(2).chain(&redundant)
        ));
        // Tiny inputs stay plain regardless of redundancy.
        assert!(!dedup_auto_sample(redundant.iter().take(10)));
        // Every shape unique → plain.
        let unique: Vec<Type> = (0..100)
            .map(|i| {
                let v = typefuse_json::parse_value(&format!("{{\"k{i}\": {i}}}")).unwrap();
                typefuse_infer::infer_type(&v)
            })
            .collect();
        assert!(!dedup_auto_sample(unique.iter()));
    }

    #[test]
    fn dedup_run_reports_cache_and_shape_counters() {
        let vals: Vec<Value> = values().into_iter().cycle().take(200).collect();
        let rec = Recorder::enabled();
        let r = JobConfig::new()
            .partitions(2)
            .dedup(DedupMode::On)
            .recorder(rec.clone())
            .build()
            .run_values(vals);
        let report = r.run_report(&rec);
        assert_eq!(report.counters["records"], 200);
        assert_eq!(report.counters["infer.dedup"], 1);
        assert_eq!(report.counters["infer.distinct_shapes"], 2);
        assert!(report.counters["fuse.cache_hits"] > 150, "duplicates hit");
        assert!(report.counters["fuse.calls"] > 0);
        assert_eq!(
            report.counters["fuse.calls"],
            report.counters["fuse.cache_misses"]
        );
        assert!(report.spans.contains_key("pipeline.reduce"));
    }

    #[test]
    fn without_stats_still_fuses() {
        let r = JobConfig::new()
            .without_type_stats()
            .build()
            .run_values(values());
        assert_eq!(r.type_stats.distinct, 0);
        assert_eq!(
            r.schema.to_string(),
            "{a: Null + Num, b: Str?, c: [Num, Num]?}"
        );
    }
}
