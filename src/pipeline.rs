//! The end-to-end schema-inference pipeline: the paper's two phases wired
//! onto the execution engine, plus the measurements its evaluation
//! reports.
//!
//! ```
//! use typefuse::pipeline::SchemaJob;
//! use typefuse::prelude::*;
//!
//! let values: Vec<Value> = ["{\"a\":1}", "{\"a\":\"x\",\"b\":null}"]
//!     .iter().map(|s| parse_value(s).unwrap()).collect();
//! let result = SchemaJob::new().run_values(values);
//! assert_eq!(result.schema.to_string(), "{a: Num + Str, b: Null?}");
//! assert_eq!(result.records, 2);
//! ```

use std::collections::HashSet;
use std::io::BufRead;
use std::time::{Duration, Instant};

use typefuse_engine::{Dataset, ReducePlan, Runtime, StageMetrics};
use typefuse_infer::{fuse_with_recorded, infer_type_recorded, FuseConfig};
use typefuse_json::{NdjsonReader, Value};
use typefuse_obs::{Recorder, RunReport};
use typefuse_types::Type;

/// Configuration of a schema-inference run.
#[derive(Debug, Clone)]
pub struct SchemaJob {
    /// Worker threads (default: all available).
    pub runtime: Runtime,
    /// Number of dataset partitions (default: 4 × workers).
    pub partitions: usize,
    /// How the per-partition schemas are combined.
    pub reduce_plan: ReducePlan,
    /// Fusion configuration (array strategy).
    pub fuse_config: FuseConfig,
    /// Whether to collect per-record type statistics (distinct types,
    /// min/max/avg sizes — the Tables 2–5 columns). Costs one hash-set
    /// insert per record.
    pub collect_type_stats: bool,
    /// Observability recorder shared by every phase of the run (disabled
    /// by default, which costs nothing). See [`SchemaResult::run_report`]
    /// for turning it into a structured report after the run.
    pub recorder: Recorder,
}

impl Default for SchemaJob {
    fn default() -> Self {
        Self::new()
    }
}

impl SchemaJob {
    /// A job with default settings.
    pub fn new() -> Self {
        let runtime = Runtime::default();
        let partitions = runtime.workers() * 4;
        SchemaJob {
            runtime,
            partitions,
            reduce_plan: ReducePlan::default(),
            fuse_config: FuseConfig::default(),
            collect_type_stats: true,
            recorder: Recorder::disabled(),
        }
    }

    /// Set the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.runtime = Runtime::new(workers);
        self
    }

    /// Set the partition count.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions.max(1);
        self
    }

    /// Set the reduce topology.
    pub fn reduce_plan(mut self, plan: ReducePlan) -> Self {
        self.reduce_plan = plan;
        self
    }

    /// Set the fusion configuration.
    pub fn fuse_config(mut self, cfg: FuseConfig) -> Self {
        self.fuse_config = cfg;
        self
    }

    /// Disable per-record type statistics for maximum throughput.
    pub fn without_type_stats(mut self) -> Self {
        self.collect_type_stats = false;
        self
    }

    /// Attach an observability recorder. Clones share state, so hold on
    /// to one clone and snapshot it (or call
    /// [`SchemaResult::run_report`]) after the run.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Run over an in-memory value collection.
    pub fn run_values(&self, values: Vec<Value>) -> SchemaResult {
        let dataset = Dataset::from_vec(values, self.partitions);
        self.run_dataset(&dataset)
    }

    /// Run over an already partitioned dataset.
    pub fn run_dataset(&self, dataset: &Dataset<Value>) -> SchemaResult {
        let wall_start = Instant::now();
        let rec = &self.recorder;

        // ---- Map phase: infer one type per value (Figure 4). ----------
        let map_start = Instant::now();
        let (types, map_metrics) = {
            let _span = rec.span("pipeline.map");
            dataset.map_metered(&self.runtime, |v| infer_type_recorded(v, rec))
        };
        let map_time = map_start.elapsed();

        // ---- Type statistics (the Tables 2–5 columns). ----------------
        let type_stats = {
            let _span = rec.span("pipeline.stats");
            let stats_source: Vec<&Type> = if self.collect_type_stats {
                types.iter().collect()
            } else {
                Vec::new()
            };
            TypeStats::measure(stats_source)
        };

        // ---- Reduce phase: fuse (Figure 6). ----------------------------
        let cfg = self.fuse_config;
        let reduce_start = Instant::now();
        let (fused, reduce_metrics) = {
            let _span = rec.span("pipeline.reduce");
            types.reduce_recorded(
                &self.runtime,
                self.reduce_plan,
                |a, b| fuse_with_recorded(cfg, a, b, rec),
                rec,
            )
        };
        let reduce_time = reduce_start.elapsed();

        rec.add("records", dataset.count() as u64);
        let schema = fused.unwrap_or(Type::Bottom);
        SchemaResult {
            fused_size: schema.size(),
            schema,
            records: dataset.count() as u64,
            partitions: dataset.num_partitions(),
            type_stats,
            map_time,
            reduce_time,
            wall: wall_start.elapsed(),
            map_metrics,
            reduce_metrics,
        }
    }

    /// Run over an NDJSON stream, failing on the first malformed record.
    /// With an enabled recorder, reading counts `json.bytes` /
    /// `json.lines` / `json.records` under a `pipeline.read` span.
    pub fn run_ndjson<R: BufRead>(&self, reader: R) -> Result<SchemaResult, typefuse_json::Error> {
        let values: Result<Vec<Value>, _> = {
            let _span = self.recorder.span("pipeline.read");
            NdjsonReader::new(reader)
                .with_recorder(self.recorder.clone())
                .collect()
        };
        Ok(self.run_values(values?))
    }
}

/// Distinct-type statistics — the "Inferred types size" columns of
/// Tables 2–5.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeStats {
    /// Number of distinct inferred types.
    pub distinct: usize,
    /// Smallest inferred type size.
    pub min_size: usize,
    /// Largest inferred type size.
    pub max_size: usize,
    /// Mean inferred type size over *all* records (not just distinct).
    pub avg_size: f64,
}

impl TypeStats {
    fn measure<'a>(types: Vec<&'a Type>) -> TypeStats {
        if types.is_empty() {
            return TypeStats::default();
        }
        let mut distinct: HashSet<&'a Type> = HashSet::with_capacity(types.len() / 4);
        let mut min_size = usize::MAX;
        let mut max_size = 0usize;
        let mut sum = 0u64;
        for t in &types {
            let size = t.size();
            min_size = min_size.min(size);
            max_size = max_size.max(size);
            sum += size as u64;
            distinct.insert(t);
        }
        TypeStats {
            distinct: distinct.len(),
            min_size,
            max_size,
            avg_size: sum as f64 / types.len() as f64,
        }
    }
}

/// The outcome of a schema-inference run.
#[derive(Debug, Clone)]
pub struct SchemaResult {
    /// The fused schema.
    pub schema: Type,
    /// Size of the fused schema (AST nodes) — the "Fused types size"
    /// column.
    pub fused_size: usize,
    /// Number of input records.
    pub records: u64,
    /// Partitions processed.
    pub partitions: usize,
    /// Distinct / min / max / avg inferred-type statistics.
    pub type_stats: TypeStats,
    /// Wall time of the Map (inference) phase.
    pub map_time: Duration,
    /// Wall time of the Reduce (fusion) phase.
    pub reduce_time: Duration,
    /// Total wall time including statistics collection.
    pub wall: Duration,
    /// Per-partition metrics of the Map phase.
    pub map_metrics: StageMetrics,
    /// Per-partition metrics of the partition-local fold.
    pub reduce_metrics: StageMetrics,
}

impl SchemaResult {
    /// The succinctness ratio the paper discusses: fused size over the
    /// average inferred size (≤ 1.4 for GitHub, ≤ 4 for Twitter, larger
    /// for Wikidata).
    pub fn compaction_ratio(&self) -> f64 {
        if self.type_stats.avg_size == 0.0 {
            0.0
        } else {
            self.fused_size as f64 / self.type_stats.avg_size
        }
    }

    /// Assemble the full structured run report: the recorder's counters,
    /// gauges, histograms, spans and trace, plus this result's
    /// per-stage task timings (`map` and `reduce.local_fold`, each with
    /// per-task queue-wait vs execute split) and headline values.
    ///
    /// Pass the same recorder the job ran with; a disabled recorder
    /// still yields the stage timings and headline values.
    pub fn run_report(&self, recorder: &Recorder) -> RunReport {
        let mut report = recorder.snapshot();
        report.counters.insert("records".to_string(), self.records);
        report.stages.push(self.map_metrics.stage_report("map"));
        report
            .stages
            .push(self.reduce_metrics.stage_report("reduce.local_fold"));
        report
            .values
            .insert("wall_seconds".to_string(), self.wall.as_secs_f64());
        report
            .values
            .insert("map_seconds".to_string(), self.map_time.as_secs_f64());
        report
            .values
            .insert("reduce_seconds".to_string(), self.reduce_time.as_secs_f64());
        report
            .values
            .insert("fused_size".to_string(), self.fused_size as f64);
        report
            .values
            .insert("compaction_ratio".to_string(), self.compaction_ratio());
        report
            .meta
            .insert("partitions".to_string(), self.partitions.to_string());
        report
            .meta
            .insert("schema".to_string(), self.schema.to_string());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    fn values() -> Vec<Value> {
        vec![
            json!({"a": 1, "b": "x"}),
            json!({"a": 2, "b": "y"}),
            json!({"a": null, "c": [1, 2]}),
            json!({"a": 1, "b": "x"}),
        ]
    }

    #[test]
    fn end_to_end_schema() {
        let r = SchemaJob::new().partitions(2).run_values(values());
        assert_eq!(
            r.schema.to_string(),
            "{a: Null + Num, b: Str?, c: [Num, Num]?}"
        );
        assert_eq!(r.records, 4);
        assert_eq!(r.partitions, 2);
        for v in values() {
            assert!(r.schema.admits(&v));
        }
    }

    #[test]
    fn type_stats_columns() {
        let r = SchemaJob::new().run_values(values());
        // 2 distinct types: three of the four records infer {a: Num, b: Str}.
        assert_eq!(r.type_stats.distinct, 2);
        assert!(r.type_stats.min_size <= r.type_stats.max_size);
        assert!(r.type_stats.avg_size >= r.type_stats.min_size as f64);
        assert!(r.type_stats.avg_size <= r.type_stats.max_size as f64);
        assert_eq!(r.fused_size, r.schema.size());
        assert!(r.compaction_ratio() > 0.0);
    }

    #[test]
    fn partitioning_does_not_change_the_schema() {
        let base = SchemaJob::new().partitions(1).run_values(values()).schema;
        for parts in [2, 3, 7, 64] {
            let r = SchemaJob::new().partitions(parts).run_values(values());
            assert_eq!(r.schema, base, "partitions = {parts}");
        }
    }

    #[test]
    fn reduce_plans_agree() {
        let seq = SchemaJob::new()
            .reduce_plan(ReducePlan::Sequential)
            .run_values(values())
            .schema;
        let tree = SchemaJob::new()
            .reduce_plan(ReducePlan::Tree { arity: 2 })
            .run_values(values())
            .schema;
        assert_eq!(seq, tree);
    }

    #[test]
    fn empty_input() {
        let r = SchemaJob::new().run_values(vec![]);
        assert_eq!(r.schema, Type::Bottom);
        assert_eq!(r.records, 0);
        assert_eq!(r.type_stats, TypeStats::default());
        assert_eq!(r.compaction_ratio(), 0.0);
    }

    #[test]
    fn ndjson_entry_point() {
        let data = "{\"a\":1}\n{\"a\":\"x\"}\n";
        let r = SchemaJob::new().run_ndjson(data.as_bytes()).unwrap();
        assert_eq!(r.schema.to_string(), "{a: Num + Str}");

        let bad = "{\"a\":1}\nnot json\n";
        assert!(SchemaJob::new().run_ndjson(bad.as_bytes()).is_err());
    }

    #[test]
    fn recorded_run_produces_a_full_report() {
        let rec = Recorder::enabled();
        let r = SchemaJob::new()
            .partitions(2)
            .recorder(rec.clone())
            .run_values(values());
        let report = r.run_report(&rec);

        assert_eq!(report.counters["records"], 4);
        assert_eq!(report.counters["infer.types"], 4);
        // 4 records in 2 partitions: 2 fuses in the local folds, then 1
        // combining the two partials.
        assert_eq!(report.counters["fuse.calls"], 3);
        assert_eq!(report.histograms["fuse.union_width"].count, 3);
        assert_eq!(report.histograms["infer.record_width"].count, 4);
        assert!(report.gauges["infer.max_depth"] >= 2);
        assert!(report.spans.contains_key("pipeline.map"));
        assert!(report.spans.contains_key("pipeline.reduce"));
        assert!(report.spans.contains_key("reduce.level.0"));

        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["map", "reduce.local_fold"]);
        for stage in &report.stages {
            assert_eq!(stage.tasks.len(), 2, "one task per partition");
        }
        assert!(report.values.contains_key("wall_seconds"));

        // The report serializes, and the trace is non-empty Chrome JSON.
        let json = report.to_json();
        assert!(json.contains("\"fuse.calls\""));
        assert!(rec.chrome_trace_json().contains("\"traceEvents\""));
    }

    #[test]
    fn disabled_recorder_report_still_has_stages_and_records() {
        let r = SchemaJob::new().partitions(2).run_values(values());
        let report = r.run_report(&Recorder::disabled());
        assert_eq!(report.counters["records"], 4);
        assert_eq!(report.stages.len(), 2);
        assert!(report.histograms.is_empty());
    }

    #[test]
    fn recorded_ndjson_counts_io() {
        let data = "{\"a\":1}\n{\"a\":\"x\"}\n";
        let rec = Recorder::enabled();
        let r = SchemaJob::new()
            .recorder(rec.clone())
            .run_ndjson(data.as_bytes())
            .unwrap();
        let report = r.run_report(&rec);
        assert_eq!(report.counters["json.bytes"], data.len() as u64);
        assert_eq!(report.counters["json.records"], 2);
        assert!(report.spans.contains_key("pipeline.read"));
    }

    #[test]
    fn without_stats_still_fuses() {
        let r = SchemaJob::new().without_type_stats().run_values(values());
        assert_eq!(r.type_stats.distinct, 0);
        assert_eq!(
            r.schema.to_string(),
            "{a: Null + Num, b: Str?, c: [Num, Num]?}"
        );
    }
}
