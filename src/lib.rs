//! # typefuse
//!
//! A Rust reproduction of *Schema Inference for Massive JSON Datasets*
//! (Baazizi, Ben Lahmar, Colazzo, Ghelli, Sartiani — EDBT 2017).
//!
//! This façade crate re-exports the workspace crates so that downstream
//! users can depend on a single crate:
//!
//! * [`json`] — JSON value model, parser, serializer, NDJSON streaming.
//! * [`types`] — the paper's type language (Figure 3): records with
//!   optional fields, positional and starred arrays, kind-unique unions.
//! * [`infer`] — type inference (Figure 4) and type fusion (Figure 6).
//! * [`engine`] — the parallel map/reduce engine and cluster simulator
//!   standing in for Spark.
//! * [`datagen`] — synthetic dataset generators matching the structural
//!   profiles of the paper's four evaluation datasets.
//! * [`obs`] — zero-dependency observability: mergeable counters,
//!   histograms and timed spans, exportable as structured run reports
//!   and Chrome/Perfetto traces (see DESIGN.md § Observability).
//!
//! ## Quickstart
//!
//! ```
//! use typefuse::prelude::*;
//!
//! let records = [
//!     r#"{"a": "x", "b": 1}"#,
//!     r#"{"b": true, "c": "y"}"#,
//! ];
//! let schema = records
//!     .iter()
//!     .map(|line| infer_type(&parse_value(line).unwrap()))
//!     .reduce(|a, b| fuse(&a, &b))
//!     .unwrap();
//! assert_eq!(schema.to_string(), "{a: Str?, b: Bool + Num, c: Str?}");
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod faults;
pub mod pipeline;
pub mod splits;

pub use config::JobConfig;
pub use error::{Error, IoSite};
pub use faults::{BadRecord, ErrorPolicy, ErrorReport, RetryPolicy};

pub use typefuse_datagen as datagen;
pub use typefuse_engine as engine;
pub use typefuse_infer as infer;
pub use typefuse_json as json;
pub use typefuse_obs as obs;
pub use typefuse_query as query;
pub use typefuse_registry as registry;
pub use typefuse_types as types;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use crate::config::JobConfig;
    pub use crate::error::Error;
    pub use crate::faults::{ErrorPolicy, ErrorReport, RetryPolicy};
    pub use crate::pipeline::{
        DedupMode, MapPath, ProfiledResult, SchemaJob, SchemaResult, Source,
    };
    pub use typefuse_datagen::{DatasetProfile, Profile};
    pub use typefuse_engine::{Dataset, ReducePlan, Runtime};
    pub use typefuse_infer::{fuse, infer_type, Incremental, ProfileReport, Profiling};
    pub use typefuse_json::{parse_value, NdjsonReader, Value};
    pub use typefuse_obs::{Recorder, RunReport};
    pub use typefuse_query::Pipeline;
    pub use typefuse_types::{Type, TypeKind};
}
