//! Offline stub of `rand`.
//!
//! Implements exactly the surface `typefuse-datagen` consumes:
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! [`Rng::gen`] for `bool`/`f64`, and [`SeedableRng::seed_from_u64`] on
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, which is all the
//! synthetic dataset profiles need (they never promised byte-for-byte
//! parity with upstream `rand`, only self-consistent seeds).

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// Panics when `p` is outside `[0, 1]`, like the real crate.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a [`Standard`]-distributed type (`bool`, `f64`,
    /// and the unsigned word types).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types sampleable uniformly from their "standard" distribution.
pub trait Standard {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample; panics on an empty range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over an interval.
///
/// The blanket [`SampleRange`] impls below are deliberately generic
/// over `T: SampleUniform` (one impl per range kind, like the real
/// crate) so that integer literals in `gen_range(0..n)` unify with the
/// surrounding usage type instead of falling back to `i32`.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform sample from `[start, end)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform sample from `[start, end]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(rng, start, end)
    }
}

/// Uniform `u64` in `[0, bound)` by rejection of the biased tail.
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                let off = bounded_u64(rng, span);
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, span + 1);
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

int_sample_uniform! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
        start + unit_f64(rng.next_u64()) * (end - start)
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
        f64::sample_half_open(rng, start as f64, end as f64) as f32
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
        f64::sample_inclusive(rng, start as f64, end as f64) as f32
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard generator: xoshiro256** with SplitMix64
    /// seeding. Fast, 256-bit state, passes BigCrush — more than enough
    /// for synthetic test data.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v: usize = r.gen_range(0..7);
            assert!(v < 7);
            let v: i64 = r.gen_range(-1_000_000..1_000_000);
            assert!((-1_000_000..1_000_000).contains(&v));
            let v: u32 = r.gen_range(1..=12);
            assert!((1..=12).contains(&v));
            let v: f64 = r.gen_range(-1.0e6..1.0e6);
            assert!((-1.0e6..1.0e6).contains(&v));
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut r = rng();
        assert_eq!(r.gen_range(3..=3u8), 3);
    }

    #[test]
    fn gen_bool_edges_and_rough_frequency() {
        let mut r = rng();
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn standard_samples() {
        let mut r = rng();
        let _: bool = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
