//! Offline stub of `crossbeam-channel`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the crossbeam-channel API it actually uses:
//! an unbounded multi-producer multi-consumer FIFO channel with blocking
//! `recv`. The implementation is a `Mutex<VecDeque>` + `Condvar`, which
//! is slower than the real lock-free channel under heavy contention but
//! semantically identical for the work-queue pattern in
//! `typefuse-engine::Runtime` (a burst of sends followed by draining
//! receives).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Create an unbounded FIFO channel, returning the sending and receiving
/// halves. Both halves are cloneable (MPMC).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Channel {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Channel<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    chan: Arc<Channel<T>>,
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    chan: Arc<Channel<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl<T> Sender<T> {
    /// Append a message to the queue. Fails only when every receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake every blocked receiver so it can observe disconnection.
            self.chan.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message is available or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock().unwrap();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.ready.wait(state).unwrap();
        }
    }

    /// Pop a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.chan.state.lock().unwrap();
        match state.queue.pop_front() {
            Some(v) => Ok(v),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.state.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn multi_consumer_drains_everything_exactly_once() {
        let (tx, rx) = unbounded();
        for i in 0..1000u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42u64).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }
}
