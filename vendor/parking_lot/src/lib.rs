//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind parking_lot's poison-free
//! API (`lock()` returns the guard directly). A poisoned std lock means a
//! panicking thread — re-panicking here matches parking_lot's effective
//! behaviour for this workspace, where lock-holding closures that panic
//! abort the whole parallel stage anyway.

use std::sync;

/// A mutual-exclusion lock with parking_lot's unpoisonable interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's unpoisonable interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
