//! The [`any`] entry point and the [`Arbitrary`] trait for types with a
//! canonical full-range strategy.

use crate::strategy::BoxedStrategy;
use rand::Rng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The full-range strategy for this type.
    fn arbitrary_strategy() -> BoxedStrategy<Self>;
}

/// Strategy over the entire value space of `A`.
pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
    A::arbitrary_strategy()
}

impl Arbitrary for bool {
    fn arbitrary_strategy() -> BoxedStrategy<Self> {
        BoxedStrategy::new(|rng| rng.gen())
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_strategy() -> BoxedStrategy<Self> {
                BoxedStrategy::new(|rng| {
                    let bits: u64 = rng.gen();
                    bits as $t
                })
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_strategy() -> BoxedStrategy<Self> {
        // Finite doubles over a wide range; NaN/inf would make
        // round-trip properties vacuously fail on comparison.
        BoxedStrategy::new(|rng| rng.gen_range(-1.0e12..1.0e12))
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary_strategy() -> BoxedStrategy<Self> {
        BoxedStrategy::new(|rng| crate::sample::Index::new(rng.gen()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn any_covers_signed_range() {
        let mut rng = crate::test_runner::rng_for_test("any_signed");
        let s = any::<i32>();
        let mut saw_negative = false;
        let mut saw_positive = false;
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            saw_negative |= v < 0;
            saw_positive |= v > 0;
        }
        assert!(saw_negative && saw_positive);
    }
}
