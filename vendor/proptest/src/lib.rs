//! Offline stub of `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of proptest's API the workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`/`prop_recursive`/
//! `boxed`, tuple/`Vec`/range/regex-literal strategies,
//! `prop::collection::vec`, `prop::sample::{select, Index}`, `any`,
//! and the `proptest!`/`prop_oneof!`/`prop_assert!` macros.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case panics with the failure message
//!   and the case number; it is not minimised. Failures reproduce
//!   exactly because sampling is deterministic (seeded per test name).
//! * **Sampling, not value trees.** A strategy here is just "a way to
//!   draw a value from an RNG"; the real crate's lazy value-tree
//!   machinery is unnecessary without shrinking.
//! * **Regex literals** support the subset used by the workspace:
//!   character classes, `\PC`, and `{m,n}` repetition.
//!
//! Default cases per property: 64, overridable with the
//! `PROPTEST_CASES` environment variable or
//! `ProptestConfig::with_cases`.

pub mod arbitrary;
pub mod collection;
pub mod pattern;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror: `prop::collection::vec`, `prop::sample::select`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Weighted choice between boxed strategies of a common value type.
///
/// Arms: either all `weight => strategy` or all bare `strategy`
/// (uniform weights). Trailing commas allowed.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case returns an error (reported with the case number) instead of
/// unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

/// Assert two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]`, then any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a
/// time, threading the config expression through.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __cases = __config.resolved_cases();
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__cases {
                $(
                    let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                )+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} for `{}` failed: {}",
                        __case + 1,
                        __cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_weights_bias_sampling() {
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = crate::test_runner::rng_for_test("weights");
        let ones = (0..1000).filter(|_| s.sample(&mut rng) == 1).count();
        assert!(ones > 800, "ones = {ones}");
    }

    #[test]
    fn ranges_and_collections_compose() {
        let s = prop::collection::vec((0usize..5, Just("x")), 1..4);
        let mut rng = crate::test_runner::rng_for_test("compose");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|(n, x)| *n < 5 && *x == "x"));
        }
    }

    #[test]
    fn regex_literal_strategies() {
        let mut rng = crate::test_runner::rng_for_test("regex");
        for _ in 0..200 {
            let s = "[a-c]{1,3}".sample(&mut rng);
            assert!((1..=3).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let p = "[ -~]{0,12}".sample(&mut rng);
            assert!(p.chars().count() <= 12);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
            let u = "\\PC{0,8}".sample(&mut rng);
            assert!(u.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::rng_for_test("recursive");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = s.sample(&mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion never taken");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_round_trip((a, b) in (0i64..100, 0i64..100), tail in "[a-z]{0,4}") {
            prop_assert!(a + b >= a);
            prop_assert_eq!(tail.len(), tail.len());
            prop_assert_ne!(a - 1, a);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            // No #[test] attribute: defined inside a test fn and called
            // directly below.
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
