//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is simply a deterministic sampler: given an RNG, produce
//! one value. Combinators compose samplers; there are no value trees or
//! shrinkers (see the crate docs for why).

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Sample a value, build a new strategy from it, and sample that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and `branch`
    /// wraps an inner strategy into a larger structure.
    ///
    /// `depth` bounds the number of nested branch applications; the
    /// `desired_size` and `expected_branch_size` hints from the real
    /// crate are accepted for signature compatibility but unused — the
    /// per-level leaf/branch mix already keeps samples small.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(strat).boxed();
            let shallow = leaf.clone();
            strat = BoxedStrategy::new(move |rng| {
                // One part leaf to two parts branch: rich structures,
                // still hard-bounded by the chain length.
                if rng.gen_range(0u32..3) == 0 {
                    shallow.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            });
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng| self.sample(rng))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wrap a sampling closure.
    pub fn new(sampler: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            sampler: Rc::new(sampler),
        }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: self.sampler.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// Weighted union of strategies, built by [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; every weight must be > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms
            .iter()
            .map(|(w, _)| {
                assert!(*w > 0, "prop_oneof! weights must be positive");
                *w
            })
            .sum();
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("pick exceeded total weight")
    }
}

/// Integer and float ranges are strategies over their element type.
impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Copy> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String literals are regex-subset strategies producing `String`
/// (see [`crate::pattern`] for the supported syntax).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::pattern::sample(self, rng)
    }
}

/// A `Vec` of strategies samples each element, yielding a `Vec` of
/// values (used for "one sampler per record field" patterns).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A => 0);
tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
