//! Collection strategies: `prop::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for a `Vec` whose length falls in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn length_respects_both_range_kinds() {
        let mut rng = crate::test_runner::rng_for_test("vec_len");
        let half_open = vec(Just(0u8), 0..4);
        let inclusive = vec(Just(0u8), 2..=5);
        for _ in 0..100 {
            assert!(half_open.sample(&mut rng).len() < 4);
            let n = inclusive.sample(&mut rng).len();
            assert!((2..=5).contains(&n));
        }
    }
}
