//! Sampler for the regex-literal strategy subset.
//!
//! Supported syntax — exactly what the workspace's string strategies
//! use: literal characters, character classes (`[a-z]`, `[ -~]`,
//! multiple ranges/chars per class), the `\PC` "any non-control
//! character" escape, and `{n}` / `{m,n}` repetition suffixes.
//! Unsupported constructs panic with the offending pattern, so a typo
//! fails loudly instead of silently generating the wrong language.

use crate::test_runner::TestRng;
use rand::Rng;

/// One repeatable unit of a pattern.
struct Atom {
    /// Inclusive char ranges to draw from, uniform over total width.
    ranges: Vec<(char, char)>,
    min: u32,
    max: u32,
}

/// Draw a string matching `pattern`.
pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = rng.gen_range(atom.min..=atom.max);
        for _ in 0..n {
            out.push(pick(&atom.ranges, rng));
        }
    }
    out
}

fn pick(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
        .sum();
    let mut offset = rng.gen_range(0..total);
    for (lo, hi) in ranges {
        let width = *hi as u32 - *lo as u32 + 1;
        if offset < width {
            return char::from_u32(*lo as u32 + offset).expect("class ranges avoid surrogates");
        }
        offset -= width;
    }
    unreachable!("offset exceeded class width")
}

/// Ranges for `\PC`: everything printable, spanning 1- to 4-byte UTF-8
/// so parser round-trip properties exercise every encoding width.
const NON_CONTROL: &[(char, char)] = &[
    (' ', '~'),   // ASCII printable
    ('¡', 'ÿ'),   // Latin-1 supplement (2-byte)
    ('Ա', 'Ֆ'),   // Armenian (2-byte)
    ('ぁ', 'ん'), // Hiragana (3-byte)
    ('𝐀', '𝐙'),   // Mathematical bold capitals (4-byte)
];

fn parse(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let ranges = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => match chars.next() {
                Some('P') => match chars.next() {
                    Some('C') => NON_CONTROL.to_vec(),
                    other => panic!("unsupported \\P category {other:?} in pattern {pattern:?}"),
                },
                Some('n') => vec![('\n', '\n')],
                Some('t') => vec![('\t', '\t')],
                Some('r') => vec![('\r', '\r')],
                Some('d') => vec![('0', '9')],
                Some(lit @ ('\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '+' | '*' | '?')) => {
                    vec![(lit, lit)]
                }
                other => panic!("unsupported escape \\{other:?} in pattern {pattern:?}"),
            },
            '.' => vec![(' ', '~')],
            '{' | '}' | '*' | '+' | '?' | '|' | '(' | ')' => {
                panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
            }
            lit => vec![(lit, lit)],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            parse_repeat(&mut chars, pattern)
        } else {
            (1, 1)
        };
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let lo = match chars.next() {
            Some(']') if !ranges.is_empty() => return ranges,
            Some('\\') => chars
                .next()
                .unwrap_or_else(|| panic!("dangling escape in class in pattern {pattern:?}")),
            Some(c) => c,
            None => panic!("unterminated character class in pattern {pattern:?}"),
        };
        if chars.peek() == Some(&'-') {
            chars.next();
            match chars.next() {
                // Trailing '-' before ']' is a literal dash.
                Some(']') => {
                    ranges.push((lo, lo));
                    ranges.push(('-', '-'));
                    return ranges;
                }
                Some(hi) => {
                    assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
                    ranges.push((lo, hi));
                }
                None => panic!("unterminated character class in pattern {pattern:?}"),
            }
        } else {
            ranges.push((lo, lo));
        }
    }
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> (u32, u32) {
    let mut first = String::new();
    let mut second = None;
    loop {
        match chars.next() {
            Some('}') => break,
            Some(',') => second = Some(String::new()),
            Some(d) if d.is_ascii_digit() => match &mut second {
                Some(s) => s.push(d),
                None => first.push(d),
            },
            other => panic!("bad repetition {other:?} in pattern {pattern:?}"),
        }
    }
    let min: u32 = first
        .parse()
        .unwrap_or_else(|_| panic!("bad repetition bound in pattern {pattern:?}"));
    let max = match second {
        None => min,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition bound in pattern {pattern:?}")),
    };
    assert!(min <= max, "inverted repetition in pattern {pattern:?}");
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn class_with_literal_space_range() {
        let mut rng = rng_for_test("space_class");
        for _ in 0..100 {
            let s = sample("[ -~]{0,12}", &mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn exact_repetition_and_literals() {
        let mut rng = rng_for_test("exact");
        let s = sample("k_[0-9]{3}", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("k_"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn non_control_spans_utf8_widths() {
        let mut rng = rng_for_test("pc");
        let mut widths = std::collections::HashSet::new();
        for _ in 0..500 {
            for c in sample("\\PC{0,16}", &mut rng).chars() {
                assert!(!c.is_control());
                widths.insert(c.len_utf8());
            }
        }
        assert_eq!(widths.len(), 4, "saw widths {widths:?}");
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn alternation_is_rejected() {
        sample("a|b", &mut rng_for_test("alt"));
    }
}
