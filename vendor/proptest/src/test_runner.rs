//! Test configuration, failure type, and the deterministic RNG used by
//! the `proptest!` macro.

use rand::SeedableRng;

/// RNG threaded through every strategy. An alias of the vendored
/// `rand::rngs::StdRng`; seeded per test from the test's name so runs
/// are reproducible without a persisted seed file.
pub type TestRng = rand::rngs::StdRng;

/// Build the RNG for a named property test.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms,
    // unlike `DefaultHasher` which is documented as unstable.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// `cases`, unless overridden by the `PROPTEST_CASES` environment
    /// variable.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert!` inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::Rng;
        let a: u64 = rng_for_test("x").gen_range(0..u64::MAX);
        let b: u64 = rng_for_test("x").gen_range(0..u64::MAX);
        let c: u64 = rng_for_test("y").gen_range(0..u64::MAX);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn default_cases() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(512).cases, 512);
    }
}
