//! Sampling helpers: `select` from a fixed list and the [`Index`]
//! abstract-index type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy choosing uniformly from a fixed list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty list");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// An index into a collection whose size is unknown at generation time;
/// resolve with [`Index::index`] once the size is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wrap raw randomness (used by `any::<Index>()`).
    pub fn new(raw: u64) -> Self {
        Index(raw)
    }

    /// Resolve against a concrete collection size. Panics when
    /// `size == 0`, matching the real crate.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on an empty collection");
        (self.0 % size as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_every_option() {
        let s = select(vec![1, 2, 3]);
        let mut rng = crate::test_runner::rng_for_test("select");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn index_resolves_in_bounds() {
        for raw in [0, 1, 7, u64::MAX] {
            assert!(Index::new(raw).index(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn index_panics_on_zero() {
        Index::new(5).index(0);
    }
}
