//! Offline stub of `criterion`.
//!
//! Implements the group/bencher API surface the workspace's benches
//! use, with a deliberately simple measurement loop: warm up for the
//! configured `warm_up_time`, then time batches of iterations until
//! `measurement_time` elapses or `sample_size` samples are taken, and
//! print mean time per iteration (plus throughput when configured).
//! There is no statistical analysis, outlier detection, or HTML report
//! — the numbers are honest wall-clock means, good enough for the
//! relative comparisons the bench harness makes in CI smoke runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness entry point; also the per-group configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id.0, None, &mut f);
        self
    }
}

/// A set of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used to report rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(self.criterion, &label, self.throughput, &mut f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (accepted for API compatibility; output is
    /// flushed per benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by the parameter it varies over.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Identify a benchmark by a function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements (records, rows) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up: also calibrates how many iterations fit in one sample.
    let warm_deadline = Instant::now() + config.warm_up_time;
    let mut warm_iters: u64 = 0;
    let mut warm_elapsed = Duration::ZERO;
    while Instant::now() < warm_deadline {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        warm_elapsed += b.elapsed;
    }
    let per_iter = warm_elapsed
        .checked_div(warm_iters.max(1) as u32)
        .unwrap_or(Duration::ZERO);
    let sample_budget = config.measurement_time.as_nanos() / config.sample_size.max(1) as u128;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (sample_budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let deadline = Instant::now() + config.measurement_time;
    let mut total_iters: u64 = 0;
    let mut total_elapsed = Duration::ZERO;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += iters_per_sample;
        total_elapsed += b.elapsed;
        if Instant::now() >= deadline {
            break;
        }
    }

    let mean = total_elapsed
        .checked_div(total_iters.max(1) as u32)
        .unwrap_or(Duration::ZERO);
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            " ({:.3e} elem/s)",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
        Throughput::Bytes(n) => format!(
            " ({:.3e} B/s)",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    });
    println!(
        "{label:<50} time: {mean:>12?}  ({total_iters} iters){}",
        rate.unwrap_or_default()
    );
}

/// Define a benchmark group function. Supports the
/// `name = ...; config = ...; targets = ...` form and the positional
/// shorthand.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Benchmark binaries receive harness flags (e.g. `--bench`)
            // from cargo; this stub has no filtering, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trip() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.throughput(Throughput::Elements(10));
            group.bench_function(BenchmarkId::from_parameter(42), |b| {
                b.iter(|| black_box(2 + 2))
            });
            group.bench_with_input("with_input", &7u64, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            group.finish();
        }
        c.bench_function("standalone", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }
}
