//! Quickstart: infer a schema from a handful of heterogeneous JSON
//! records and export it as JSON Schema.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use typefuse::prelude::*;
use typefuse::types::export::to_json_schema_document;

fn main() {
    // Three records from an imaginary product API: same shape, different
    // corners — an optional field, a Num/Str mix, a nullable, an array
    // that is sometimes empty.
    let lines = [
        r#"{"id": 1, "name": "keyboard", "price": 49.9, "tags": ["input", "usb"], "sku": "K-100"}"#,
        r#"{"id": 2, "name": "monitor", "price": "call us", "tags": [], "stock": null}"#,
        r#"{"id": "3b", "name": "cable", "price": 9.5, "tags": ["usb"], "stock": 14}"#,
    ];

    // Phase 1 (Map): one isomorphic type per record.
    let values: Vec<Value> = lines
        .iter()
        .map(|l| parse_value(l).expect("valid JSON"))
        .collect();
    println!("Per-record inferred types:");
    for v in &values {
        println!("  {}", infer_type(v));
    }

    // Phase 2 (Reduce): fuse them into one succinct supertype.
    let schema = values
        .iter()
        .map(infer_type)
        .reduce(|a, b| fuse(&a, &b))
        .expect("non-empty input");
    println!("\nFused schema:\n  {schema}");

    // Every input conforms to the fused schema (Theorem 5.2).
    assert!(values.iter().all(|v| schema.admits(v)));

    // The same computation through the parallel pipeline, with stats.
    let result = JobConfig::new().partitions(2).build().run_values(values);
    assert_eq!(result.schema, schema);
    println!(
        "\nPipeline: {} records, {} distinct types, fused size {}, ratio {:.2}",
        result.records,
        result.type_stats.distinct,
        result.fused_size,
        result.compaction_ratio()
    );

    // Interop: export to JSON Schema for the rest of the ecosystem.
    println!(
        "\nAs JSON Schema:\n{}",
        typefuse::json::to_string_pretty(&to_json_schema_document(&schema))
    );
}
