//! The cluster experiment of Section 6.2 (Tables 7 and 8), on the
//! deterministic cluster simulator.
//!
//! The paper loaded 22 GB of NYTimes data into HDFS from one machine;
//! all blocks landed on one node, "the computation was performed on two
//! nodes while the remaining four nodes were idle". Explicitly
//! partitioning the input restored locality and brought processing to
//! ~2.85 minutes per 300k-record partition.
//!
//! ```sh
//! cargo run --example cluster_partitioning
//! ```

use typefuse::engine::sim::{simulate, ClusterSpec, Placement, Workload};
use typefuse::prelude::*;

fn main() {
    // Calibrate the CPU cost of infer+fuse from a real local run over the
    // NYTimes profile, so the simulation speaks in honest seconds.
    let sample: Vec<Value> = Profile::NYTimes.generate(1, 2000).collect();
    let t0 = std::time::Instant::now();
    let result = JobConfig::new()
        .workers(1)
        .without_type_stats()
        .build()
        .run_values(sample);
    let cpu_secs_per_record = t0.elapsed().as_secs_f64() / result.records as f64;
    println!(
        "calibration: {:.1} µs per record (single-core infer+fuse)",
        cpu_secs_per_record * 1e6
    );

    // The paper's job: ~1.2M records / 22 GB in 128 MB HDFS blocks.
    let blocks = 176;
    let payloads = vec![(128_000_000u64, 1_200_000 / blocks as u64); blocks];
    let spec = ClusterSpec::default(); // 6 nodes x 20 cores, strict locality

    // ---- Naive load: every block on the ingestion node ------------------
    let naive = Workload {
        blocks: Placement::SingleNode {
            node: 0,
            replication: 2,
        }
        .place(&payloads, spec.nodes),
        cpu_secs_per_record,
    };
    let naive_report = simulate(&spec, &naive);
    println!("\n=== single-node block placement (the paper's Table 7 situation) ===");
    print_report(&naive_report, &spec);

    // ---- Manual partitioning: blocks spread over the cluster ------------
    let spread = Workload {
        blocks: Placement::RoundRobin { replication: 2 }.place(&payloads, spec.nodes),
        cpu_secs_per_record,
    };
    let spread_report = simulate(&spec, &spread);
    println!("\n=== partitioned placement (the paper's Table 8 strategy) ===");
    print_report(&spread_report, &spec);

    println!(
        "\npartitioning speeds the job up {:.1}x — \"this simple yet effective optimization \
         is possible thanks to the associativity of our fusion process\"",
        naive_report.makespan / spread_report.makespan
    );

    // The final step of the paper's strategy: fuse the per-partition
    // schemas. This is cheap because each schema is tiny.
    let per_partition: Vec<Type> = (0..4u64)
        .map(|p| {
            let part: Vec<Value> = Profile::NYTimes.generate(100 + p, 500).collect();
            JobConfig::new()
                .without_type_stats()
                .build()
                .run_values(part)
                .schema
        })
        .collect();
    let t0 = std::time::Instant::now();
    let global = typefuse::infer::fuse_all(&per_partition);
    println!(
        "fusing the 4 per-partition schemas took {:.2} ms and produced a schema of size {}",
        t0.elapsed().as_secs_f64() * 1e3,
        global.size()
    );
}

fn print_report(report: &typefuse::engine::sim::SimReport, spec: &ClusterSpec) {
    println!(
        "makespan {:>7.1} s ({:.2} min)   busy nodes {} of {}   utilization {:.0}%",
        report.makespan,
        report.makespan / 60.0,
        report.busy_nodes(),
        spec.nodes,
        report.utilization() * 100.0
    );
    for (node, busy) in report.node_busy.iter().enumerate() {
        let width = if report.max_node_busy() > 0.0 {
            ((busy / report.max_node_busy()) * 40.0).round() as usize
        } else {
            0
        };
        println!("  node {node}: {:>8.1} core-s  {}", busy, "#".repeat(width));
    }
}
