//! Schema-checked querying — the paper's "stronger type checking" use
//! case (Sections 1 and 3), end to end.
//!
//! Without a schema, a typo'd path or a wrong-kind comparison silently
//! returns empty results. With the complete fused schema, the same
//! mistakes are *static errors*, and a pipeline that checks comes with a
//! predicted output schema.
//!
//! ```sh
//! cargo run --example checked_queries
//! ```

use typefuse::prelude::*;

fn main() {
    // A Twitter-like feed and its inferred schema.
    let rows: Vec<Value> = Profile::Twitter.generate(99, 5_000).collect();
    let schema = JobConfig::new()
        .without_type_stats()
        .build()
        .run_values(rows.clone())
        .schema;
    println!(
        "schema inferred from {} records (size {})\n",
        rows.len(),
        schema.size()
    );

    // A realistic analysis: verified users' hashtags on popular tweets.
    let script = "\
filter exists $.user and $.retweet_count > 100
flatten $.entities
project $.user.screen_name, $.entities.hashtags, $.retweet_count
limit 10";
    // Oops — `$.entities` is a record, not an array. The checker says so
    // before any data is read:
    let wrong = Pipeline::parse(script).unwrap();
    let err = wrong.check(&schema).unwrap_err();
    println!("static error caught:\n  {err}\n");

    // Corrected: flatten the hashtags array inside entities.
    let script = "\
filter exists $.user and $.retweet_count > 100
flatten $.entities.hashtags
project $.user.screen_name, $.entities.hashtags.text, $.retweet_count
limit 10";
    let pipeline = Pipeline::parse(script).unwrap();
    let out_schema = pipeline.check(&schema).expect("pipeline type-checks");
    println!("pipeline type-checks; output schema:\n  {out_schema}\n");

    let out = pipeline.eval(&rows).unwrap();
    println!("{} result rows:", out.len());
    for row in &out {
        println!("  {row}");
        assert!(
            out_schema.admits(row),
            "soundness: outputs match the prediction"
        );
    }

    // The classic silent-failure cases, now loud:
    for bad in [
        "project $.user.screenname",         // typo
        "filter $.retweet_count > \"100\"",  // wrong literal kind
        "flatten $.user",                    // not an array
        "filter exists $.delete.status.uid", // wrong nested field
    ] {
        let err = Pipeline::parse(bad).unwrap().check(&schema).unwrap_err();
        println!("rejected: {bad}\n  ↳ {err}");
    }
}
