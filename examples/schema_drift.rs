//! Data-contract monitoring with schema diffing.
//!
//! A feed you consume changes silently: a numeric field starts arriving
//! as a string, a sub-record grows a field, a mandatory field becomes
//! occasional. Inferring a schema per batch and diffing consecutive
//! schemas turns that silence into an actionable report — the capability
//! the paper's related-work section says base-type checkers (Scherzinger
//! et al. [21]) lack.
//!
//! ```sh
//! cargo run --example schema_drift
//! ```

use typefuse::prelude::*;
use typefuse::types::diff::diff;
use typefuse::types::summary::TypeSummary;

fn main() {
    // Yesterday's batch: a stable keyword feed.
    let yesterday: Vec<Value> = [
        r#"{"id": 1, "name": "alpha", "rank": 3, "meta": {"source": "crawl"}}"#,
        r#"{"id": 2, "name": "beta", "rank": 1, "meta": {"source": "api"}}"#,
        r#"{"id": 3, "name": "gamma", "rank": 2, "meta": {"source": "crawl"}}"#,
    ]
    .iter()
    .map(|l| parse_value(l).unwrap())
    .collect();

    // Today's batch: the producer shipped three silent changes.
    let today: Vec<Value> = [
        // rank became a string, meta grew a `ts`, id sometimes missing
        r#"{"id": 4, "name": "delta", "rank": "4", "meta": {"source": "api", "ts": "2016-07-01"}}"#,
        r#"{"name": "epsilon", "rank": "2", "meta": {"source": "crawl", "ts": "2016-07-01"}}"#,
    ]
    .iter()
    .map(|l| parse_value(l).unwrap())
    .collect();

    let old_schema = SchemaJob::new().run_values(yesterday).schema;
    let new_schema = SchemaJob::new().run_values(today).schema;

    println!("yesterday: {old_schema}");
    println!("today:     {new_schema}\n");

    println!("=== drift report ===");
    let changes = diff(&old_schema, &new_schema);
    for change in &changes {
        println!("{change}");
    }
    assert!(!changes.is_empty());

    // The checks a contract gate would run:
    let rank_changed = changes
        .iter()
        .any(|c| c.path() == "$.rank" && c.to_string().contains("Num → Str"));
    let id_now_optional = changes
        .iter()
        .any(|c| c.path() == "$.id" && c.to_string().contains("mandatory → optional"));
    let meta_grew = changes.iter().any(|c| c.path() == "$.meta.ts");
    assert!(rank_changed && id_now_optional && meta_grew);
    println!("\nall three silent changes detected ✓");

    // Structural summaries contextualise the drift.
    let (before, after) = (TypeSummary::of(&old_schema), TypeSummary::of(&new_schema));
    println!(
        "\nfields {} → {}   optional {} → {}   size {} → {}",
        before.fields,
        after.fields,
        before.optional_fields,
        after.optional_fields,
        before.size,
        after.size
    );
}
