//! Incremental schema maintenance (Section 7 of the paper).
//!
//! JSON sources are dynamic: new records arrive with shapes never seen
//! before. Associativity of fusion means the schema can be maintained
//! without ever reprocessing old data:
//!
//! * **append**: fuse the running schema with the new record's type;
//! * **partition update**: re-infer only the changed partition and fuse
//!   its schema with the stale schemas of the untouched partitions.
//!
//! ```sh
//! cargo run --example incremental_updates
//! ```

use typefuse::prelude::*;

fn main() {
    // ---- Appends -------------------------------------------------------
    let stream: Vec<Value> = Profile::Twitter.generate(7, 500).collect();

    let mut live = Incremental::new();
    let mut last_size = 0usize;
    for (i, record) in stream.iter().enumerate() {
        live.absorb(record);
        let size = live.schema().size();
        if size != last_size {
            println!("record {:>4}: schema size {:>4} (changed)", i + 1, size);
            last_size = size;
        }
    }
    println!(
        "\nafter {} records the schema has stabilised at size {}",
        live.count(),
        last_size
    );

    // The incremental schema equals the batch schema over the same data.
    let batch = SchemaJob::new().run_values(stream.clone());
    assert_eq!(live.schema(), &batch.schema);
    println!("incremental schema == batch schema ✓");

    // ---- Partitioned update ---------------------------------------------
    // The dataset is kept in 4 partitions; partition 2 is rewritten.
    let partitions: Vec<Vec<Value>> = stream.chunks(125).map(|c| c.to_vec()).collect();
    let mut partial: Vec<Incremental> = partitions
        .iter()
        .map(|part| {
            let mut acc = Incremental::new();
            part.iter().for_each(|v| acc.absorb(v));
            acc
        })
        .collect();

    // New content for partition 2, including a shape never seen before.
    let mut updated: Vec<Value> = Profile::Twitter.generate(8, 100).collect();
    updated.push(parse_value(r#"{"scrub_geo": {"user_id": 1, "up_to_status_id": 2}}"#).unwrap());

    // Re-infer ONLY the updated partition…
    let mut fresh = Incremental::new();
    updated.iter().for_each(|v| fresh.absorb(v));
    partial[2] = fresh;

    // …and fuse the four per-partition schemas (fast: four small types).
    let mut maintained = Incremental::new();
    for acc in &partial {
        maintained.merge(acc);
    }

    // Same result as recomputing everything from scratch.
    let mut from_scratch: Vec<Value> = Vec::new();
    for (i, part) in partitions.iter().enumerate() {
        if i == 2 {
            from_scratch.extend(updated.iter().cloned());
        } else {
            from_scratch.extend(part.iter().cloned());
        }
    }
    let recomputed = SchemaJob::new().run_values(from_scratch);
    assert_eq!(maintained.schema(), &recomputed.schema);
    println!(
        "partition-update maintenance == full recomputation ✓ ({} records, schema size {})",
        maintained.count(),
        maintained.schema().size()
    );

    // The never-seen shape surfaced as a new optional field.
    let printed = maintained.schema().to_string();
    assert!(printed.contains("scrub_geo"));
    println!("new `scrub_geo` shape absorbed as an optional field ✓");
}
