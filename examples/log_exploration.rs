//! Dataset exploration: the paper's motivating scenario (Section 1).
//!
//! You receive a large, undocumented NDJSON feed (here: the synthetic
//! NYTimes profile). Before writing a single query you want to know:
//! (i) every field that can occur, (ii) which are optional, (iii) which
//! are always there — without scanning the data by hand.
//!
//! ```sh
//! cargo run --example log_exploration
//! ```

use typefuse::infer::CountingFuser;
use typefuse::prelude::*;

fn main() {
    // An "unknown" feed of 3000 article-metadata records.
    let feed: Vec<Value> = Profile::NYTimes.generate(2024, 3000).collect();

    // One pass: fused schema + per-path presence statistics (the
    // statistical enrichment sketched in the paper's future work).
    let mut explorer = CountingFuser::new();
    for record in &feed {
        explorer.absorb(record);
    }
    let summary = explorer.finish();

    println!("=== fused schema ({} records) ===", summary.total);
    println!("{}", typefuse::types::print::pretty(&summary.schema));

    // Property (iii): fields that can always be selected.
    println!("\n=== always-present paths (safe to SELECT) ===");
    for path in summary.mandatory_paths().iter().take(15) {
        println!("  {path}");
    }

    // Property (ii): optional fields, with how optional they are — this
    // is what tells you `headline.kicker` and `headline.print_headline`
    // are variants, without reading a million records.
    println!("\n=== partially-present paths ===");
    println!("{:<42} {:>8} {:>8}", "path", "count", "ratio");
    for row in summary
        .rows()
        .iter()
        .filter(|r| r.count < summary.total)
        .take(15)
    {
        println!(
            "{:<42} {:>8} {:>7.1}%",
            row.path,
            row.count,
            row.ratio * 100.0
        );
    }

    // The schema is a complete description: every record conforms.
    assert!(feed.iter().all(|v| summary.schema.admits(v)));

    // And it is succinct: compare with the naive alternative of keeping
    // every distinct type.
    let result = SchemaJob::new().run_values(feed);
    println!(
        "\n{} distinct per-record types (avg size {:.0}) collapsed into one schema of size {}",
        result.type_stats.distinct, result.type_stats.avg_size, result.fused_size
    );
}
