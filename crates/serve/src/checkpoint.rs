//! Durable per-source checkpoints.
//!
//! A checkpoint file is a sequence of self-verifying frames:
//!
//! ```text
//! ┌───────┬──────────────┬────────────────┬──────────────┐
//! │ magic │ len (u64 LE) │ payload (JSON) │ fnv64 (u64 LE)│
//! └───────┴──────────────┴────────────────┴──────────────┘
//! ```
//!
//! Steady state appends one frame per dirty interval and fsyncs it — a
//! crash mid-append leaves a torn *tail*, never a torn prefix, so the
//! loader scans from the start and keeps the last frame whose length
//! and checksum verify. Periodically (and on clean shutdown) the file
//! is compacted to a single frame via write-temp → fsync → atomic
//! rename, so it never grows without bound and a replacement is all-or
//! -nothing. The payload itself is [`SourceState::checkpoint_value`]'s
//! JSON (schema in the exact wire notation, `u64`s as decimal strings).

use crate::fold::SourceState;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use typefuse_engine::Tick;
use typefuse_json::{parse_value, Value};
use typefuse_obs::{series_key, EventLog, Level, Recorder, TelemetryCell, TelemetryHub};

/// Frame prefix; bump the digit when the frame layout changes.
const MAGIC: [u8; 4] = *b"TFC1";
/// A frame longer than this is torn garbage, not a checkpoint.
const MAX_PAYLOAD: u64 = 64 << 20;
/// Appends between compactions.
const COMPACT_EVERY: u32 = 16;

/// FNV-1a, the same construction the shape signature cache uses —
/// plenty for torn-write detection (we defend against crashes, not
/// adversaries).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// Where a source's checkpoint lives: a sanitized name plus a hash of
/// the exact name, so `a/b` and `a_b` never collide.
pub(crate) fn checkpoint_path(dir: &Path, source: &str) -> PathBuf {
    let safe: String = source
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    dir.join(format!(
        "{safe}-{:08x}.ckpt",
        fnv64(source.as_bytes()) as u32
    ))
}

fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 20);
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&fnv64(payload).to_le_bytes());
    frame
}

/// Append one fsynced frame.
pub(crate) fn append_frame(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(&encode_frame(payload))?;
    file.sync_data()
}

/// Replace the file with a single frame, atomically: write a sibling
/// temp file, fsync it, rename over the target, fsync the directory so
/// the rename itself is durable.
pub(crate) fn rewrite(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&encode_frame(payload))?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(dir) = File::open(dir) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// What the loader found.
pub(crate) struct Loaded {
    /// The last valid frame's payload.
    pub(crate) payload: Value,
    /// `true` when trailing bytes after the last valid frame were
    /// dropped (a torn append) — worth a warning, not an error.
    pub(crate) torn: bool,
}

/// Scan every frame; the last one whose length, checksum and JSON all
/// verify wins. `Ok(None)` means no usable frame (missing file, or a
/// file with no valid frame — the caller starts fresh).
pub(crate) fn load(path: &Path) -> std::io::Result<Option<Loaded>> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut at = 0usize;
    let mut last: Option<Value> = None;
    let mut consumed = 0usize;
    while data.len() - at >= MAGIC.len() + 16 {
        if data[at..at + 4] != MAGIC {
            break;
        }
        let len = u64::from_le_bytes(data[at + 4..at + 12].try_into().expect("8 bytes"));
        if len > MAX_PAYLOAD || (data.len() - at - 20) < len as usize {
            break;
        }
        let payload = &data[at + 12..at + 12 + len as usize];
        let sum = u64::from_le_bytes(
            data[at + 12 + len as usize..at + 20 + len as usize]
                .try_into()
                .expect("8 bytes"),
        );
        if sum != fnv64(payload) {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(value) = parse_value(text) else {
            break;
        };
        at += 20 + len as usize;
        last = Some(value);
        consumed = at;
    }
    Ok(last.map(|payload| Loaded {
        payload,
        torn: consumed < data.len(),
    }))
}

/// One source's slot in the checkpointer.
struct Slot {
    name: String,
    path: PathBuf,
    state: Arc<Mutex<SourceState>>,
    /// `ckpt_rev` of the last frame durably written; unchanged state
    /// costs no I/O.
    written_rev: u64,
    appends: u32,
    last_write: Option<Instant>,
    m_bytes: TelemetryCell,
    m_lines: TelemetryCell,
    m_age: TelemetryCell,
}

/// The periodic checkpoint writer: one instance serves every source,
/// driven by a `spawn_periodic` task, with a final compacting sync on
/// clean shutdown.
pub(crate) struct Checkpointer {
    slots: Vec<Slot>,
    recorder: Recorder,
    events: EventLog,
    /// Chaos hook: fail this many upcoming writes with an injected I/O
    /// error (the write is retried on the next tick).
    fail_budget: Arc<AtomicU32>,
}

impl Checkpointer {
    pub(crate) fn new(
        dir: &Path,
        sources: impl Iterator<Item = (String, Arc<Mutex<SourceState>>)>,
        hub: &TelemetryHub,
        recorder: Recorder,
        events: EventLog,
        inject_failures: u32,
    ) -> Self {
        let slots = sources
            .map(|(name, state)| {
                let series = |metric: &str| series_key(metric, &[("source", &name)]);
                Slot {
                    path: checkpoint_path(dir, &name),
                    state,
                    written_rev: 0,
                    appends: 0,
                    last_write: None,
                    m_bytes: hub.gauge(series("typefuse_source_checkpoint_bytes")),
                    m_lines: hub.gauge(series("typefuse_source_checkpoint_lines")),
                    m_age: hub.approx_gauge(series("typefuse_source_checkpoint_age_ms")),
                    name,
                }
            })
            .collect();
        Checkpointer {
            slots,
            recorder,
            events,
            fail_budget: Arc::new(AtomicU32::new(inject_failures)),
        }
    }

    /// Take one dirty snapshot per source and append it. Serialization
    /// happens under the source mutex (so the tail offset and the
    /// folded schema are one consistent cut); the fsync happens after
    /// the lock is dropped.
    pub(crate) fn tick(&mut self) -> Tick {
        for slot in &mut self.slots {
            let snapshot = {
                let state = slot
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if state.ckpt_rev == slot.written_rev {
                    None
                } else {
                    Some((
                        state.ckpt_rev,
                        state.lines(),
                        typefuse_json::to_string(&state.checkpoint_value()),
                    ))
                }
            };
            if let Some((rev, lines, payload)) = snapshot {
                let injected = self.fail_budget.load(Ordering::Acquire) > 0
                    && self.fail_budget.fetch_sub(1, Ordering::AcqRel) > 0;
                let result = if injected {
                    Err(std::io::Error::other("injected checkpoint write failure"))
                } else if slot.appends >= COMPACT_EVERY {
                    rewrite(&slot.path, payload.as_bytes())
                } else {
                    append_frame(&slot.path, payload.as_bytes())
                };
                match result {
                    Ok(()) => {
                        slot.written_rev = rev;
                        slot.appends = if slot.appends >= COMPACT_EVERY {
                            0
                        } else {
                            slot.appends + 1
                        };
                        slot.last_write = Some(Instant::now());
                        slot.m_bytes.set(payload.len() as u64);
                        slot.m_lines.set(lines);
                        self.recorder.add("serve.checkpoints", 1);
                    }
                    Err(e) => {
                        self.recorder.add("serve.checkpoint_failures", 1);
                        self.events.log(
                            Level::Warn,
                            &slot.name,
                            "checkpoint",
                            format!("checkpoint write failed (will retry): {e}"),
                        );
                    }
                }
            }
            // Age stays unset until the first durable write, so a
            // watch table shows "-" rather than a giant sentinel.
            if let Some(at) = slot.last_write {
                slot.m_age.set(at.elapsed().as_millis() as u64);
            }
        }
        Tick::Continue
    }

    /// Final checkpoint on clean shutdown: compact every source to one
    /// frame regardless of dirtiness, so a restart resumes instantly
    /// from a single-frame file.
    pub(crate) fn final_sync(&mut self) {
        for slot in &mut self.slots {
            let (rev, lines, payload) = {
                let state = slot
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                (
                    state.ckpt_rev,
                    state.lines(),
                    typefuse_json::to_string(&state.checkpoint_value()),
                )
            };
            match rewrite(&slot.path, payload.as_bytes()) {
                Ok(()) => {
                    slot.written_rev = rev;
                    slot.appends = 0;
                    slot.last_write = Some(Instant::now());
                    slot.m_bytes.set(payload.len() as u64);
                    slot.m_lines.set(lines);
                }
                Err(e) => self.events.log(
                    Level::Warn,
                    &slot.name,
                    "checkpoint",
                    format!("final checkpoint failed: {e}"),
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("typefuse-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn last_valid_frame_wins_and_torn_tails_fall_back() {
        let path = fresh("frames.ckpt");
        append_frame(&path, br#"{"n":1}"#).unwrap();
        append_frame(&path, br#"{"n":2}"#).unwrap();
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.payload.get("n").and_then(Value::as_i64), Some(2));
        assert!(!loaded.torn);

        // A torn third append: half a frame of garbage.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"TFC1\x05\x00\x00").unwrap();
        drop(file);
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(
            loaded.payload.get("n").and_then(Value::as_i64),
            Some(2),
            "falls back to the last good frame"
        );
        assert!(loaded.torn);
    }

    #[test]
    fn corrupt_checksum_and_garbage_files_load_as_none() {
        let path = fresh("corrupt.ckpt");
        append_frame(&path, br#"{"n":1}"#).unwrap();
        // Flip a payload byte: the checksum no longer matches.
        let mut data = std::fs::read(&path).unwrap();
        data[14] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        assert!(load(&path).unwrap().is_none());

        let path = fresh("garbage.ckpt");
        std::fs::write(&path, b"this is not a checkpoint").unwrap();
        assert!(load(&path).unwrap().is_none());

        assert!(load(&fresh("missing.ckpt")).unwrap().is_none());
    }

    #[test]
    fn rewrite_replaces_every_prior_frame() {
        let path = fresh("rewrite.ckpt");
        for n in 0..5 {
            append_frame(&path, format!("{{\"n\":{n}}}").as_bytes()).unwrap();
        }
        rewrite(&path, br#"{"n":99}"#).unwrap();
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.payload.get("n").and_then(Value::as_i64), Some(99));
        assert!(!loaded.torn);
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(size < 40, "single frame after compaction, got {size}");
    }

    #[test]
    fn checkpoint_paths_never_collide_on_sanitization() {
        let dir = PathBuf::from("/tmp");
        assert_ne!(
            checkpoint_path(&dir, "a/b"),
            checkpoint_path(&dir, "a_b"),
            "hash suffix disambiguates"
        );
        assert!(checkpoint_path(&dir, "feed")
            .to_string_lossy()
            .contains("feed-"));
    }
}
