//! The serve wire protocol: line-delimited JSON over TCP.
//!
//! One request object per line, one response per line. Every response
//! is the workspace-wide versioned envelope
//! (`{"schema_version": 1, "kind": K, "payload": …}`,
//! [`typefuse_obs::envelope()`]); clients reject unknown
//! `schema_version`s with [`typefuse_json::parse_envelope`].
//!
//! Request grammar (field order free, unknown fields rejected by
//! ignoring — the `op` decides everything):
//!
//! ```text
//! {"op": "schema",  "source": NAME}
//! {"op": "profile", "source": NAME}
//! {"op": "explain", "source": NAME, "path": PATH}
//! {"op": "health"}
//! {"op": "diff",    "source": NAME, "from": V, "to": V}
//! {"op": "metrics"}
//! {"op": "metrics", "format": "prometheus"}
//! {"op": "watch",   "interval_ms": N}
//! {"op": "shutdown"}
//! ```
//!
//! Responses carry `kind` equal to the op (errors use `"error"` with a
//! `message` payload; `shutdown` acknowledges with `"ok"`). Metrics
//! snapshots use kind `"telemetry"`; the Prometheus variant uses kind
//! `"prometheus"` with the multi-line exposition carried as a JSON
//! string payload (`{"content_type":…,"text":…}`) so every response
//! stays one line. `watch` is the one *streaming* op: the session keeps
//! writing one `"telemetry"` envelope per interval until the client
//! disconnects or the daemon stops.

use crate::fold::{SourceState, SourceStatus};
use typefuse_json::Value;
use typefuse_obs::{envelope, JsonWriter};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The current fused schema of a source.
    Schema {
        /// Source name.
        source: String,
    },
    /// The full per-path profile report of a source.
    Profile {
        /// Source name.
        source: String,
    },
    /// Presence/provenance detail at one path of a source.
    Explain {
        /// Source name.
        source: String,
        /// Rendered path, e.g. `$.user.url`.
        path: String,
    },
    /// Daemon-wide health: every source's records, version and status.
    Health,
    /// Registry changes between two published versions of a source.
    Diff {
        /// Source name.
        source: String,
        /// Older version.
        from: u64,
        /// Newer version.
        to: u64,
    },
    /// One live telemetry snapshot.
    Metrics {
        /// Rendering of the snapshot.
        format: MetricsFormat,
    },
    /// Stream telemetry snapshots until the client disconnects.
    Watch {
        /// Milliseconds between snapshots.
        interval_ms: u64,
    },
    /// Stop the daemon.
    Shutdown,
}

/// How a `metrics` response renders the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The JSON snapshot envelope (kind `telemetry`).
    Json,
    /// Prometheus text exposition 0.0.4 (kind `prometheus`).
    Prometheus,
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = typefuse_json::parse_value(line).map_err(|e| format!("malformed request: {e}"))?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "request needs a string `op`".to_string())?;
    let source = |value: &Value| -> Result<String, String> {
        value
            .get("source")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("op `{op}` needs a string `source`"))
    };
    match op {
        "schema" => Ok(Request::Schema {
            source: source(&value)?,
        }),
        "profile" => Ok(Request::Profile {
            source: source(&value)?,
        }),
        "explain" => {
            let path = value
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| "op `explain` needs a string `path`".to_string())?
                .to_string();
            Ok(Request::Explain {
                source: source(&value)?,
                path,
            })
        }
        "health" => Ok(Request::Health),
        "diff" => {
            let version = |key: &str| -> Result<u64, String> {
                value
                    .get(key)
                    .and_then(Value::as_i64)
                    .filter(|v| *v >= 0)
                    .map(|v| v as u64)
                    .ok_or_else(|| format!("op `diff` needs a non-negative `{key}`"))
            };
            Ok(Request::Diff {
                source: source(&value)?,
                from: version("from")?,
                to: version("to")?,
            })
        }
        "metrics" => {
            let format = match value.get("format").and_then(Value::as_str) {
                None | Some("json") => MetricsFormat::Json,
                Some("prometheus") => MetricsFormat::Prometheus,
                Some(other) => {
                    return Err(format!(
                        "unknown metrics format `{other}` (expected json or prometheus)"
                    ))
                }
            };
            Ok(Request::Metrics { format })
        }
        "watch" => {
            let interval_ms = match value.get("interval_ms") {
                None => 1000,
                Some(v) => v
                    .as_i64()
                    .filter(|ms| *ms > 0)
                    .ok_or_else(|| "op `watch` needs a positive `interval_ms`".to_string())?
                    as u64,
            };
            Ok(Request::Watch { interval_ms })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op `{other}` (expected schema, profile, explain, health, diff, metrics, \
             watch or shutdown)"
        )),
    }
}

/// An error response envelope.
pub fn error_response(message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("message");
    w.string(message);
    w.end_object();
    envelope("error", &w.finish())
}

/// The `schema` response payload for one source.
pub(crate) fn schema_response(state: &SourceState) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("source");
    w.string(&state.name);
    w.key("schema");
    w.string(&state.schema().to_string());
    w.key("records");
    w.number(state.records());
    w.key("version");
    match state.version {
        Some(v) => w.number(v),
        None => w.raw("null"),
    }
    w.key("skipped");
    w.number(state.report.skipped());
    w.end_object();
    envelope("schema", &w.finish())
}

/// The `profile` response: the full per-path report.
pub(crate) fn profile_response(state: &SourceState) -> String {
    envelope("profile", &state.profile_report().to_json())
}

/// The `explain` response: presence, optionality and union-branch
/// provenance at one path.
pub(crate) fn explain_response(state: &SourceState, path: &str) -> Result<String, String> {
    let report = state.profile_report();
    let profile = report.get(path).ok_or_else(|| {
        format!(
            "path {path} does not occur in source {} ({} records, {} paths)",
            state.name,
            report.records,
            report.paths.len()
        )
    })?;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("source");
    w.string(&state.name);
    w.key("path");
    w.string(path);
    w.key("records");
    w.number(report.records);
    w.key("count");
    w.number(profile.count);
    w.key("optional");
    w.bool_value(profile.is_optional());
    w.key("first_line");
    match profile.first_line() {
        Some(line) => w.number(line),
        None => w.raw("null"),
    }
    w.key("branches");
    w.begin_array();
    for (kind, count, first_line) in profile.branches() {
        w.begin_object();
        w.key("kind");
        w.string(&kind.to_string());
        w.key("count");
        w.number(count);
        w.key("first_line");
        w.number(first_line);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    Ok(envelope("explain", &w.finish()))
}

/// One source's entry in the `health` payload.
pub(crate) fn write_source_health(w: &mut JsonWriter, state: &SourceState) {
    w.begin_object();
    w.key("source");
    w.string(&state.name);
    w.key("records");
    w.number(state.records());
    w.key("skipped");
    w.number(state.report.skipped());
    w.key("quarantined");
    w.number(state.quarantined);
    w.key("version");
    match state.version {
        Some(v) => w.number(v),
        None => w.raw("null"),
    }
    w.key("last_activity_ms");
    match state.last_activity_ms {
        Some(ms) => w.number(ms),
        None => w.raw("null"),
    }
    w.key("drift");
    w.begin_array();
    for alert in &state.drift {
        w.string(alert);
    }
    w.end_array();
    w.key("status");
    match &state.status {
        SourceStatus::Active => w.string("active"),
        SourceStatus::Closed => w.string("closed"),
        SourceStatus::Failed(reason) => {
            w.string(&format!("failed: {reason}"));
        }
    }
    w.end_object();
}

/// The `diff` response: rendered registry changes between versions.
pub(crate) fn diff_response(
    source: &str,
    from: u64,
    to: u64,
    changes: &[typefuse_types::diff::SchemaChange],
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("source");
    w.string(source);
    w.key("from");
    w.number(from);
    w.key("to");
    w.number(to);
    w.key("changes");
    w.begin_array();
    for change in changes {
        w.string(&change.to_string());
    }
    w.end_array();
    w.end_object();
    envelope("diff", &w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(
            parse_request(r#"{"op":"schema","source":"s"}"#).unwrap(),
            Request::Schema { source: "s".into() }
        );
        assert_eq!(
            parse_request(r#"{"op":"explain","source":"s","path":"$.a"}"#).unwrap(),
            Request::Explain {
                source: "s".into(),
                path: "$.a".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request(r#"{"op":"diff","source":"s","from":1,"to":2}"#).unwrap(),
            Request::Diff {
                source: "s".into(),
                from: 1,
                to: 2
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn parses_metrics_and_watch() {
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics {
                format: MetricsFormat::Json
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"json"}"#).unwrap(),
            Request::Metrics {
                format: MetricsFormat::Json
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"prometheus"}"#).unwrap(),
            Request::Metrics {
                format: MetricsFormat::Prometheus
            }
        );
        assert!(
            parse_request(r#"{"op":"metrics","format":"xml"}"#).is_err(),
            "unknown format"
        );
        assert_eq!(
            parse_request(r#"{"op":"watch"}"#).unwrap(),
            Request::Watch { interval_ms: 1000 }
        );
        assert_eq!(
            parse_request(r#"{"op":"watch","interval_ms":250}"#).unwrap(),
            Request::Watch { interval_ms: 250 }
        );
        assert!(
            parse_request(r#"{"op":"watch","interval_ms":0}"#).is_err(),
            "zero interval"
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(
            parse_request(r#"{"op":"schema"}"#).is_err(),
            "missing source"
        );
        assert!(parse_request(r#"{"op":"launch"}"#).is_err(), "unknown op");
        assert!(parse_request(r#"{"source":"s"}"#).is_err(), "missing op");
        assert!(
            parse_request(r#"{"op":"diff","source":"s","from":-1,"to":2}"#).is_err(),
            "negative version"
        );
    }

    #[test]
    fn error_responses_are_valid_envelopes() {
        let text = error_response("nope");
        let parsed = typefuse_json::Envelope::expect_kind(&text, "error").unwrap();
        assert_eq!(
            parsed.payload.get("message").and_then(Value::as_str),
            Some("nope")
        );
    }
}
