//! # typefuse-serve
//!
//! The resident half of typefuse: a long-running daemon that *keeps*
//! inferring.
//!
//! The batch pipeline ([`typefuse::pipeline::SchemaJob`]) answers "what
//! is the schema of this finished dataset". Real feeds are never
//! finished — logs grow, producers reconnect, shapes drift. The paper's
//! fusion operator is associative, commutative and idempotent
//! (Section 5), which makes *incremental* inference exact: folding each
//! new record into the running schema yields byte-identically the same
//! type a batch run over all bytes would produce. This crate turns that
//! law into a service:
//!
//! * **Sources** — growing NDJSON files/FIFOs ([`SourceInput::File`])
//!   and TCP listeners ([`SourceInput::Tcp`]) are tailed with
//!   [`typefuse_json::TailReader`]; each source folds new records into
//!   a warm accumulator (the shape-dedup interner when dedup is on, a
//!   plain [`typefuse_infer::Incremental`] otherwise) plus a running
//!   per-path profile.
//! * **Snapshots** — whenever a batch of appends changes the schema,
//!   the new version is published through a
//!   [`typefuse_registry::RegistryStore`] (on-disk or in-memory), and
//!   the structural diff against the previous version becomes a drift
//!   alert.
//! * **Protocol** — clients connect over TCP and speak line-delimited
//!   JSON: one request object per line, one versioned response envelope
//!   per line (see [`protocol`]). Concurrent sessions are served by
//!   plain threads.
//! * **Fault tolerance** — malformed records follow the configured
//!   [`typefuse::ErrorPolicy`] (skip, quarantine to a sidecar, or mark
//!   the source failed), transient I/O errors retry with bounded
//!   backoff, and a panicking poll is caught and counted without taking
//!   the daemon down.
//!
//! ```no_run
//! use typefuse_serve::{Daemon, ServeConfig};
//!
//! let config = ServeConfig::new()
//!     .listen("127.0.0.1:0")
//!     .watch_file("events", "/var/log/events.ndjson");
//! let daemon = Daemon::start(config).unwrap();
//! println!("serving on {}", daemon.addr());
//! daemon.wait();
//! daemon.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod daemon;
mod fold;
pub mod protocol;
mod supervisor;

pub use daemon::{ChaosConfig, Daemon, PollerPanic, ServeConfig, SourceInput, SourceSpec};
pub use fold::SourceStatus;
pub use supervisor::SupervisorPolicy;
