//! Per-source folding state: the warm accumulator a poller feeds and
//! the protocol reads.
//!
//! Exactness rests on the fusion laws (Section 5 of the paper): fuse is
//! associative, commutative and idempotent, so absorbing appended
//! records one batch at a time produces byte-identically the schema a
//! batch run over the whole file would. The accumulator is kept *warm*
//! across batches — when shape dedup is on, the hash-consed interner
//! and memoized fuse cache carry over, so a redundant feed pays the
//! inference cost once per distinct shape, not once per record.

use std::path::PathBuf;
use typefuse::pipeline::MapPath;
use typefuse::{BadRecord, ErrorPolicy, ErrorReport};
use typefuse_infer::{infer_type, DedupAcc, FuseConfig, Incremental, ProfileAcc, ShapeCache};
use typefuse_json::{Map, Parser, ParserOptions, Value};
use typefuse_obs::{EventLog, Level, Recorder};
use typefuse_registry::{CompatMode, RegistryStore};
use typefuse_types::diff::SchemaChange;
use typefuse_types::Type;

/// The warm schema accumulator: shape-dedup or plain incremental.
enum Acc {
    /// Hash-consed interner + memoized fusion, carried across batches.
    Dedup(Box<DedupAcc>),
    /// Plain running fusion.
    Plain(Incremental),
}

/// One successfully parsed record, in whichever form the Map route
/// produced it: a value tree (events/values routes) or a bare type
/// (shape route).
enum Folded {
    Value(Value),
    Type(Type),
}

/// A source's health, as reported by the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceStatus {
    /// Folding normally.
    Active,
    /// The input reported a permanent close (TCP sources only report
    /// per-connection closes; a file source never closes).
    Closed,
    /// The source stopped folding: fail-fast hit a bad record, the
    /// error budget ran out, or input I/O failed permanently.
    Failed(String),
}

/// Everything the daemon knows about one source. The poller thread
/// mutates it behind a mutex; protocol sessions read it.
pub(crate) struct SourceState {
    pub(crate) name: String,
    acc: Acc,
    profile: ProfileAcc,
    pub(crate) report: ErrorReport,
    /// 1-based input line counter (bad lines included, like batch).
    lines: u64,
    /// Latest registry version holding this source's schema.
    pub(crate) version: Option<u64>,
    /// Drift alerts, oldest first: one rendered line per structural
    /// change between consecutive published versions.
    pub(crate) drift: Vec<String>,
    pub(crate) status: SourceStatus,
    /// Records written to the quarantine sidecar for this source.
    pub(crate) quarantined: u64,
    /// Unix-millisecond timestamp of the last batch that brought any
    /// line (folded or bad); `None` until the source first produces.
    pub(crate) last_activity_ms: Option<u64>,
    fuse_config: FuseConfig,
    parser: ParserOptions,
    policy: ErrorPolicy,
    recorder: Recorder,
    events: EventLog,
    /// Signature → type memo for the shape route (`--map-path shape`),
    /// kept warm across poll batches — steady-state feeds are the most
    /// shape-redundant input there is. `None` on the other routes.
    shape: Option<ShapeCache>,
}

impl SourceState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: &str,
        dedup: bool,
        map_path: MapPath,
        fuse_config: FuseConfig,
        parser: ParserOptions,
        policy: ErrorPolicy,
        recorder: Recorder,
        events: EventLog,
    ) -> Self {
        SourceState {
            name: name.to_string(),
            acc: if dedup {
                Acc::Dedup(Box::new(DedupAcc::new()))
            } else {
                Acc::Plain(Incremental::with_config(fuse_config))
            },
            profile: ProfileAcc::with_config(fuse_config),
            report: ErrorReport::new(),
            lines: 0,
            version: None,
            drift: Vec::new(),
            status: SourceStatus::Active,
            quarantined: 0,
            last_activity_ms: None,
            fuse_config,
            parser,
            policy,
            recorder,
            events,
            shape: (map_path == MapPath::Shape).then(ShapeCache::new),
        }
    }

    /// The current fused schema.
    pub(crate) fn schema(&self) -> Type {
        match &self.acc {
            Acc::Dedup(acc) => acc.schema(),
            Acc::Plain(acc) => acc.schema().clone(),
        }
    }

    /// Records successfully folded so far.
    pub(crate) fn records(&self) -> u64 {
        match &self.acc {
            Acc::Dedup(acc) => acc.records(),
            Acc::Plain(acc) => acc.count(),
        }
    }

    /// A point-in-time profile report (presence, kinds, provenance).
    pub(crate) fn profile_report(&self) -> typefuse_infer::ProfileReport {
        self.profile.clone().finish()
    }

    /// Distinct interned shapes held by the dedup accumulator (0 on the
    /// plain route, which does not track shapes).
    pub(crate) fn distinct_shapes(&self) -> u64 {
        match &self.acc {
            Acc::Dedup(acc) => acc.distinct_shapes() as u64,
            Acc::Plain(_) => 0,
        }
    }

    pub(crate) fn is_active(&self) -> bool {
        matches!(self.status, SourceStatus::Active)
    }

    /// Fold one batch of tailed lines. Returns how many records were
    /// absorbed; `false` activity means nothing changed. A policy
    /// violation (fail-fast bad record, exhausted budget) flips the
    /// source to [`SourceStatus::Failed`] and stops folding — a daemon
    /// must keep serving its other sources.
    pub(crate) fn fold_batch(&mut self, lines: &[typefuse_json::TailLine]) -> u64 {
        let mut absorbed = 0u64;
        if !lines.is_empty() {
            self.last_activity_ms = Some(unix_ms());
        }
        for line in lines {
            if !self.is_active() {
                break;
            }
            self.lines += 1;
            if line.truncated {
                let error = typefuse_json::Error::at(
                    typefuse_json::ErrorKind::RecordTooLarge(line.content.len()),
                    typefuse_json::Position {
                        offset: 0,
                        line: self.lines as u32,
                        column: 1,
                    },
                );
                self.note_bad(error, &line.content);
                continue;
            }
            let trimmed = typefuse_json::ndjson::trim_ascii_bytes(&line.content);
            if trimmed.is_empty() {
                continue;
            }
            // Shape route: the warm signature cache infers the type
            // without materialising a value (misses replay the event
            // fold), so the accumulator absorbs the type directly. The
            // profiler needs materialised values, so on this route the
            // `profile` op reports an empty profile — the trade the
            // route makes for hash-lookup steady state.
            let outcome = if let Some(cache) = self.shape.as_mut() {
                cache
                    .infer_line(trimmed, &self.parser, &self.recorder)
                    .map(Folded::Type)
            } else {
                Parser::with_options(trimmed, self.parser.clone())
                    .parse_complete()
                    .map(Folded::Value)
            };
            match outcome {
                Ok(Folded::Value(value)) => {
                    self.absorb(&value);
                    absorbed += 1;
                }
                Ok(Folded::Type(ty)) => {
                    self.absorb_type(ty);
                    absorbed += 1;
                }
                Err(e) => {
                    // Re-anchor the error at the stream line so alerts
                    // point at the right append.
                    let mut pos = e.span().start;
                    pos.line = self.lines as u32;
                    let anchored = typefuse_json::Error::at(e.kind().clone(), pos);
                    self.note_bad(anchored, trimmed);
                }
            }
        }
        absorbed
    }

    fn absorb(&mut self, value: &Value) {
        let line = self.lines;
        match &mut self.acc {
            Acc::Dedup(acc) => acc.absorb_type(self.fuse_config, &infer_type(value)),
            Acc::Plain(acc) => acc.absorb(value),
        }
        self.profile.absorb_value_at(line, value);
        self.count_record();
    }

    /// Absorb an already inferred type (shape route): same accumulator
    /// fold and counters as [`SourceState::absorb`], no value profile.
    fn absorb_type(&mut self, ty: Type) {
        match &mut self.acc {
            Acc::Dedup(acc) => acc.absorb_type(self.fuse_config, &ty),
            Acc::Plain(acc) => acc.absorb_type(ty),
        }
        self.count_record();
    }

    fn count_record(&mut self) {
        self.recorder.add("ingest.records", 1);
        self.recorder
            .add(&format!("ingest.records.{}", self.name), 1);
    }

    /// Signature-cache hits so far (0 off the shape route).
    pub(crate) fn shape_hits(&self) -> u64 {
        self.shape.as_ref().map_or(0, ShapeCache::hits)
    }

    /// Signature-cache misses so far (0 off the shape route).
    pub(crate) fn shape_misses(&self) -> u64 {
        self.shape.as_ref().map_or(0, ShapeCache::misses)
    }

    /// Apply the error policy to one bad record. Mirrors the batch
    /// semantics (`ErrorPolicy::enforce`) but per record, because a
    /// daemon has no "end of run": fail-fast marks the source failed,
    /// skip drops, quarantine appends the record to the sidecar, and an
    /// exhausted `max_errors` budget fails the source.
    fn note_bad(&mut self, error: typefuse_json::Error, text: &[u8]) {
        self.recorder.add("ingest.parse_errors", 1);
        if self.policy.is_fail_fast() {
            self.fail(format!("parse error: {error}"));
            return;
        }
        let keeps_text = self.policy.keeps_text();
        let bad = BadRecord {
            at: self.lines,
            error,
            text: keeps_text.then(|| String::from_utf8_lossy(text).into_owned()),
        };
        match &self.policy {
            ErrorPolicy::Quarantine { sink, .. } => match append_quarantine(sink, &bad) {
                Ok(()) => {
                    self.recorder.add("ingest.quarantined", 1);
                    self.quarantined += 1;
                }
                Err(e) => {
                    self.fail(format!("cannot quarantine to {sink:?}: {e}"));
                    return;
                }
            },
            ErrorPolicy::Skip { .. } | ErrorPolicy::FailFast => {}
        }
        self.recorder.add("ingest.skipped", 1);
        self.events.log(
            Level::Warn,
            &self.name,
            "ingest",
            format!("bad record at line {}: {}", bad.at, bad.error),
        );
        self.report.note(bad);
        let budget = match &self.policy {
            ErrorPolicy::Skip { max_errors } | ErrorPolicy::Quarantine { max_errors, .. } => {
                *max_errors
            }
            ErrorPolicy::FailFast => None,
        };
        if let Some(limit) = budget {
            if self.report.skipped() > limit {
                self.fail(format!(
                    "error budget exhausted: {} bad records (limit {limit})",
                    self.report.skipped()
                ));
            }
        }
    }

    /// Flip the source to [`SourceStatus::Failed`] with an error event.
    pub(crate) fn fail(&mut self, reason: String) {
        self.events
            .log(Level::Error, &self.name, "ingest", reason.clone());
        self.status = SourceStatus::Failed(reason);
    }

    /// Publish the current schema as a new registry snapshot and record
    /// drift. Idempotent: an unchanged schema publishes as the existing
    /// version with no new entry and no alert. A compatibility
    /// rejection becomes a drift alert (the feed *did* drift — in a way
    /// the gate forbids) but keeps the source folding.
    pub(crate) fn publish(&mut self, registry: &mut dyn RegistryStore, compat: CompatMode) {
        let schema = self.schema();
        if schema == Type::Bottom {
            return;
        }
        let previous = self.version;
        match registry.publish_schema(&self.name, &schema, compat) {
            Ok(outcome) => {
                self.version = Some(outcome.version);
                if outcome.unchanged {
                    return;
                }
                self.recorder.add("serve.publishes", 1);
                self.events.log(
                    Level::Info,
                    &self.name,
                    "publish",
                    format!("published version {}", outcome.version),
                );
                if let Some(prev) = previous {
                    if let Ok(changes) = registry.changes(&self.name, prev, outcome.version) {
                        self.record_drift(prev, outcome.version, &changes);
                    }
                }
            }
            Err(e) => {
                self.recorder.add("serve.publish_rejected", 1);
                let alert = format!("publish rejected ({compat:?}): {e}");
                self.events
                    .log(Level::Warn, &self.name, "publish", alert.clone());
                self.drift.push(alert);
            }
        }
    }

    fn record_drift(&mut self, from: u64, to: u64, changes: &[SchemaChange]) {
        self.recorder.add("serve.drift", changes.len() as u64);
        for change in changes {
            let alert = format!("v{from}→v{to}: {change}");
            self.events
                .log(Level::Warn, &self.name, "drift", alert.clone());
            self.drift.push(alert);
        }
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Append one bad record to the quarantine sidecar in the same NDJSON
/// shape batch quarantine writes (`at`/`error`/`text`), so
/// `typefuse::faults::read_quarantine` replays daemon sidecars too.
/// Appending (instead of the batch writer's truncate) is what a
/// long-running fold needs: each batch must extend, not replace.
fn append_quarantine(sink: &PathBuf, bad: &BadRecord) -> std::io::Result<()> {
    use std::io::Write;
    let mut obj = Map::new();
    obj.insert("at", Value::from(bad.at as i64));
    obj.insert("error", Value::from(bad.error.to_string()));
    if let Some(text) = &bad.text {
        obj.insert("text", Value::from(text.clone()));
    }
    let mut line = typefuse_json::to_string(&Value::Object(obj));
    line.push('\n');
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(sink)?;
    file.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::TailLine;

    fn lines(texts: &[&str]) -> Vec<TailLine> {
        texts
            .iter()
            .map(|t| TailLine {
                content: t.as_bytes().to_vec(),
                truncated: false,
            })
            .collect()
    }

    fn state(dedup: bool, policy: ErrorPolicy) -> SourceState {
        state_on(dedup, MapPath::Events, policy)
    }

    fn state_on(dedup: bool, map_path: MapPath, policy: ErrorPolicy) -> SourceState {
        SourceState::new(
            "s",
            dedup,
            map_path,
            FuseConfig::default(),
            ParserOptions::default(),
            policy,
            Recorder::enabled(),
            EventLog::new(64, Level::Debug),
        )
    }

    #[test]
    fn incremental_fold_matches_batch_schema() {
        let texts = [r#"{"a": 1}"#, r#"{"a": "x", "b": true}"#, r#"{"b": false}"#];
        for dedup in [false, true] {
            let mut s = state(dedup, ErrorPolicy::FailFast);
            // Two batches, like two polls of a growing file.
            assert_eq!(s.fold_batch(&lines(&texts[..1])), 1);
            assert_eq!(s.fold_batch(&lines(&texts[1..])), 2);
            let batch = typefuse::JobConfig::new()
                .build()
                .run_ndjson(texts.join("\n").as_bytes())
                .unwrap();
            assert_eq!(s.schema(), batch.schema, "dedup={dedup}");
            assert_eq!(s.records(), 3);
        }
    }

    #[test]
    fn shape_route_fold_matches_batch_schema_and_keeps_the_cache_warm() {
        let texts = [
            r#"{"a": 1}"#,
            r#"{"a": 2}"#,
            r#"{"a": "x", "b": true}"#,
            r#"{"a": 3}"#,
        ];
        for dedup in [false, true] {
            let mut s = state_on(dedup, MapPath::Shape, ErrorPolicy::FailFast);
            assert_eq!(s.fold_batch(&lines(&texts[..2])), 2);
            assert_eq!(s.fold_batch(&lines(&texts[2..])), 2);
            let batch = typefuse::JobConfig::new()
                .build()
                .run_ndjson(texts.join("\n").as_bytes())
                .unwrap();
            assert_eq!(s.schema(), batch.schema, "dedup={dedup}");
            assert_eq!(s.records(), 4);
            // {"a":1}, {"a":2} and {"a":3} share one signature; the
            // cache stayed warm across the two polls.
            assert_eq!((s.shape_hits(), s.shape_misses()), (2, 2));
        }
    }

    #[test]
    fn shape_route_applies_the_error_policy_per_record() {
        let mut s = state_on(
            false,
            MapPath::Shape,
            ErrorPolicy::Skip {
                max_errors: Some(10),
            },
        );
        s.fold_batch(&lines(&[r#"{"a": 1}"#, "not json", r#"{"a": 2}"#]));
        assert!(s.is_active());
        assert_eq!(s.records(), 2);
        assert_eq!(s.report.skipped(), 1);
        assert_eq!(s.shape_hits(), 1, "bad record never pollutes the cache");
    }

    #[test]
    fn fail_fast_marks_the_source_failed_but_keeps_prior_schema() {
        let mut s = state(false, ErrorPolicy::FailFast);
        s.fold_batch(&lines(&[r#"{"a": 1}"#, "not json", r#"{"b": 2}"#]));
        assert!(matches!(s.status, SourceStatus::Failed(_)));
        assert_eq!(
            s.schema().to_string(),
            "{a: Num}",
            "folding stopped at the bad line"
        );
    }

    #[test]
    fn skip_policy_drops_bad_records_and_enforces_the_budget() {
        let mut s = state(
            false,
            ErrorPolicy::Skip {
                max_errors: Some(1),
            },
        );
        s.fold_batch(&lines(&[r#"{"a": 1}"#, "bad", r#"{"a": 2}"#]));
        assert!(s.is_active());
        assert_eq!(s.records(), 2);
        assert_eq!(s.report.skipped(), 1);
        s.fold_batch(&lines(&["worse"]));
        assert!(
            matches!(s.status, SourceStatus::Failed(_)),
            "budget of 1 exhausted"
        );
    }

    #[test]
    fn quarantine_appends_across_batches() {
        let dir = std::env::temp_dir().join("typefuse-serve-fold-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sink = dir.join("quarantine.ndjson");
        let _ = std::fs::remove_file(&sink);
        let mut s = state(false, ErrorPolicy::quarantine(&sink));
        s.fold_batch(&lines(&["bad one"]));
        s.fold_batch(&lines(&["bad two"]));
        let replayed = typefuse::faults::read_quarantine(&sink).unwrap();
        assert_eq!(replayed.len(), 2, "second batch appended, not replaced");
    }

    #[test]
    fn publish_assigns_versions_and_reports_drift() {
        let mut registry = typefuse_registry::MemoryRegistry::new();
        let mut s = state(false, ErrorPolicy::FailFast);
        s.fold_batch(&lines(&[r#"{"id": 1}"#]));
        s.publish(&mut registry, CompatMode::None);
        assert_eq!(s.version, Some(1));
        assert!(s.drift.is_empty());
        // Same schema again: no new version, no drift.
        s.fold_batch(&lines(&[r#"{"id": 2}"#]));
        s.publish(&mut registry, CompatMode::None);
        assert_eq!(s.version, Some(1));
        assert!(s.drift.is_empty());
        // A new field drifts the schema to v2.
        s.fold_batch(&lines(&[r#"{"id": 3, "tag": "x"}"#]));
        s.publish(&mut registry, CompatMode::None);
        assert_eq!(s.version, Some(2));
        assert!(!s.drift.is_empty());
        assert!(s.drift[0].contains("v1→v2"), "{:?}", s.drift);
    }

    #[test]
    fn folding_emits_structured_events() {
        let mut registry = typefuse_registry::MemoryRegistry::new();
        let mut s = state(
            false,
            ErrorPolicy::Skip {
                max_errors: Some(10),
            },
        );
        s.fold_batch(&lines(&[r#"{"id": 1}"#, "not json"]));
        assert!(s.last_activity_ms.is_some(), "batch stamps activity");
        s.publish(&mut registry, CompatMode::None);
        s.fold_batch(&lines(&[r#"{"id": 2, "tag": "x"}"#]));
        s.publish(&mut registry, CompatMode::None);
        let events = s.events.recent(16);
        assert!(
            events
                .iter()
                .any(|e| e.level == Level::Warn && e.span == "ingest"),
            "bad record warns: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.level == Level::Info && e.span == "publish"),
            "publish informs: {events:?}"
        );
        assert!(
            events.iter().any(|e| e.level == Level::Warn
                && e.span == "drift"
                && e.message.contains("v1→v2")),
            "drift warns: {events:?}"
        );
    }

    #[test]
    fn compat_rejection_becomes_a_drift_alert_and_folding_continues() {
        let mut registry = typefuse_registry::MemoryRegistry::new();
        let mut s = state(false, ErrorPolicy::FailFast);
        s.fold_batch(&lines(&[r#"{"id": 1, "name": "a"}"#]));
        s.publish(&mut registry, CompatMode::Backward);
        assert_eq!(s.version, Some(1));
        // Numbers joining a string field breaks backward compatibility
        // for readers of v1? No — widening admits more. Force a reject
        // by switching the whole record shape through Forward mode:
        // new <: old must fail once a mandatory field appears.
        s.fold_batch(&lines(&[r#"{"id": 2, "name": "b", "extra": true}"#]));
        s.publish(&mut registry, CompatMode::Forward);
        assert_eq!(s.version, Some(1), "rejected publish keeps the old version");
        assert!(s.drift.iter().any(|d| d.contains("publish rejected")));
        assert!(s.is_active());
    }
}
