//! Per-source folding state: the warm accumulator a poller feeds and
//! the protocol reads.
//!
//! Exactness rests on the fusion laws (Section 5 of the paper): fuse is
//! associative, commutative and idempotent, so absorbing appended
//! records one batch at a time produces byte-identically the schema a
//! batch run over the whole file would. The accumulator is kept *warm*
//! across batches — when shape dedup is on, the hash-consed interner
//! and memoized fuse cache carry over, so a redundant feed pays the
//! inference cost once per distinct shape, not once per record.

use std::path::PathBuf;
use typefuse::pipeline::MapPath;
use typefuse::{BadRecord, ErrorPolicy, ErrorReport};
use typefuse_infer::{infer_type, DedupAcc, FuseConfig, Incremental, ProfileAcc, ShapeCache};
use typefuse_json::{Map, Parser, ParserOptions, Value};
use typefuse_obs::{EventLog, Level, Recorder};
use typefuse_registry::{CompatMode, RegistryStore};
use typefuse_types::diff::SchemaChange;
use typefuse_types::Type;

/// The warm schema accumulator: shape-dedup or plain incremental.
enum Acc {
    /// Hash-consed interner + memoized fusion, carried across batches.
    Dedup(Box<DedupAcc>),
    /// Plain running fusion.
    Plain(Incremental),
}

/// One successfully parsed record, in whichever form the Map route
/// produced it: a value tree (events/values routes) or a bare type
/// (shape route).
enum Folded {
    Value(Value),
    Type(Type),
}

/// A source's health, as reported by the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceStatus {
    /// Folding normally.
    Active,
    /// The input reported a permanent close (TCP sources only report
    /// per-connection closes; a file source never closes).
    Closed,
    /// The source stopped folding: fail-fast hit a bad record, the
    /// error budget ran out, or input I/O failed permanently.
    Failed(String),
}

/// Everything the daemon knows about one source. The poller thread
/// mutates it behind a mutex; protocol sessions read it.
pub(crate) struct SourceState {
    pub(crate) name: String,
    acc: Acc,
    profile: ProfileAcc,
    pub(crate) report: ErrorReport,
    /// 1-based input line counter (bad lines included, like batch).
    lines: u64,
    /// Latest registry version holding this source's schema.
    pub(crate) version: Option<u64>,
    /// Drift alerts, oldest first: one rendered line per structural
    /// change between consecutive published versions.
    pub(crate) drift: Vec<String>,
    pub(crate) status: SourceStatus,
    /// Records written to the quarantine sidecar for this source.
    pub(crate) quarantined: u64,
    /// Unix-millisecond timestamp of the last batch that brought any
    /// line (folded or bad); `None` until the source first produces.
    pub(crate) last_activity_ms: Option<u64>,
    /// Tail-resume info, mirrored from the poller's reader under this
    /// state's mutex right after every fold, so a checkpoint written
    /// from another thread always pairs the folded schema with the
    /// exact byte position it covers.
    pub(crate) tail_offset: u64,
    pub(crate) tail_pending: Vec<u8>,
    pub(crate) tail_pending_overflow: bool,
    /// Bumped on every change worth persisting; the checkpointer skips
    /// sources whose revision it has already written.
    pub(crate) ckpt_rev: u64,
    fuse_config: FuseConfig,
    parser: ParserOptions,
    policy: ErrorPolicy,
    recorder: Recorder,
    events: EventLog,
    /// Signature → type memo for the shape route (`--map-path shape`),
    /// kept warm across poll batches — steady-state feeds are the most
    /// shape-redundant input there is. `None` on the other routes.
    shape: Option<ShapeCache>,
}

impl SourceState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: &str,
        dedup: bool,
        map_path: MapPath,
        fuse_config: FuseConfig,
        parser: ParserOptions,
        policy: ErrorPolicy,
        recorder: Recorder,
        events: EventLog,
    ) -> Self {
        SourceState {
            name: name.to_string(),
            acc: if dedup {
                Acc::Dedup(Box::new(DedupAcc::new()))
            } else {
                Acc::Plain(Incremental::with_config(fuse_config))
            },
            profile: ProfileAcc::with_config(fuse_config),
            report: ErrorReport::new(),
            lines: 0,
            version: None,
            drift: Vec::new(),
            status: SourceStatus::Active,
            quarantined: 0,
            last_activity_ms: None,
            tail_offset: 0,
            tail_pending: Vec::new(),
            tail_pending_overflow: false,
            ckpt_rev: 0,
            fuse_config,
            parser,
            policy,
            recorder,
            events,
            shape: (map_path == MapPath::Shape).then(ShapeCache::new),
        }
    }

    /// The current fused schema.
    pub(crate) fn schema(&self) -> Type {
        match &self.acc {
            Acc::Dedup(acc) => acc.schema(),
            Acc::Plain(acc) => acc.schema().clone(),
        }
    }

    /// Records successfully folded so far.
    pub(crate) fn records(&self) -> u64 {
        match &self.acc {
            Acc::Dedup(acc) => acc.records(),
            Acc::Plain(acc) => acc.count(),
        }
    }

    /// A point-in-time profile report (presence, kinds, provenance).
    pub(crate) fn profile_report(&self) -> typefuse_infer::ProfileReport {
        self.profile.clone().finish()
    }

    /// Distinct interned shapes held by the dedup accumulator (0 on the
    /// plain route, which does not track shapes).
    pub(crate) fn distinct_shapes(&self) -> u64 {
        match &self.acc {
            Acc::Dedup(acc) => acc.distinct_shapes() as u64,
            Acc::Plain(_) => 0,
        }
    }

    pub(crate) fn is_active(&self) -> bool {
        matches!(self.status, SourceStatus::Active)
    }

    /// 1-based count of input lines consumed so far (bad lines
    /// included) — the line counter a resumed tail reader continues.
    pub(crate) fn lines(&self) -> u64 {
        self.lines
    }

    /// Mirror the poller's tail position into the state (see the field
    /// docs) and mark the state dirty if anything moved.
    pub(crate) fn sync_tail(&mut self, offset: u64, pending: &[u8], overflow: bool) {
        if self.tail_offset == offset
            && self.tail_pending == pending
            && self.tail_pending_overflow == overflow
        {
            return;
        }
        self.tail_offset = offset;
        self.tail_pending = pending.to_vec();
        self.tail_pending_overflow = overflow;
        self.ckpt_rev += 1;
    }

    /// Mark the state dirty without a tail position (TCP sources, whose
    /// producers cannot be resumed by offset).
    pub(crate) fn mark_dirty(&mut self) {
        self.ckpt_rev += 1;
    }

    /// Serialize everything a restart needs to resume this source
    /// exactly: the accumulator (schema + record count), profile, error
    /// report, line/tail position, and publish bookkeeping. All `u64`s
    /// travel as decimal strings (see `typefuse_json::codec`) so values
    /// above 2^53 survive the JSON round trip.
    pub(crate) fn checkpoint_value(&self) -> Value {
        use typefuse_json::codec::u64_to_value;
        let mut m = Map::new();
        m.insert("v", Value::from(1i64));
        m.insert("name", Value::from(self.name.clone()));
        m.insert("lines", u64_to_value(self.lines));
        m.insert("tail_offset", u64_to_value(self.tail_offset));
        m.insert("tail_pending", Value::from(to_hex(&self.tail_pending)));
        m.insert(
            "tail_pending_overflow",
            Value::Bool(self.tail_pending_overflow),
        );
        m.insert("dedup", Value::Bool(matches!(self.acc, Acc::Dedup(_))));
        m.insert(
            "schema",
            Value::from(typefuse_types::wire::to_wire(&self.schema())),
        );
        m.insert("records", u64_to_value(self.records()));
        m.insert("profile", self.profile.checkpoint_value());
        m.insert("report", self.report.checkpoint_value());
        if let Some(version) = self.version {
            m.insert("version", u64_to_value(version));
        }
        m.insert("quarantined", u64_to_value(self.quarantined));
        m.insert(
            "drift",
            Value::Array(self.drift.iter().map(|d| Value::from(d.clone())).collect()),
        );
        let (status, reason) = match &self.status {
            SourceStatus::Active => ("active", None),
            SourceStatus::Closed => ("closed", None),
            SourceStatus::Failed(reason) => ("failed", Some(reason.clone())),
        };
        m.insert("status", Value::from(status));
        if let Some(reason) = reason {
            m.insert("status_reason", Value::from(reason));
        }
        if let Some(at) = self.last_activity_ms {
            m.insert("last_activity_ms", u64_to_value(at));
        }
        Value::Object(m)
    }

    /// Rebuild a source from a checkpoint payload. Takes the same
    /// configuration as [`SourceState::new`] — the fuse config, parser
    /// options and error policy are *not* persisted; a resumed daemon
    /// must run the same job configuration as the one that wrote the
    /// checkpoint, or the incremental ≡ batch law breaks. The dedup
    /// route and shape cache restart cold (pure perf state); the fused
    /// schema, profile and error report resume exactly.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore(
        name: &str,
        dedup: bool,
        map_path: MapPath,
        fuse_config: FuseConfig,
        parser: ParserOptions,
        policy: ErrorPolicy,
        recorder: Recorder,
        events: EventLog,
        payload: &Value,
    ) -> Result<Self, String> {
        use typefuse_json::codec::{opt_u64_from_value, u64_from_value};
        let version_tag = payload
            .get("v")
            .and_then(Value::as_i64)
            .ok_or("missing checkpoint version")?;
        if version_tag != 1 {
            return Err(format!("unsupported checkpoint version {version_tag}"));
        }
        let stored_name = payload
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing name")?;
        if stored_name != name {
            return Err(format!(
                "checkpoint belongs to source `{stored_name}`, not `{name}`"
            ));
        }
        let lines = u64_from_value(payload.get("lines").ok_or("missing lines")?)?;
        let tail_offset = u64_from_value(payload.get("tail_offset").ok_or("missing tail_offset")?)?;
        let tail_pending = from_hex(
            payload
                .get("tail_pending")
                .and_then(Value::as_str)
                .ok_or("missing tail_pending")?,
        )?;
        let tail_pending_overflow = payload
            .get("tail_pending_overflow")
            .and_then(Value::as_bool)
            .ok_or("missing tail_pending_overflow")?;
        let schema = typefuse_types::wire::from_wire(
            payload
                .get("schema")
                .and_then(Value::as_str)
                .ok_or("missing schema")?,
        )?;
        let records = u64_from_value(payload.get("records").ok_or("missing records")?)?;
        let profile = ProfileAcc::from_checkpoint_value(
            payload.get("profile").ok_or("missing profile")?,
            fuse_config,
        )?;
        let report =
            ErrorReport::from_checkpoint_value(payload.get("report").ok_or("missing report")?)?;
        let version = opt_u64_from_value(payload.get("version"))?;
        let quarantined = u64_from_value(payload.get("quarantined").ok_or("missing quarantined")?)?;
        let drift = payload
            .get("drift")
            .and_then(Value::as_array)
            .ok_or("missing drift")?
            .iter()
            .map(|d| {
                d.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string drift alert".to_string())
            })
            .collect::<Result<Vec<String>, String>>()?;
        let status = match payload.get("status").and_then(Value::as_str) {
            Some("active") => SourceStatus::Active,
            Some("closed") => SourceStatus::Closed,
            Some("failed") => SourceStatus::Failed(
                payload
                    .get("status_reason")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown failure")
                    .to_string(),
            ),
            other => return Err(format!("bad status {other:?}")),
        };
        let last_activity_ms = opt_u64_from_value(payload.get("last_activity_ms"))?;
        Ok(SourceState {
            name: name.to_string(),
            acc: if dedup {
                Acc::Dedup(Box::new(DedupAcc::resume(&schema, records)))
            } else {
                Acc::Plain(Incremental::resume(schema, records, fuse_config))
            },
            profile,
            report,
            lines,
            version,
            drift,
            status,
            quarantined,
            last_activity_ms,
            tail_offset,
            tail_pending,
            tail_pending_overflow,
            ckpt_rev: 0,
            fuse_config,
            parser,
            policy,
            recorder,
            events,
            shape: (map_path == MapPath::Shape).then(ShapeCache::new),
        })
    }

    /// Fold one batch of tailed lines. Returns how many records were
    /// absorbed; `false` activity means nothing changed. A policy
    /// violation (fail-fast bad record, exhausted budget) flips the
    /// source to [`SourceStatus::Failed`] and stops folding — a daemon
    /// must keep serving its other sources.
    pub(crate) fn fold_batch(&mut self, lines: &[typefuse_json::TailLine]) -> u64 {
        let mut absorbed = 0u64;
        if !lines.is_empty() {
            self.last_activity_ms = Some(unix_ms());
        }
        for line in lines {
            if !self.is_active() {
                break;
            }
            self.lines += 1;
            if line.truncated {
                let error = typefuse_json::Error::at(
                    typefuse_json::ErrorKind::RecordTooLarge(line.content.len()),
                    typefuse_json::Position {
                        offset: 0,
                        line: self.lines as u32,
                        column: 1,
                    },
                );
                self.note_bad(error, &line.content);
                continue;
            }
            let trimmed = typefuse_json::ndjson::trim_ascii_bytes(&line.content);
            if trimmed.is_empty() {
                continue;
            }
            // Shape route: the warm signature cache infers the type
            // without materialising a value (misses replay the event
            // fold), so the accumulator absorbs the type directly. The
            // profiler needs materialised values, so on this route the
            // `profile` op reports an empty profile — the trade the
            // route makes for hash-lookup steady state.
            let outcome = if let Some(cache) = self.shape.as_mut() {
                cache
                    .infer_line(trimmed, &self.parser, &self.recorder)
                    .map(Folded::Type)
            } else {
                Parser::with_options(trimmed, self.parser.clone())
                    .parse_complete()
                    .map(Folded::Value)
            };
            match outcome {
                Ok(Folded::Value(value)) => {
                    self.absorb(&value);
                    absorbed += 1;
                }
                Ok(Folded::Type(ty)) => {
                    self.absorb_type(ty);
                    absorbed += 1;
                }
                Err(e) => {
                    // Re-anchor the error at the stream line so alerts
                    // point at the right append.
                    let mut pos = e.span().start;
                    pos.line = self.lines as u32;
                    let anchored = typefuse_json::Error::at(e.kind().clone(), pos);
                    self.note_bad(anchored, trimmed);
                }
            }
        }
        absorbed
    }

    fn absorb(&mut self, value: &Value) {
        let line = self.lines;
        match &mut self.acc {
            Acc::Dedup(acc) => acc.absorb_type(self.fuse_config, &infer_type(value)),
            Acc::Plain(acc) => acc.absorb(value),
        }
        self.profile.absorb_value_at(line, value);
        self.count_record();
    }

    /// Absorb an already inferred type (shape route): same accumulator
    /// fold and counters as [`SourceState::absorb`], no value profile.
    fn absorb_type(&mut self, ty: Type) {
        match &mut self.acc {
            Acc::Dedup(acc) => acc.absorb_type(self.fuse_config, &ty),
            Acc::Plain(acc) => acc.absorb_type(ty),
        }
        self.count_record();
    }

    fn count_record(&mut self) {
        self.recorder.add("ingest.records", 1);
        self.recorder
            .add(&format!("ingest.records.{}", self.name), 1);
    }

    /// Signature-cache hits so far (0 off the shape route).
    pub(crate) fn shape_hits(&self) -> u64 {
        self.shape.as_ref().map_or(0, ShapeCache::hits)
    }

    /// Signature-cache misses so far (0 off the shape route).
    pub(crate) fn shape_misses(&self) -> u64 {
        self.shape.as_ref().map_or(0, ShapeCache::misses)
    }

    /// Apply the error policy to one bad record. Mirrors the batch
    /// semantics (`ErrorPolicy::enforce`) but per record, because a
    /// daemon has no "end of run": fail-fast marks the source failed,
    /// skip drops, quarantine appends the record to the sidecar, and an
    /// exhausted `max_errors` budget fails the source.
    fn note_bad(&mut self, error: typefuse_json::Error, text: &[u8]) {
        self.recorder.add("ingest.parse_errors", 1);
        if self.policy.is_fail_fast() {
            self.fail(format!("parse error: {error}"));
            return;
        }
        let keeps_text = self.policy.keeps_text();
        let bad = BadRecord {
            at: self.lines,
            error,
            text: keeps_text.then(|| String::from_utf8_lossy(text).into_owned()),
        };
        match &self.policy {
            ErrorPolicy::Quarantine { sink, .. } => match append_quarantine(sink, &bad) {
                Ok(()) => {
                    self.recorder.add("ingest.quarantined", 1);
                    self.quarantined += 1;
                }
                Err(e) => {
                    self.fail(format!("cannot quarantine to {sink:?}: {e}"));
                    return;
                }
            },
            ErrorPolicy::Skip { .. } | ErrorPolicy::FailFast => {}
        }
        self.recorder.add("ingest.skipped", 1);
        self.events.log(
            Level::Warn,
            &self.name,
            "ingest",
            format!("bad record at line {}: {}", bad.at, bad.error),
        );
        self.report.note(bad);
        let budget = match &self.policy {
            ErrorPolicy::Skip { max_errors } | ErrorPolicy::Quarantine { max_errors, .. } => {
                *max_errors
            }
            ErrorPolicy::FailFast => None,
        };
        if let Some(limit) = budget {
            if self.report.skipped() > limit {
                self.fail(format!(
                    "error budget exhausted: {} bad records (limit {limit})",
                    self.report.skipped()
                ));
            }
        }
    }

    /// Flip the source to [`SourceStatus::Failed`] with an error event.
    pub(crate) fn fail(&mut self, reason: String) {
        self.events
            .log(Level::Error, &self.name, "ingest", reason.clone());
        self.status = SourceStatus::Failed(reason);
    }

    /// Publish the current schema as a new registry snapshot and record
    /// drift. Idempotent: an unchanged schema publishes as the existing
    /// version with no new entry and no alert. A compatibility
    /// rejection becomes a drift alert (the feed *did* drift — in a way
    /// the gate forbids) but keeps the source folding.
    pub(crate) fn publish(&mut self, registry: &mut dyn RegistryStore, compat: CompatMode) {
        let schema = self.schema();
        if schema == Type::Bottom {
            return;
        }
        let previous = self.version;
        match registry.publish_schema(&self.name, &schema, compat) {
            Ok(outcome) => {
                self.version = Some(outcome.version);
                if outcome.unchanged {
                    return;
                }
                self.recorder.add("serve.publishes", 1);
                self.events.log(
                    Level::Info,
                    &self.name,
                    "publish",
                    format!("published version {}", outcome.version),
                );
                if let Some(prev) = previous {
                    if let Ok(changes) = registry.changes(&self.name, prev, outcome.version) {
                        self.record_drift(prev, outcome.version, &changes);
                    }
                }
            }
            Err(e) => {
                self.recorder.add("serve.publish_rejected", 1);
                let alert = format!("publish rejected ({compat:?}): {e}");
                self.events
                    .log(Level::Warn, &self.name, "publish", alert.clone());
                self.drift.push(alert);
            }
        }
    }

    fn record_drift(&mut self, from: u64, to: u64, changes: &[SchemaChange]) {
        self.recorder.add("serve.drift", changes.len() as u64);
        for change in changes {
            let alert = format!("v{from}→v{to}: {change}");
            self.events
                .log(Level::Warn, &self.name, "drift", alert.clone());
            self.drift.push(alert);
        }
    }
}

/// Hex-encode arbitrary bytes (the carried partial line may be invalid
/// UTF-8, so it cannot ride in a JSON string as-is).
pub(crate) fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

pub(crate) fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("odd-length hex string".to_string());
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(text.get(i..i + 2).ok_or("non-ascii hex")?, 16)
                .map_err(|e| format!("bad hex byte at {i}: {e}"))
        })
        .collect()
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Append one bad record to the quarantine sidecar in the same NDJSON
/// shape batch quarantine writes (`at`/`error`/`text`), so
/// `typefuse::faults::read_quarantine` replays daemon sidecars too.
/// Appending (instead of the batch writer's truncate) is what a
/// long-running fold needs: each batch must extend, not replace.
fn append_quarantine(sink: &PathBuf, bad: &BadRecord) -> std::io::Result<()> {
    use std::io::Write;
    let mut obj = Map::new();
    obj.insert("at", Value::from(bad.at as i64));
    obj.insert("error", Value::from(bad.error.to_string()));
    if let Some(text) = &bad.text {
        obj.insert("text", Value::from(text.clone()));
    }
    let mut line = typefuse_json::to_string(&Value::Object(obj));
    line.push('\n');
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(sink)?;
    file.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::TailLine;

    fn lines(texts: &[&str]) -> Vec<TailLine> {
        texts
            .iter()
            .map(|t| TailLine {
                content: t.as_bytes().to_vec(),
                truncated: false,
            })
            .collect()
    }

    fn state(dedup: bool, policy: ErrorPolicy) -> SourceState {
        state_on(dedup, MapPath::Events, policy)
    }

    fn state_on(dedup: bool, map_path: MapPath, policy: ErrorPolicy) -> SourceState {
        SourceState::new(
            "s",
            dedup,
            map_path,
            FuseConfig::default(),
            ParserOptions::default(),
            policy,
            Recorder::enabled(),
            EventLog::new(64, Level::Debug),
        )
    }

    #[test]
    fn incremental_fold_matches_batch_schema() {
        let texts = [r#"{"a": 1}"#, r#"{"a": "x", "b": true}"#, r#"{"b": false}"#];
        for dedup in [false, true] {
            let mut s = state(dedup, ErrorPolicy::FailFast);
            // Two batches, like two polls of a growing file.
            assert_eq!(s.fold_batch(&lines(&texts[..1])), 1);
            assert_eq!(s.fold_batch(&lines(&texts[1..])), 2);
            let batch = typefuse::JobConfig::new()
                .build()
                .run_ndjson(texts.join("\n").as_bytes())
                .unwrap();
            assert_eq!(s.schema(), batch.schema, "dedup={dedup}");
            assert_eq!(s.records(), 3);
        }
    }

    #[test]
    fn shape_route_fold_matches_batch_schema_and_keeps_the_cache_warm() {
        let texts = [
            r#"{"a": 1}"#,
            r#"{"a": 2}"#,
            r#"{"a": "x", "b": true}"#,
            r#"{"a": 3}"#,
        ];
        for dedup in [false, true] {
            let mut s = state_on(dedup, MapPath::Shape, ErrorPolicy::FailFast);
            assert_eq!(s.fold_batch(&lines(&texts[..2])), 2);
            assert_eq!(s.fold_batch(&lines(&texts[2..])), 2);
            let batch = typefuse::JobConfig::new()
                .build()
                .run_ndjson(texts.join("\n").as_bytes())
                .unwrap();
            assert_eq!(s.schema(), batch.schema, "dedup={dedup}");
            assert_eq!(s.records(), 4);
            // {"a":1}, {"a":2} and {"a":3} share one signature; the
            // cache stayed warm across the two polls.
            assert_eq!((s.shape_hits(), s.shape_misses()), (2, 2));
        }
    }

    #[test]
    fn shape_route_applies_the_error_policy_per_record() {
        let mut s = state_on(
            false,
            MapPath::Shape,
            ErrorPolicy::Skip {
                max_errors: Some(10),
            },
        );
        s.fold_batch(&lines(&[r#"{"a": 1}"#, "not json", r#"{"a": 2}"#]));
        assert!(s.is_active());
        assert_eq!(s.records(), 2);
        assert_eq!(s.report.skipped(), 1);
        assert_eq!(s.shape_hits(), 1, "bad record never pollutes the cache");
    }

    #[test]
    fn fail_fast_marks_the_source_failed_but_keeps_prior_schema() {
        let mut s = state(false, ErrorPolicy::FailFast);
        s.fold_batch(&lines(&[r#"{"a": 1}"#, "not json", r#"{"b": 2}"#]));
        assert!(matches!(s.status, SourceStatus::Failed(_)));
        assert_eq!(
            s.schema().to_string(),
            "{a: Num}",
            "folding stopped at the bad line"
        );
    }

    #[test]
    fn skip_policy_drops_bad_records_and_enforces_the_budget() {
        let mut s = state(
            false,
            ErrorPolicy::Skip {
                max_errors: Some(1),
            },
        );
        s.fold_batch(&lines(&[r#"{"a": 1}"#, "bad", r#"{"a": 2}"#]));
        assert!(s.is_active());
        assert_eq!(s.records(), 2);
        assert_eq!(s.report.skipped(), 1);
        s.fold_batch(&lines(&["worse"]));
        assert!(
            matches!(s.status, SourceStatus::Failed(_)),
            "budget of 1 exhausted"
        );
    }

    #[test]
    fn quarantine_appends_across_batches() {
        let dir = std::env::temp_dir().join("typefuse-serve-fold-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sink = dir.join("quarantine.ndjson");
        let _ = std::fs::remove_file(&sink);
        let mut s = state(false, ErrorPolicy::quarantine(&sink));
        s.fold_batch(&lines(&["bad one"]));
        s.fold_batch(&lines(&["bad two"]));
        let replayed = typefuse::faults::read_quarantine(&sink).unwrap();
        assert_eq!(replayed.len(), 2, "second batch appended, not replaced");
    }

    #[test]
    fn publish_assigns_versions_and_reports_drift() {
        let mut registry = typefuse_registry::MemoryRegistry::new();
        let mut s = state(false, ErrorPolicy::FailFast);
        s.fold_batch(&lines(&[r#"{"id": 1}"#]));
        s.publish(&mut registry, CompatMode::None);
        assert_eq!(s.version, Some(1));
        assert!(s.drift.is_empty());
        // Same schema again: no new version, no drift.
        s.fold_batch(&lines(&[r#"{"id": 2}"#]));
        s.publish(&mut registry, CompatMode::None);
        assert_eq!(s.version, Some(1));
        assert!(s.drift.is_empty());
        // A new field drifts the schema to v2.
        s.fold_batch(&lines(&[r#"{"id": 3, "tag": "x"}"#]));
        s.publish(&mut registry, CompatMode::None);
        assert_eq!(s.version, Some(2));
        assert!(!s.drift.is_empty());
        assert!(s.drift[0].contains("v1→v2"), "{:?}", s.drift);
    }

    #[test]
    fn folding_emits_structured_events() {
        let mut registry = typefuse_registry::MemoryRegistry::new();
        let mut s = state(
            false,
            ErrorPolicy::Skip {
                max_errors: Some(10),
            },
        );
        s.fold_batch(&lines(&[r#"{"id": 1}"#, "not json"]));
        assert!(s.last_activity_ms.is_some(), "batch stamps activity");
        s.publish(&mut registry, CompatMode::None);
        s.fold_batch(&lines(&[r#"{"id": 2, "tag": "x"}"#]));
        s.publish(&mut registry, CompatMode::None);
        let events = s.events.recent(16);
        assert!(
            events
                .iter()
                .any(|e| e.level == Level::Warn && e.span == "ingest"),
            "bad record warns: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.level == Level::Info && e.span == "publish"),
            "publish informs: {events:?}"
        );
        assert!(
            events.iter().any(|e| e.level == Level::Warn
                && e.span == "drift"
                && e.message.contains("v1→v2")),
            "drift warns: {events:?}"
        );
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_for_every_cut() {
        let texts = [
            r#"{"a": 1}"#,
            "not json",
            r#"{"a": "x", "b": [1, null]}"#,
            r#"{"b": {"c": 1.5}}"#,
            r#"{"a": 2}"#,
        ];
        let policy = || ErrorPolicy::Skip {
            max_errors: Some(10),
        };
        for dedup in [false, true] {
            for map_path in [MapPath::Events, MapPath::Shape] {
                let mut full = state_on(dedup, map_path, policy());
                full.fold_batch(&lines(&texts));
                for cut in 0..=texts.len() {
                    let mut head = state_on(dedup, map_path, policy());
                    head.fold_batch(&lines(&texts[..cut]));
                    head.sync_tail(17, b"{\"part", false);
                    let payload = head.checkpoint_value();
                    let mut resumed = SourceState::restore(
                        "s",
                        dedup,
                        map_path,
                        FuseConfig::default(),
                        ParserOptions::default(),
                        policy(),
                        Recorder::enabled(),
                        EventLog::new(64, Level::Debug),
                        &payload,
                    )
                    .unwrap();
                    assert_eq!(resumed.tail_offset, 17);
                    assert_eq!(resumed.tail_pending, b"{\"part");
                    assert_eq!(resumed.lines(), head.lines());
                    resumed.fold_batch(&lines(&texts[cut..]));
                    let ctx = format!("dedup={dedup} map_path={map_path:?} cut={cut}");
                    assert_eq!(
                        resumed.schema().to_string(),
                        full.schema().to_string(),
                        "schema ({ctx})"
                    );
                    assert_eq!(resumed.records(), full.records(), "records ({ctx})");
                    assert_eq!(
                        resumed.report.checkpoint_value(),
                        full.report.checkpoint_value(),
                        "report ({ctx})"
                    );
                    assert_eq!(
                        resumed.profile_report().to_json(),
                        full.profile_report().to_json(),
                        "profile ({ctx})"
                    );
                }
            }
        }
    }

    // The deterministic every-cut test above pins a handful of shapes;
    // this drives the same byte-identity law over *arbitrary* record
    // streams (valid and malformed lines interleaved), an arbitrary
    // crash point, and both dedup and map-path routes. This is the
    // exactness guarantee the crash-safe daemon rests on: fusion is a
    // monoid fold, so checkpoint-then-resume is indistinguishable from
    // never having crashed.
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_line() -> impl Strategy<Value = String> {
            prop_oneof![
                // Mostly records; depth/width bounded so 64 cases stay fast.
                4 => typefuse_json::testkit::arb_value_sized(3, 3)
                    .prop_map(|v| typefuse_json::to_string(&v)),
                // A sprinkling of the malformed lines a real tail sees.
                1 => prop::sample::select(vec![
                    "not json",
                    "{\"a\": ",
                    "[1, 2",
                    "nulll",
                    "\u{1}binary-ish\u{2}",
                ])
                .prop_map(str::to_string),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn checkpoint_resume_is_byte_identical_at_any_crash_point(
                texts in prop::collection::vec(arb_line(), 0..12),
                cut in any::<prop::sample::Index>(),
                dedup in any::<bool>(),
                shape_route in any::<bool>(),
            ) {
                let map_path = if shape_route {
                    MapPath::Shape
                } else {
                    MapPath::Events
                };
                let policy = || ErrorPolicy::Skip {
                    max_errors: Some(100),
                };
                let cut = cut.index(texts.len() + 1);
                let refs: Vec<&str> = texts.iter().map(String::as_str).collect();

                let mut full = state_on(dedup, map_path, policy());
                full.fold_batch(&lines(&refs));

                let mut head = state_on(dedup, map_path, policy());
                head.fold_batch(&lines(&refs[..cut]));
                head.sync_tail(17, b"{\"part", false);
                let payload = head.checkpoint_value();
                let mut resumed = SourceState::restore(
                    "s",
                    dedup,
                    map_path,
                    FuseConfig::default(),
                    ParserOptions::default(),
                    policy(),
                    Recorder::enabled(),
                    EventLog::new(64, Level::Debug),
                    &payload,
                )
                .unwrap();
                prop_assert_eq!(resumed.tail_offset, 17);
                prop_assert_eq!(&resumed.tail_pending[..], &b"{\"part"[..]);
                prop_assert_eq!(resumed.lines(), head.lines());
                resumed.fold_batch(&lines(&refs[cut..]));

                prop_assert_eq!(
                    resumed.schema().to_string(),
                    full.schema().to_string()
                );
                prop_assert_eq!(resumed.records(), full.records());
                prop_assert_eq!(
                    resumed.report.checkpoint_value(),
                    full.report.checkpoint_value()
                );
                prop_assert_eq!(
                    resumed.profile_report().to_json(),
                    full.profile_report().to_json()
                );
            }
        }
    }

    #[test]
    fn checkpoint_restore_rejects_foreign_and_malformed_payloads() {
        let mut s = state(false, ErrorPolicy::FailFast);
        s.fold_batch(&lines(&[r#"{"a": 1}"#]));
        let payload = s.checkpoint_value();
        let restore = |name: &str, payload: &Value| {
            SourceState::restore(
                name,
                false,
                MapPath::Events,
                FuseConfig::default(),
                ParserOptions::default(),
                ErrorPolicy::FailFast,
                Recorder::enabled(),
                EventLog::new(64, Level::Debug),
                payload,
            )
        };
        match restore("other", &payload) {
            Err(message) => assert!(message.contains("belongs to source"), "{message}"),
            Ok(_) => panic!("foreign checkpoint accepted"),
        }
        assert!(restore("s", &Value::Object(Map::new())).is_err());
        assert!(restore("s", &payload).is_ok());
    }

    #[test]
    fn hex_round_trips_arbitrary_bytes() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn failed_status_survives_the_checkpoint_round_trip() {
        let mut s = state(false, ErrorPolicy::FailFast);
        s.fold_batch(&lines(&[r#"{"a": 1}"#, "boom"]));
        assert!(matches!(s.status, SourceStatus::Failed(_)));
        let resumed = SourceState::restore(
            "s",
            false,
            MapPath::Events,
            FuseConfig::default(),
            ParserOptions::default(),
            ErrorPolicy::FailFast,
            Recorder::enabled(),
            EventLog::new(64, Level::Debug),
            &s.checkpoint_value(),
        )
        .unwrap();
        assert_eq!(resumed.status, s.status, "a parked source stays parked");
        assert_eq!(resumed.schema().to_string(), "{a: Num}");
    }

    #[test]
    fn compat_rejection_becomes_a_drift_alert_and_folding_continues() {
        let mut registry = typefuse_registry::MemoryRegistry::new();
        let mut s = state(false, ErrorPolicy::FailFast);
        s.fold_batch(&lines(&[r#"{"id": 1, "name": "a"}"#]));
        s.publish(&mut registry, CompatMode::Backward);
        assert_eq!(s.version, Some(1));
        // Numbers joining a string field breaks backward compatibility
        // for readers of v1? No — widening admits more. Force a reject
        // by switching the whole record shape through Forward mode:
        // new <: old must fail once a mandatory field appears.
        s.fold_batch(&lines(&[r#"{"id": 2, "name": "b", "extra": true}"#]));
        s.publish(&mut registry, CompatMode::Forward);
        assert_eq!(s.version, Some(1), "rejected publish keeps the old version");
        assert!(s.drift.iter().any(|d| d.contains("publish rejected")));
        assert!(s.is_active());
    }
}
