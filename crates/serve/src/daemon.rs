//! The resident daemon: source pollers, the registry publisher, and the
//! TCP protocol listener.

use crate::fold::SourceState;
use crate::protocol::{self, MetricsFormat, Request};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use typefuse::pipeline::DedupMode;
use typefuse::JobConfig;
use typefuse_engine::{spawn_periodic, BackgroundTask, Tick};
use typefuse_json::{TailLine, TailReader, TailStatus};
use typefuse_obs::{envelope, series_key, EventLog, JsonWriter, Level, Recorder, TelemetryHub};
use typefuse_registry::{CompatMode, MemoryRegistry, Registry, RegistryStore};

/// Sliding window over which `typefuse_source_records_per_sec` averages.
const RATE_WINDOW: Duration = Duration::from_secs(5);

/// Where a source's NDJSON bytes come from.
#[derive(Debug, Clone)]
pub enum SourceInput {
    /// A growing file or FIFO, tailed from the start.
    File(PathBuf),
    /// A TCP listener address; every accepted connection streams NDJSON
    /// into the source.
    Tcp(String),
}

/// One named NDJSON source.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// The source (and registry subject) name.
    pub name: String,
    /// Where the bytes come from.
    pub input: SourceInput,
}

/// Daemon configuration. The ingest knobs (error policy, parser
/// limits, fuse configuration, dedup mode, recorder) come from the same
/// [`JobConfig`] the batch pipeline uses — one configuration surface
/// for batch and resident alike.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Protocol listener address (use port 0 for an ephemeral port).
    pub listen: String,
    /// How often each source is polled for new bytes.
    pub poll_interval: Duration,
    /// Shared ingest configuration.
    pub job: JobConfig,
    /// On-disk registry log; `None` keeps snapshots in memory.
    pub registry_path: Option<PathBuf>,
    /// Compatibility gate applied to every published snapshot.
    pub compat: CompatMode,
    /// The sources to fold.
    pub sources: Vec<SourceSpec>,
    /// Tee every accepted event to this JSONL file.
    pub log_sink: Option<PathBuf>,
    /// Minimum event level retained by the event log.
    pub log_level: Level,
    /// How many events the in-memory ring retains.
    pub event_capacity: usize,
    /// Open a Chrome-trace span per poll fold and protocol request.
    /// Off by default: a resident daemon would grow the trace buffer
    /// without bound; the CLI enables it only under `--trace-json`.
    pub trace_spans: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            poll_interval: Duration::from_millis(50),
            job: JobConfig::new(),
            registry_path: None,
            compat: CompatMode::None,
            sources: Vec::new(),
            log_sink: None,
            log_level: Level::Info,
            event_capacity: 1024,
            trace_spans: false,
        }
    }
}

impl ServeConfig {
    /// The default configuration: loopback ephemeral port, 50 ms polls,
    /// in-memory registry, no sources.
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// Set the protocol listener address.
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = addr.into();
        self
    }

    /// Set the source poll interval.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Set the shared ingest configuration.
    pub fn job(mut self, job: JobConfig) -> Self {
        self.job = job;
        self
    }

    /// Persist snapshots to an on-disk registry log.
    pub fn registry(mut self, path: impl Into<PathBuf>) -> Self {
        self.registry_path = Some(path.into());
        self
    }

    /// Gate snapshot publishes with a compatibility mode.
    pub fn compat(mut self, mode: CompatMode) -> Self {
        self.compat = mode;
        self
    }

    /// Watch a growing NDJSON file (or FIFO) as a named source.
    pub fn watch_file(mut self, name: impl Into<String>, path: impl Into<PathBuf>) -> Self {
        self.sources.push(SourceSpec {
            name: name.into(),
            input: SourceInput::File(path.into()),
        });
        self
    }

    /// Listen on `addr` for NDJSON-producing TCP connections as a
    /// named source.
    pub fn tcp_source(mut self, name: impl Into<String>, addr: impl Into<String>) -> Self {
        self.sources.push(SourceSpec {
            name: name.into(),
            input: SourceInput::Tcp(addr.into()),
        });
        self
    }

    /// Tee every accepted event to `path` as JSONL.
    pub fn log_sink(mut self, path: impl Into<PathBuf>) -> Self {
        self.log_sink = Some(path.into());
        self
    }

    /// Set the minimum retained event level.
    pub fn log_level(mut self, level: Level) -> Self {
        self.log_level = level;
        self
    }

    /// Set how many events the in-memory ring retains.
    pub fn event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Open Chrome-trace spans for poll folds and protocol requests.
    pub fn trace_spans(mut self, on: bool) -> Self {
        self.trace_spans = on;
        self
    }
}

/// Shared daemon state: protocol sessions read it, pollers write it.
struct Shared {
    stop: Arc<AtomicBool>,
    started: Instant,
    recorder: Recorder,
    hub: TelemetryHub,
    events: EventLog,
    trace_spans: bool,
    compat: CompatMode,
    sources: BTreeMap<String, Arc<Mutex<SourceState>>>,
    registry: Mutex<Box<dyn RegistryStore + Send>>,
}

/// How the session loop delivers a response: one envelope, or a
/// telemetry stream (the `watch` op) that keeps writing until the
/// client disconnects or the daemon stops.
enum Reply {
    One(String),
    Watch { interval: Duration },
}

impl Shared {
    fn source(&self, name: &str) -> Result<&Arc<Mutex<SourceState>>, String> {
        self.sources.get(name).ok_or_else(|| {
            let known: Vec<&str> = self.sources.keys().map(String::as_str).collect();
            format!("unknown source `{name}` (known: {})", known.join(", "))
        })
    }

    /// Route one parsed request to its reply.
    fn respond(&self, request: &Request) -> Reply {
        let result = match request {
            Request::Schema { source } => self
                .source(source)
                .map(|s| protocol::schema_response(&s.lock().expect("source lock"))),
            Request::Profile { source } => self
                .source(source)
                .map(|s| protocol::profile_response(&s.lock().expect("source lock"))),
            Request::Explain { source, path } => self
                .source(source)
                .and_then(|s| protocol::explain_response(&s.lock().expect("source lock"), path)),
            Request::Health => Ok(self.health_response()),
            Request::Diff { source, from, to } => self.source(source).and_then(|_| {
                let registry = self.registry.lock().expect("registry lock");
                registry
                    .changes(source, *from, *to)
                    .map(|changes| protocol::diff_response(source, *from, *to, &changes))
                    .map_err(|e| e.to_string())
            }),
            Request::Metrics { format } => Ok(match format {
                MetricsFormat::Json => self.metrics_response(),
                MetricsFormat::Prometheus => self.prometheus_response(),
            }),
            Request::Watch { interval_ms } => {
                return Reply::Watch {
                    interval: Duration::from_millis(*interval_ms),
                }
            }
            Request::Shutdown => {
                self.stop.store(true, Ordering::Release);
                Ok(envelope("ok", "{\"stopping\":true}"))
            }
        };
        Reply::One(result.unwrap_or_else(|message| protocol::error_response(&message)))
    }

    fn health_response(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("uptime_ms");
        w.number(self.started.elapsed().as_millis() as u64);
        w.key("records");
        w.number(
            self.sources
                .values()
                .map(|s| s.lock().expect("source lock").records())
                .sum::<u64>(),
        );
        w.key("sources");
        w.begin_array();
        for state in self.sources.values() {
            protocol::write_source_health(&mut w, &state.lock().expect("source lock"));
        }
        w.end_array();
        w.end_object();
        envelope("health", &w.finish())
    }

    /// Refresh the daemon-level series a sample should carry: uptime
    /// (approx — wall clock) and per-level event counts (deterministic
    /// for a fixed fold sequence, so they live in `gauges`).
    fn refresh_daemon_series(&self) {
        self.hub
            .approx_gauge("typefuse_uptime_ms")
            .set(self.started.elapsed().as_millis() as u64);
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            self.hub
                .gauge(series_key("typefuse_events", &[("level", level.name())]))
                .set(self.events.count(level));
        }
    }

    /// One `telemetry` snapshot envelope.
    fn metrics_response(&self) -> String {
        self.refresh_daemon_series();
        envelope("telemetry", &self.hub.sample().to_json())
    }

    /// One `prometheus` envelope: the text exposition 0.0.4 document as
    /// a JSON string payload, so the response stays one line.
    fn prometheus_response(&self) -> String {
        self.refresh_daemon_series();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("content_type");
        w.string("text/plain; version=0.0.4");
        w.key("text");
        w.string(&self.hub.sample().to_prometheus());
        w.end_object();
        envelope("prometheus", &w.finish())
    }
}

/// The tailing end of one source, owned by its poller thread.
enum SourceTail {
    /// A file that may not exist yet; reopened each tick until it does.
    PendingFile(PathBuf),
    /// An open growing file / FIFO, keeping the path so the poller can
    /// stat it for tail lag.
    File(PathBuf, TailReader<std::fs::File>),
    /// A TCP listener plus every live producer connection.
    Tcp {
        listener: TcpListener,
        conns: Vec<TailReader<TcpStream>>,
        /// Bytes consumed by connections that have since closed.
        closed_bytes: u64,
    },
}

/// A running `typefuse serve` daemon.
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<Shared>,
    pollers: Vec<BackgroundTask>,
    accept: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    recorder: Recorder,
}

impl Daemon {
    /// Bind the protocol listener, open the registry, and start one
    /// poller per source. Returns once everything is listening.
    pub fn start(config: ServeConfig) -> std::io::Result<Daemon> {
        let recorder = config.job.recorder.clone();
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let registry: Box<dyn RegistryStore + Send> = match &config.registry_path {
            Some(path) => Box::new(Registry::open(path).map_err(|e| {
                std::io::Error::other(format!("cannot open registry {path:?}: {e}"))
            })?),
            None => Box::new(MemoryRegistry::new()),
        };

        let events = match &config.log_sink {
            Some(path) => EventLog::with_sink(config.event_capacity, config.log_level, path)
                .map_err(|e| {
                    std::io::Error::other(format!("cannot open event log sink {path:?}: {e}"))
                })?,
            None => EventLog::new(config.event_capacity, config.log_level),
        };
        events.log(
            Level::Info,
            "daemon",
            "boot",
            format!("listening on {addr}"),
        );
        let hub = TelemetryHub::new();

        let dedup = match config.job.dedup {
            DedupMode::On | DedupMode::Auto => true,
            DedupMode::Off => false,
        };
        let mut sources = BTreeMap::new();
        for spec in &config.sources {
            let state = SourceState::new(
                &spec.name,
                dedup,
                config.job.map_path,
                config.job.fuse_config,
                config.job.parser_options.clone(),
                config.job.error_policy.clone(),
                recorder.clone(),
                events.clone(),
            );
            if sources
                .insert(spec.name.clone(), Arc::new(Mutex::new(state)))
                .is_some()
            {
                return Err(std::io::Error::other(format!(
                    "duplicate source name `{}`",
                    spec.name
                )));
            }
        }

        let shared = Arc::new(Shared {
            stop: Arc::clone(&stop),
            started: Instant::now(),
            recorder: recorder.clone(),
            hub,
            events,
            trace_spans: config.trace_spans,
            compat: config.compat,
            sources,
            registry: Mutex::new(registry),
        });

        let mut pollers = Vec::new();
        for spec in &config.sources {
            pollers.push(spawn_source_poller(
                spec,
                &config,
                Arc::clone(&shared),
                Arc::clone(&stop),
            )?);
        }

        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = spawn_accept_loop(
            listener,
            Arc::clone(&shared),
            Arc::clone(&stop),
            Arc::clone(&sessions),
        );

        Ok(Daemon {
            addr,
            stop,
            shared,
            pollers,
            accept: Some(accept),
            sessions,
            recorder,
        })
    }

    /// The bound protocol address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's shared recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The current `health` envelope, rendered without a protocol
    /// round-trip — the same payload a connected client would get.
    pub fn health_json(&self) -> String {
        self.shared.health_response()
    }

    /// The current `telemetry` snapshot envelope, rendered without a
    /// protocol round-trip (samples the hub: bumps the version).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics_response()
    }

    /// The daemon's live telemetry hub.
    pub fn hub(&self) -> TelemetryHub {
        self.shared.hub.clone()
    }

    /// The daemon's structured event log.
    pub fn events(&self) -> EventLog {
        self.shared.events.clone()
    }

    /// Whether a stop has been requested (by [`Daemon::stop`] or a
    /// protocol `shutdown`).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Request a stop without waiting.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Block until a stop is requested.
    pub fn wait(&self) {
        while !self.stopping() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stop and join every thread: pollers, the accept loop, and all
    /// protocol sessions.
    pub fn shutdown(mut self) {
        self.stop();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.sessions.lock().expect("sessions lock"));
        for handle in handles {
            let _ = handle.join();
        }
        for poller in self.pollers.drain(..) {
            poller.join();
        }
    }
}

/// Spawn the periodic poller for one source: tail the input, fold new
/// lines, publish the snapshot, record drift. Panics in a tick are
/// caught and counted by the scheduler (`background.panics.*`).
fn spawn_source_poller(
    spec: &SourceSpec,
    config: &ServeConfig,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<BackgroundTask> {
    let recorder = shared.recorder.clone();
    let retry = config.job.retry;
    let max_line_bytes = config.job.max_line_bytes;
    let make_file_tail = move |file: std::fs::File, recorder: &Recorder| {
        let mut tail = TailReader::new(file)
            .with_retry(retry)
            .with_recorder(recorder.clone());
        if let Some(cap) = max_line_bytes {
            tail = tail.with_max_line_bytes(cap);
        }
        tail
    };

    let mut tail = match &spec.input {
        SourceInput::File(path) => match std::fs::File::open(path) {
            Ok(file) => SourceTail::File(path.clone(), make_file_tail(file, &recorder)),
            // Not-yet-created files are watched, not fatal: keep trying.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                SourceTail::PendingFile(path.clone())
            }
            Err(e) => return Err(e),
        },
        SourceInput::Tcp(addr) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            SourceTail::Tcp {
                listener,
                conns: Vec::new(),
                closed_bytes: 0,
            }
        }
    };

    let state = Arc::clone(shared.source(&spec.name).expect("source registered"));
    let compat = shared.compat;
    let poll_recorder = recorder.clone();
    let name = spec.name.clone();
    let trace_spans = shared.trace_spans;

    // Hot-path telemetry handles, hoisted out of the tick closure.
    let source_series = |metric: &str| series_key(metric, &[("source", &spec.name)]);
    let m_records = shared.hub.counter(source_series("typefuse_source_records"));
    let m_skipped = shared.hub.gauge(source_series("typefuse_source_skipped"));
    let m_quarantined = shared
        .hub
        .gauge(source_series("typefuse_source_quarantined"));
    let m_offset = shared
        .hub
        .gauge(source_series("typefuse_source_offset_bytes"));
    let m_lag = shared.hub.gauge(source_series("typefuse_source_lag_bytes"));
    let m_shapes = shared
        .hub
        .gauge(source_series("typefuse_source_distinct_shapes"));
    let m_version = shared.hub.gauge(source_series("typefuse_source_version"));
    let m_shape_hits = shared
        .hub
        .gauge(source_series("typefuse_source_shape_hits"));
    let m_shape_misses = shared
        .hub
        .gauge(source_series("typefuse_source_shape_misses"));
    let m_rate = shared
        .hub
        .approx_gauge(source_series("typefuse_source_records_per_sec"));
    let mut window: VecDeque<(Instant, u64)> = VecDeque::new();

    Ok(spawn_periodic(
        &format!("poll-{name}"),
        config.poll_interval,
        stop,
        recorder,
        move || {
            let mut lines: Vec<TailLine> = Vec::new();
            match &mut tail {
                SourceTail::PendingFile(path) => {
                    if let Ok(file) = std::fs::File::open(&*path) {
                        tail = SourceTail::File(path.clone(), make_file_tail(file, &poll_recorder));
                    }
                    return Tick::Continue;
                }
                SourceTail::File(_, reader) => {
                    if let Err(e) = reader.poll(&mut lines) {
                        let mut state = state.lock().expect("source lock");
                        state.fail(format!("read error: {e}"));
                        return Tick::Stop;
                    }
                }
                SourceTail::Tcp {
                    listener,
                    conns,
                    closed_bytes,
                } => {
                    // Adopt any new producer connections.
                    loop {
                        match listener.accept() {
                            Ok((conn, _)) => {
                                if conn.set_nonblocking(true).is_ok() {
                                    poll_recorder.add("ingest.connections", 1);
                                    conns.push(make_file_tail_tcp(
                                        conn,
                                        &poll_recorder,
                                        retry,
                                        max_line_bytes,
                                    ));
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(_) => break,
                        }
                    }
                    conns.retain_mut(|conn| match conn.poll(&mut lines) {
                        Ok(TailStatus::Idle) => true,
                        Ok(TailStatus::Closed) => {
                            // Flush an unterminated final record.
                            if let Some(last) = conn.take_pending() {
                                lines.push(last);
                            }
                            *closed_bytes += conn.bytes_read();
                            false
                        }
                        Err(_) => {
                            *closed_bytes += conn.bytes_read();
                            false
                        }
                    });
                }
            }

            // Tail position: how far we've read and how far behind the
            // input we are (files only — a TCP source has no length).
            match &tail {
                SourceTail::PendingFile(_) => {}
                SourceTail::File(path, reader) => {
                    let offset = reader.bytes_read();
                    m_offset.set(offset);
                    let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(offset);
                    m_lag.set(len.saturating_sub(offset));
                }
                SourceTail::Tcp {
                    conns,
                    closed_bytes,
                    ..
                } => {
                    m_offset.set(closed_bytes + conns.iter().map(|c| c.bytes_read()).sum::<u64>());
                }
            }

            let absorbed = if lines.is_empty() {
                0
            } else {
                let mut state = state.lock().expect("source lock");
                let _span = trace_spans.then(|| poll_recorder.span(format!("serve.fold.{name}")));
                let absorbed = state.fold_batch(&lines);
                if absorbed > 0 {
                    let mut registry = shared.registry.lock().expect("registry lock");
                    state.publish(registry.as_mut(), compat);
                }
                m_records.add(absorbed);
                m_skipped.set(state.report.skipped());
                m_quarantined.set(state.quarantined);
                m_shapes.set(state.distinct_shapes());
                m_version.set(state.version.unwrap_or(0));
                m_shape_hits.set(state.shape_hits());
                m_shape_misses.set(state.shape_misses());
                if !state.is_active() {
                    return Tick::Stop;
                }
                absorbed
            };

            // Sliding-window throughput: absorbed records over the last
            // RATE_WINDOW, decayed even on idle ticks.
            let now = Instant::now();
            if absorbed > 0 {
                window.push_back((now, absorbed));
            }
            while window
                .front()
                .is_some_and(|(at, _)| now.duration_since(*at) > RATE_WINDOW)
            {
                window.pop_front();
            }
            let in_window: u64 = window.iter().map(|(_, n)| n).sum();
            m_rate.set(in_window / RATE_WINDOW.as_secs());
            Tick::Continue
        },
    ))
}

fn make_file_tail_tcp(
    conn: TcpStream,
    recorder: &Recorder,
    retry: typefuse_json::RetryPolicy,
    max_line_bytes: Option<usize>,
) -> TailReader<TcpStream> {
    let mut tail = TailReader::new(conn)
        .with_retry(retry)
        .with_recorder(recorder.clone())
        .close_on_eof();
    if let Some(cap) = max_line_bytes {
        tail = tail.with_max_line_bytes(cap);
    }
    tail
}

/// Accept protocol connections until stopped; each session runs on its
/// own thread with panic isolation.
fn spawn_accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    let m_sessions = shared.hub.counter("typefuse_sessions_total");
    std::thread::Builder::new()
        .name("serve-accept".to_string())
        .spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let (stream, _) = match listener.accept() {
                    Ok(accepted) => accepted,
                    Err(_) => continue,
                };
                if stop.load(Ordering::Acquire) {
                    break;
                }
                shared.recorder.add("serve.sessions", 1);
                m_sessions.add(1);
                let session_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("serve-session".to_string())
                    .spawn(move || {
                        let recorder = session_shared.recorder.clone();
                        let events = session_shared.events.clone();
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            run_session(stream, &session_shared)
                        }));
                        if outcome.is_err() {
                            recorder.add("serve.session_panics", 1);
                            events.log(
                                Level::Error,
                                "session",
                                "request",
                                "session thread panicked; connection dropped",
                            );
                        }
                    })
                    .expect("spawn session thread");
                let mut sessions = sessions.lock().expect("sessions lock");
                // Reap finished sessions so the vec stays bounded.
                sessions.retain(|h| !h.is_finished());
                sessions.push(handle);
            }
        })
        .expect("spawn accept thread")
}

/// One protocol session: read request lines, write response envelopes.
/// The read timeout keeps the thread responsive to daemon shutdown. A
/// `watch` request turns the session into a telemetry stream: one
/// snapshot envelope per interval until the client disconnects or the
/// daemon stops.
fn run_session(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let recorder = shared.recorder.clone();
    let m_requests = shared.hub.counter("typefuse_requests_total");
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        recorder.add("serve.requests", 1);
        m_requests.add(1);
        recorder.record("serve.request_bytes", trimmed.len() as u64);
        let started = Instant::now();
        let reply = {
            let _span = shared.trace_spans.then(|| recorder.span("serve.request"));
            match protocol::parse_request(trimmed) {
                Ok(request) => {
                    recorder.add(&format!("serve.requests.{}", request_name(&request)), 1);
                    shared.respond(&request)
                }
                Err(message) => {
                    recorder.add("serve.requests.invalid", 1);
                    Reply::One(protocol::error_response(&message))
                }
            }
        };
        if !shared.trace_spans {
            recorder.record_span("serve.request", started.elapsed());
        }
        match reply {
            Reply::One(response) => {
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            Reply::Watch { interval } => {
                run_watch(&mut writer, shared, interval);
                return;
            }
        }
    }
}

/// Stream telemetry snapshots: one envelope immediately, then one per
/// interval. Ends when the client disconnects (write fails) or the
/// daemon stops; the interval sleep is sliced so shutdown stays fast.
fn run_watch(writer: &mut TcpStream, shared: &Shared, interval: Duration) {
    loop {
        if write_line(writer, &shared.metrics_response()).is_err() {
            return;
        }
        let deadline = Instant::now() + interval;
        loop {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
        }
    }
}

fn write_line(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn request_name(request: &Request) -> &'static str {
    match request {
        Request::Schema { .. } => "schema",
        Request::Profile { .. } => "profile",
        Request::Explain { .. } => "explain",
        Request::Health => "health",
        Request::Diff { .. } => "diff",
        Request::Metrics { .. } => "metrics",
        Request::Watch { .. } => "watch",
        Request::Shutdown => "shutdown",
    }
}
