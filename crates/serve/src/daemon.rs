//! The resident daemon: supervised source pollers, durable checkpoints,
//! the registry publisher, and the TCP protocol listener.

use crate::checkpoint::{self, Checkpointer};
use crate::fold::SourceState;
use crate::protocol::{self, MetricsFormat, Request};
use crate::supervisor::{spawn_supervised, Exit, Supervised, SupervisorCells, SupervisorPolicy};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use typefuse::pipeline::DedupMode;
use typefuse::JobConfig;
use typefuse_engine::{spawn_periodic, BackgroundTask};
use typefuse_json::{RetryPolicy, TailLine, TailReader, TailStatus};
use typefuse_obs::{envelope, series_key, EventLog, JsonWriter, Level, Recorder, TelemetryHub};
use typefuse_registry::{CompatMode, MemoryRegistry, Registry, RegistryStore};

/// Sliding window over which `typefuse_source_records_per_sec` averages.
const RATE_WINDOW: Duration = Duration::from_secs(5);

/// Where a source's NDJSON bytes come from.
#[derive(Debug, Clone)]
pub enum SourceInput {
    /// A growing file or FIFO, tailed from the start.
    File(PathBuf),
    /// A TCP listener address; every accepted connection streams NDJSON
    /// into the source.
    Tcp(String),
}

/// One named NDJSON source.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// The source (and registry subject) name.
    pub name: String,
    /// Where the bytes come from.
    pub input: SourceInput,
}

/// Injected poller fault: panic the named source's poll loop.
#[derive(Debug, Clone)]
pub struct PollerPanic {
    /// The source whose poller crashes.
    pub source: String,
    /// Panic once the source's folded record count reaches this.
    pub at_records: u64,
    /// How many times to crash before behaving (so tests can observe
    /// both bounded restarts and the eventual recovery).
    pub times: u32,
}

/// Daemon-level fault injection, for the chaos tests. All fields
/// default to "no faults"; production configs never set them.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Panic a source's poll loop at a record count, N times.
    pub poller_panic: Option<PollerPanic>,
    /// Fail this many checkpoint writes with an injected I/O error
    /// (each failed write is retried on the next checkpoint tick).
    pub checkpoint_write_failures: u32,
}

/// Daemon configuration. The ingest knobs (error policy, parser
/// limits, fuse configuration, dedup mode, recorder) come from the same
/// [`JobConfig`] the batch pipeline uses — one configuration surface
/// for batch and resident alike.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Protocol listener address (use port 0 for an ephemeral port).
    pub listen: String,
    /// How often each source is polled for new bytes.
    pub poll_interval: Duration,
    /// Shared ingest configuration.
    pub job: JobConfig,
    /// On-disk registry log; `None` keeps snapshots in memory.
    pub registry_path: Option<PathBuf>,
    /// Compatibility gate applied to every published snapshot.
    pub compat: CompatMode,
    /// The sources to fold.
    pub sources: Vec<SourceSpec>,
    /// Tee every accepted event to this JSONL file.
    pub log_sink: Option<PathBuf>,
    /// Minimum event level retained by the event log.
    pub log_level: Level,
    /// How many events the in-memory ring retains.
    pub event_capacity: usize,
    /// Open a Chrome-trace span per poll fold and protocol request.
    /// Off by default: a resident daemon would grow the trace buffer
    /// without bound; the CLI enables it only under `--trace-json`.
    pub trace_spans: bool,
    /// Persist per-source checkpoints under this directory and resume
    /// from them at startup; `None` disables durability.
    pub checkpoint_dir: Option<PathBuf>,
    /// How often dirty sources are checkpointed.
    pub checkpoint_interval: Duration,
    /// Concurrent protocol sessions beyond which new connections are
    /// rejected with an error envelope.
    pub max_sessions: usize,
    /// Close a session that has not sent a request for this long;
    /// `None` keeps idle sessions open forever.
    pub session_idle: Option<Duration>,
    /// Write timeout on session sockets, bounding how long a slow or
    /// stalled client can pin a session (or watch) thread.
    pub write_timeout: Option<Duration>,
    /// Poller restart/backoff/breaker thresholds.
    pub supervisor: SupervisorPolicy,
    /// Fault injection (tests only).
    pub chaos: ChaosConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            poll_interval: Duration::from_millis(50),
            job: JobConfig::new(),
            registry_path: None,
            compat: CompatMode::None,
            sources: Vec::new(),
            log_sink: None,
            log_level: Level::Info,
            event_capacity: 1024,
            trace_spans: false,
            checkpoint_dir: None,
            checkpoint_interval: Duration::from_millis(1000),
            max_sessions: 256,
            session_idle: None,
            write_timeout: Some(Duration::from_secs(10)),
            supervisor: SupervisorPolicy::default(),
            chaos: ChaosConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The default configuration: loopback ephemeral port, 50 ms polls,
    /// in-memory registry, no sources.
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// Set the protocol listener address.
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = addr.into();
        self
    }

    /// Set the source poll interval.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Set the shared ingest configuration.
    pub fn job(mut self, job: JobConfig) -> Self {
        self.job = job;
        self
    }

    /// Persist snapshots to an on-disk registry log.
    pub fn registry(mut self, path: impl Into<PathBuf>) -> Self {
        self.registry_path = Some(path.into());
        self
    }

    /// Gate snapshot publishes with a compatibility mode.
    pub fn compat(mut self, mode: CompatMode) -> Self {
        self.compat = mode;
        self
    }

    /// Watch a growing NDJSON file (or FIFO) as a named source.
    pub fn watch_file(mut self, name: impl Into<String>, path: impl Into<PathBuf>) -> Self {
        self.sources.push(SourceSpec {
            name: name.into(),
            input: SourceInput::File(path.into()),
        });
        self
    }

    /// Listen on `addr` for NDJSON-producing TCP connections as a
    /// named source.
    pub fn tcp_source(mut self, name: impl Into<String>, addr: impl Into<String>) -> Self {
        self.sources.push(SourceSpec {
            name: name.into(),
            input: SourceInput::Tcp(addr.into()),
        });
        self
    }

    /// Tee every accepted event to `path` as JSONL.
    pub fn log_sink(mut self, path: impl Into<PathBuf>) -> Self {
        self.log_sink = Some(path.into());
        self
    }

    /// Set the minimum retained event level.
    pub fn log_level(mut self, level: Level) -> Self {
        self.log_level = level;
        self
    }

    /// Set how many events the in-memory ring retains.
    pub fn event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Open Chrome-trace spans for poll folds and protocol requests.
    pub fn trace_spans(mut self, on: bool) -> Self {
        self.trace_spans = on;
        self
    }

    /// Persist per-source checkpoints under `dir` and resume from them.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Set how often dirty sources are checkpointed.
    pub fn checkpoint_interval(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Cap concurrent protocol sessions.
    pub fn max_sessions(mut self, cap: usize) -> Self {
        self.max_sessions = cap;
        self
    }

    /// Close sessions idle for longer than `timeout`.
    pub fn session_idle_timeout(mut self, timeout: Duration) -> Self {
        self.session_idle = Some(timeout);
        self
    }

    /// Bound how long a write to a slow client may block.
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = Some(timeout);
        self
    }

    /// Set poller restart/backoff/breaker thresholds.
    pub fn supervisor(mut self, policy: SupervisorPolicy) -> Self {
        self.supervisor = policy;
        self
    }

    /// Inject daemon-level faults (tests only).
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }
}

/// Shared daemon state: protocol sessions read it, pollers write it.
struct Shared {
    stop: Arc<AtomicBool>,
    started: Instant,
    recorder: Recorder,
    hub: TelemetryHub,
    events: EventLog,
    trace_spans: bool,
    compat: CompatMode,
    max_sessions: usize,
    session_idle: Option<Duration>,
    write_timeout: Option<Duration>,
    sources: BTreeMap<String, Arc<Mutex<SourceState>>>,
    registry: Mutex<Box<dyn RegistryStore + Send>>,
}

/// How the session loop delivers a response: one envelope, or a
/// telemetry stream (the `watch` op) that keeps writing until the
/// client disconnects or the daemon stops.
enum Reply {
    One(String),
    Watch { interval: Duration },
}

impl Shared {
    fn source(&self, name: &str) -> Result<&Arc<Mutex<SourceState>>, String> {
        self.sources.get(name).ok_or_else(|| {
            let known: Vec<&str> = self.sources.keys().map(String::as_str).collect();
            format!("unknown source `{name}` (known: {})", known.join(", "))
        })
    }

    /// Route one parsed request to its reply.
    fn respond(&self, request: &Request) -> Reply {
        let result = match request {
            Request::Schema { source } => self.source(source).map(|s| {
                protocol::schema_response(
                    &s.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
                )
            }),
            Request::Profile { source } => self.source(source).map(|s| {
                protocol::profile_response(
                    &s.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
                )
            }),
            Request::Explain { source, path } => self.source(source).and_then(|s| {
                protocol::explain_response(
                    &s.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
                    path,
                )
            }),
            Request::Health => Ok(self.health_response()),
            Request::Diff { source, from, to } => self.source(source).and_then(|_| {
                let registry = self
                    .registry
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                registry
                    .changes(source, *from, *to)
                    .map(|changes| protocol::diff_response(source, *from, *to, &changes))
                    .map_err(|e| e.to_string())
            }),
            Request::Metrics { format } => Ok(match format {
                MetricsFormat::Json => self.metrics_response(),
                MetricsFormat::Prometheus => self.prometheus_response(),
            }),
            Request::Watch { interval_ms } => {
                return Reply::Watch {
                    interval: Duration::from_millis(*interval_ms),
                }
            }
            Request::Shutdown => {
                self.stop.store(true, Ordering::Release);
                Ok(envelope("ok", "{\"stopping\":true}"))
            }
        };
        Reply::One(result.unwrap_or_else(|message| protocol::error_response(&message)))
    }

    fn health_response(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("uptime_ms");
        w.number(self.started.elapsed().as_millis() as u64);
        w.key("records");
        w.number(
            self.sources
                .values()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .records()
                })
                .sum::<u64>(),
        );
        w.key("sources");
        w.begin_array();
        for state in self.sources.values() {
            protocol::write_source_health(
                &mut w,
                &state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
        }
        w.end_array();
        w.end_object();
        envelope("health", &w.finish())
    }

    /// Refresh the daemon-level series a sample should carry: uptime
    /// (approx — wall clock) and per-level event counts (deterministic
    /// for a fixed fold sequence, so they live in `gauges`).
    fn refresh_daemon_series(&self) {
        self.hub
            .approx_gauge("typefuse_uptime_ms")
            .set(self.started.elapsed().as_millis() as u64);
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            self.hub
                .gauge(series_key("typefuse_events", &[("level", level.name())]))
                .set(self.events.count(level));
        }
    }

    /// One `telemetry` snapshot envelope.
    fn metrics_response(&self) -> String {
        self.refresh_daemon_series();
        envelope("telemetry", &self.hub.sample().to_json())
    }

    /// One `prometheus` envelope: the text exposition 0.0.4 document as
    /// a JSON string payload, so the response stays one line.
    fn prometheus_response(&self) -> String {
        self.refresh_daemon_series();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("content_type");
        w.string("text/plain; version=0.0.4");
        w.key("text");
        w.string(&self.hub.sample().to_prometheus());
        w.end_object();
        envelope("prometheus", &w.finish())
    }
}

/// The tailing end of one source, owned by its poller incarnation.
enum SourceTail {
    /// A file that may not exist yet; reopened each tick until it does.
    PendingFile(PathBuf),
    /// An open growing file / FIFO, keeping the path so the poller can
    /// stat it for tail lag and rotation detection.
    File(PathBuf, TailReader<std::fs::File>),
    /// A TCP listener plus every live producer connection.
    Tcp {
        listener: TcpListener,
        conns: Vec<TailReader<TcpStream>>,
        /// Bytes consumed by connections that have since closed.
        closed_bytes: u64,
    },
}

/// A running `typefuse serve` daemon.
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<Shared>,
    pollers: Vec<Supervised>,
    checkpointer: Option<Arc<Mutex<Checkpointer>>>,
    checkpoint_task: Option<BackgroundTask>,
    accept: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    recorder: Recorder,
}

impl Daemon {
    /// Bind the protocol listener, open the registry, load per-source
    /// checkpoints (when a checkpoint dir is configured), and start one
    /// supervised poller per source. Returns once everything is
    /// listening.
    pub fn start(config: ServeConfig) -> std::io::Result<Daemon> {
        let recorder = config.job.recorder.clone();
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let events = match &config.log_sink {
            Some(path) => EventLog::with_sink(config.event_capacity, config.log_level, path)
                .map_err(|e| {
                    std::io::Error::other(format!("cannot open event log sink {path:?}: {e}"))
                })?,
            None => EventLog::new(config.event_capacity, config.log_level),
        };
        events.log(
            Level::Info,
            "daemon",
            "boot",
            format!("listening on {addr}"),
        );

        let registry: Box<dyn RegistryStore + Send> = match &config.registry_path {
            Some(path) => {
                let registry = Registry::open(path).map_err(|e| {
                    std::io::Error::other(format!("cannot open registry {path:?}: {e}"))
                })?;
                if let Some(warning) = registry.recovered() {
                    recorder.add("serve.registry_recovered", 1);
                    events.log(Level::Warn, "daemon", "registry", warning.to_string());
                }
                Box::new(registry)
            }
            None => Box::new(MemoryRegistry::new()),
        };

        let hub = TelemetryHub::new();

        let dedup = match config.job.dedup {
            DedupMode::On | DedupMode::Auto => true,
            DedupMode::Off => false,
        };
        if let Some(dir) = &config.checkpoint_dir {
            std::fs::create_dir_all(dir)?;
        }
        let mut sources = BTreeMap::new();
        for spec in &config.sources {
            let state = load_or_new_state(spec, &config, dedup, &recorder, &events);
            if sources
                .insert(spec.name.clone(), Arc::new(Mutex::new(state)))
                .is_some()
            {
                return Err(std::io::Error::other(format!(
                    "duplicate source name `{}`",
                    spec.name
                )));
            }
        }

        let shared = Arc::new(Shared {
            stop: Arc::clone(&stop),
            started: Instant::now(),
            recorder: recorder.clone(),
            hub,
            events,
            trace_spans: config.trace_spans,
            compat: config.compat,
            max_sessions: config.max_sessions,
            session_idle: config.session_idle,
            write_timeout: config.write_timeout,
            sources,
            registry: Mutex::new(registry),
        });

        let mut pollers = Vec::new();
        for spec in &config.sources {
            pollers.push(spawn_source_poller(
                spec,
                &config,
                Arc::clone(&shared),
                Arc::clone(&stop),
            )?);
        }

        let mut checkpointer = None;
        let mut checkpoint_task = None;
        if let Some(dir) = &config.checkpoint_dir {
            let cp = Arc::new(Mutex::new(Checkpointer::new(
                dir,
                shared
                    .sources
                    .iter()
                    .map(|(name, state)| (name.clone(), Arc::clone(state))),
                &shared.hub,
                recorder.clone(),
                shared.events.clone(),
                config.chaos.checkpoint_write_failures,
            )));
            let tick_cp = Arc::clone(&cp);
            checkpoint_task = Some(spawn_periodic(
                "checkpoint",
                config.checkpoint_interval,
                Arc::clone(&stop),
                recorder.clone(),
                move || tick_cp.lock().expect("checkpointer lock").tick(),
            ));
            checkpointer = Some(cp);
        }

        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = spawn_accept_loop(
            listener,
            Arc::clone(&shared),
            Arc::clone(&stop),
            Arc::clone(&sessions),
        );

        Ok(Daemon {
            addr,
            stop,
            shared,
            pollers,
            checkpointer,
            checkpoint_task,
            accept: Some(accept),
            sessions,
            recorder,
        })
    }

    /// The bound protocol address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's shared recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The current `health` envelope, rendered without a protocol
    /// round-trip — the same payload a connected client would get.
    pub fn health_json(&self) -> String {
        self.shared.health_response()
    }

    /// The current `telemetry` snapshot envelope, rendered without a
    /// protocol round-trip (samples the hub: bumps the version).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics_response()
    }

    /// The daemon's live telemetry hub.
    pub fn hub(&self) -> TelemetryHub {
        self.shared.hub.clone()
    }

    /// The daemon's structured event log.
    pub fn events(&self) -> EventLog {
        self.shared.events.clone()
    }

    /// Whether a stop has been requested (by [`Daemon::stop`] or a
    /// protocol `shutdown`).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Request a stop without waiting.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Block until a stop is requested.
    pub fn wait(&self) {
        while !self.stopping() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stop and join every thread: pollers, the checkpointer (with a
    /// final compacting checkpoint), the accept loop, and all protocol
    /// sessions.
    pub fn shutdown(mut self) {
        self.stop();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.sessions.lock().expect("sessions lock"));
        for handle in handles {
            let _ = handle.join();
        }
        for poller in self.pollers.drain(..) {
            poller.join();
        }
        if let Some(task) = self.checkpoint_task.take() {
            task.join();
        }
        if let Some(cp) = self.checkpointer.take() {
            cp.lock().expect("checkpointer lock").final_sync();
        }
    }
}

/// Build a source's state: resume from its checkpoint when one is
/// configured and loadable, start fresh otherwise. Never fails — a
/// corrupt or unusable checkpoint degrades to a cold start with a
/// warning, because refusing to serve is the worse failure.
fn load_or_new_state(
    spec: &SourceSpec,
    config: &ServeConfig,
    dedup: bool,
    recorder: &Recorder,
    events: &EventLog,
) -> SourceState {
    let fresh = || {
        SourceState::new(
            &spec.name,
            dedup,
            config.job.map_path,
            config.job.fuse_config,
            config.job.parser_options.clone(),
            config.job.error_policy.clone(),
            recorder.clone(),
            events.clone(),
        )
    };
    let Some(dir) = &config.checkpoint_dir else {
        return fresh();
    };
    let path = checkpoint::checkpoint_path(dir, &spec.name);
    match checkpoint::load(&path) {
        Ok(Some(loaded)) => {
            if loaded.torn {
                recorder.add("serve.checkpoint_torn", 1);
                events.log(
                    Level::Warn,
                    &spec.name,
                    "checkpoint",
                    "torn checkpoint tail: resuming from the last good frame",
                );
            }
            match SourceState::restore(
                &spec.name,
                dedup,
                config.job.map_path,
                config.job.fuse_config,
                config.job.parser_options.clone(),
                config.job.error_policy.clone(),
                recorder.clone(),
                events.clone(),
                &loaded.payload,
            ) {
                Ok(state) => {
                    recorder.add("serve.checkpoint_resumed", 1);
                    events.log(
                        Level::Info,
                        &spec.name,
                        "checkpoint",
                        format!(
                            "resumed from checkpoint: {} records, line {}, offset {}",
                            state.records(),
                            state.lines(),
                            state.tail_offset
                        ),
                    );
                    state
                }
                Err(e) => {
                    events.log(
                        Level::Warn,
                        &spec.name,
                        "checkpoint",
                        format!("unusable checkpoint ({e}); starting fresh from byte 0"),
                    );
                    fresh()
                }
            }
        }
        Ok(None) => {
            if path.exists() {
                recorder.add("serve.checkpoint_torn", 1);
                events.log(
                    Level::Warn,
                    &spec.name,
                    "checkpoint",
                    "checkpoint file has no valid frame; starting fresh from byte 0",
                );
            }
            fresh()
        }
        Err(e) => {
            events.log(
                Level::Warn,
                &spec.name,
                "checkpoint",
                format!("cannot read checkpoint: {e}; starting fresh from byte 0"),
            );
            fresh()
        }
    }
}

/// Open a file source honoring the tail-resume position in `state`:
/// seek to the remembered offset and restore the carried partial line.
/// A file shorter than the remembered offset was rotated or truncated
/// out from under us — reset to byte 0 with a warning (the fused
/// schema is kept; fusion is idempotent, so re-reading a recreated
/// file only re-confirms it).
fn open_file_tail(
    path: &Path,
    state: &Arc<Mutex<SourceState>>,
    retry: RetryPolicy,
    max_line_bytes: Option<usize>,
    recorder: &Recorder,
    events: &EventLog,
) -> std::io::Result<SourceTail> {
    let len = match std::fs::metadata(path) {
        Ok(metadata) => metadata.len(),
        // Not-yet-created files are watched, not fatal: keep trying.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(SourceTail::PendingFile(path.to_path_buf()))
        }
        Err(e) => return Err(e),
    };
    let (offset, pending, overflow, lines) = {
        let mut state = state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if len < state.tail_offset {
            recorder.add("serve.rotations", 1);
            events.log(
                Level::Warn,
                &state.name,
                "ingest",
                format!(
                    "source file shrank below the resume offset ({len} < {}): \
                     rotation assumed, re-reading from byte 0",
                    state.tail_offset
                ),
            );
            state.sync_tail(0, &[], false);
        }
        (
            state.tail_offset,
            state.tail_pending.clone(),
            state.tail_pending_overflow,
            state.lines(),
        )
    };
    let mut file = std::fs::File::open(path)?;
    if offset > 0 {
        file.seek(SeekFrom::Start(offset))?;
    }
    let mut tail = TailReader::new(file)
        .with_retry(retry)
        .with_recorder(recorder.clone())
        .with_resume_state(pending, overflow, offset, lines);
    if let Some(cap) = max_line_bytes {
        tail = tail.with_max_line_bytes(cap);
    }
    Ok(SourceTail::File(path.to_path_buf(), tail))
}

fn build_tail(
    input: &SourceInput,
    state: &Arc<Mutex<SourceState>>,
    retry: RetryPolicy,
    max_line_bytes: Option<usize>,
    recorder: &Recorder,
    events: &EventLog,
) -> std::io::Result<SourceTail> {
    match input {
        SourceInput::File(path) => {
            open_file_tail(path, state, retry, max_line_bytes, recorder, events)
        }
        SourceInput::Tcp(addr) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            Ok(SourceTail::Tcp {
                listener,
                conns: Vec::new(),
                closed_bytes: 0,
            })
        }
    }
}

/// Spawn the supervised poller for one source. Each incarnation
/// reopens the input from the shared state's resume position, folds
/// new lines, mirrors the tail position back into the state (for the
/// checkpointer), publishes snapshots and records drift. A crash —
/// fatal read error or a panic anywhere in the loop — ends the
/// incarnation and the supervisor restarts it with backoff; repeated
/// crashes trip the per-source breaker.
fn spawn_source_poller(
    spec: &SourceSpec,
    config: &ServeConfig,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<Supervised> {
    let recorder = shared.recorder.clone();
    let events = shared.events.clone();
    let retry = config.job.retry;
    let max_line_bytes = config.job.max_line_bytes;
    let state = Arc::clone(shared.source(&spec.name).expect("source registered"));
    let compat = shared.compat;
    let poll_recorder = recorder.clone();
    let name = spec.name.clone();
    let trace_spans = shared.trace_spans;
    let poll_interval = config.poll_interval;

    // Hot-path telemetry handles, hoisted out of the poll loop.
    let source_series = |metric: &str| series_key(metric, &[("source", &spec.name)]);
    let m_records = shared.hub.counter(source_series("typefuse_source_records"));
    let m_skipped = shared.hub.gauge(source_series("typefuse_source_skipped"));
    let m_quarantined = shared
        .hub
        .gauge(source_series("typefuse_source_quarantined"));
    let m_offset = shared
        .hub
        .gauge(source_series("typefuse_source_offset_bytes"));
    let m_lag = shared.hub.gauge(source_series("typefuse_source_lag_bytes"));
    let m_shapes = shared
        .hub
        .gauge(source_series("typefuse_source_distinct_shapes"));
    let m_version = shared.hub.gauge(source_series("typefuse_source_version"));
    let m_shape_hits = shared
        .hub
        .gauge(source_series("typefuse_source_shape_hits"));
    let m_shape_misses = shared
        .hub
        .gauge(source_series("typefuse_source_shape_misses"));
    let m_rate = shared
        .hub
        .approx_gauge(source_series("typefuse_source_records_per_sec"));
    let cells = SupervisorCells {
        breaker: shared.hub.gauge(source_series("typefuse_source_breaker")),
        restarts: shared
            .hub
            .counter(source_series("typefuse_source_restarts")),
        total_restarts: shared.hub.counter("typefuse_supervisor_restarts_total"),
    };
    let mut window: VecDeque<(Instant, u64)> = VecDeque::new();

    // Probe the input once so a misconfigured source (unbindable TCP
    // address, unreadable file) still fails `Daemon::start`.
    let mut initial = Some(build_tail(
        &spec.input,
        &state,
        retry,
        max_line_bytes,
        &recorder,
        &events,
    )?);

    let chaos = config
        .chaos
        .poller_panic
        .clone()
        .filter(|p| p.source == spec.name);
    let chaos_budget = Arc::new(AtomicU32::new(chaos.as_ref().map_or(0, |p| p.times)));

    let input = spec.input.clone();
    let group_stop = Arc::clone(&stop);
    let incarnation_shared = Arc::clone(&shared);
    let incarnation_events = events.clone();
    let trip_state = Arc::clone(&state);

    let incarnation = move |own: &AtomicBool| -> Exit {
        let stopped = || group_stop.load(Ordering::Acquire) || own.load(Ordering::Acquire);
        let mut tail = match initial.take() {
            Some(tail) => tail,
            None => match build_tail(
                &input,
                &state,
                retry,
                max_line_bytes,
                &poll_recorder,
                &incarnation_events,
            ) {
                Ok(tail) => tail,
                Err(e) => return Exit::Crash(format!("cannot reopen source: {e}")),
            },
        };
        // Re-publish a restored schema so a fresh (in-memory) registry
        // sees it before any new record arrives; idempotent when the
        // registry already holds it.
        {
            let mut state = state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if state.records() > 0 && state.is_active() {
                let mut registry = incarnation_shared
                    .registry
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state.publish(registry.as_mut(), compat);
            }
        }
        let mut last_synced_offset = u64::MAX;
        loop {
            if stopped() {
                return Exit::Stop;
            }

            // Rotation check: the file shrinking below what we already
            // read means it was replaced or truncated — reopen at 0.
            let mut file_len = None;
            if let SourceTail::File(path, reader) = &tail {
                let len = std::fs::metadata(path).map(|m| m.len()).ok();
                file_len = len;
                if len.is_some_and(|len| len < reader.bytes_read()) {
                    poll_recorder.add("serve.rotations", 1);
                    incarnation_events.log(
                        Level::Warn,
                        &name,
                        "ingest",
                        format!(
                            "source file shrank ({} < {}): rotation assumed, \
                             re-reading from byte 0",
                            len.unwrap_or(0),
                            reader.bytes_read()
                        ),
                    );
                    {
                        let mut state = state
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        state.sync_tail(0, &[], false);
                    }
                    let path = path.clone();
                    tail = match open_file_tail(
                        &path,
                        &state,
                        retry,
                        max_line_bytes,
                        &poll_recorder,
                        &incarnation_events,
                    ) {
                        Ok(tail) => tail,
                        Err(e) => return Exit::Crash(format!("cannot reopen rotated file: {e}")),
                    };
                    last_synced_offset = u64::MAX;
                    file_len = None;
                }
            }

            let mut lines: Vec<TailLine> = Vec::new();
            match &mut tail {
                SourceTail::PendingFile(path) => {
                    let path = path.clone();
                    match open_file_tail(
                        &path,
                        &state,
                        retry,
                        max_line_bytes,
                        &poll_recorder,
                        &incarnation_events,
                    ) {
                        Ok(opened) => tail = opened,
                        Err(e) => return Exit::Crash(format!("cannot open source: {e}")),
                    }
                    sliced_sleep(poll_interval, &stopped);
                    continue;
                }
                SourceTail::File(_, reader) => {
                    if let Err(e) = reader.poll(&mut lines) {
                        return Exit::Crash(format!("read error: {e}"));
                    }
                }
                SourceTail::Tcp {
                    listener,
                    conns,
                    closed_bytes,
                } => {
                    // Adopt any new producer connections.
                    loop {
                        match listener.accept() {
                            Ok((conn, _)) => {
                                if conn.set_nonblocking(true).is_ok() {
                                    poll_recorder.add("ingest.connections", 1);
                                    conns.push(make_file_tail_tcp(
                                        conn,
                                        &poll_recorder,
                                        retry,
                                        max_line_bytes,
                                    ));
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(_) => break,
                        }
                    }
                    conns.retain_mut(|conn| match conn.poll(&mut lines) {
                        Ok(TailStatus::Idle) => true,
                        Ok(TailStatus::Closed) => {
                            // Flush an unterminated final record.
                            if let Some(last) = conn.take_pending() {
                                lines.push(last);
                            }
                            *closed_bytes += conn.bytes_read();
                            false
                        }
                        Err(_) => {
                            *closed_bytes += conn.bytes_read();
                            false
                        }
                    });
                }
            }

            // Tail position: how far we've read and how far behind the
            // input we are (files only — a TCP source has no length).
            match &tail {
                SourceTail::PendingFile(_) => {}
                SourceTail::File(_, reader) => {
                    let offset = reader.bytes_read();
                    m_offset.set(offset);
                    m_lag.set(file_len.unwrap_or(offset).saturating_sub(offset));
                }
                SourceTail::Tcp {
                    conns,
                    closed_bytes,
                    ..
                } => {
                    m_offset.set(closed_bytes + conns.iter().map(|c| c.bytes_read()).sum::<u64>());
                }
            }

            let absorbed = if lines.is_empty() {
                // No complete line, but the reader may still have
                // consumed bytes into its partial-line carry — keep the
                // checkpointable position current.
                if let SourceTail::File(_, reader) = &tail {
                    if reader.bytes_read() != last_synced_offset {
                        let mut state = state
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        state.sync_tail(
                            reader.bytes_read(),
                            reader.pending(),
                            reader.pending_overflow(),
                        );
                        last_synced_offset = reader.bytes_read();
                    }
                }
                0
            } else {
                let mut state = state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let _span = trace_spans.then(|| poll_recorder.span(format!("serve.fold.{name}")));
                let absorbed = state.fold_batch(&lines);
                // Pair the folded schema with the exact tail position
                // it covers, under the same lock the checkpointer
                // serializes under.
                match &tail {
                    SourceTail::File(_, reader) => {
                        state.sync_tail(
                            reader.bytes_read(),
                            reader.pending(),
                            reader.pending_overflow(),
                        );
                        last_synced_offset = reader.bytes_read();
                    }
                    SourceTail::Tcp { .. } => state.mark_dirty(),
                    SourceTail::PendingFile(_) => {}
                }
                if absorbed > 0 {
                    let mut registry = incarnation_shared
                        .registry
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state.publish(registry.as_mut(), compat);
                }
                m_records.add(absorbed);
                m_skipped.set(state.report.skipped());
                m_quarantined.set(state.quarantined);
                m_shapes.set(state.distinct_shapes());
                m_version.set(state.version.unwrap_or(0));
                m_shape_hits.set(state.shape_hits());
                m_shape_misses.set(state.shape_misses());
                if !state.is_active() {
                    return Exit::Stop;
                }
                absorbed
            };

            // Fault injection: panic once the folded record count
            // reaches the trigger. Checked outside the state lock (so
            // the mutex is never poisoned by the injected crash) and
            // against the *live* count, so an input that keeps the
            // trigger satisfied re-crashes each incarnation until the
            // budget drains — which is how the breaker tests exercise
            // repeated failures.
            if let Some(panic_at) = &chaos {
                if chaos_budget.load(Ordering::Acquire) > 0
                    && state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .records()
                        >= panic_at.at_records
                {
                    chaos_budget.fetch_sub(1, Ordering::AcqRel);
                    panic!(
                        "chaos: injected poller panic at record {}",
                        panic_at.at_records
                    );
                }
            }

            // Sliding-window throughput: absorbed records over the last
            // RATE_WINDOW, decayed even on idle ticks.
            let now = Instant::now();
            if absorbed > 0 {
                window.push_back((now, absorbed));
            }
            while window
                .front()
                .is_some_and(|(at, _)| now.duration_since(*at) > RATE_WINDOW)
            {
                window.pop_front();
            }
            let in_window: u64 = window.iter().map(|(_, n)| n).sum();
            m_rate.set(in_window / RATE_WINDOW.as_secs());

            sliced_sleep(poll_interval, &stopped);
        }
    };

    Ok(spawn_supervised(
        &spec.name,
        config.supervisor,
        stop,
        recorder,
        events,
        cells,
        move |alert| {
            trip_state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .fail(alert);
        },
        incarnation,
    ))
}

/// Sleep `interval` in small slices so a stop request interrupts the
/// wait promptly.
fn sliced_sleep(interval: Duration, stopped: &impl Fn() -> bool) {
    let mut remaining = interval;
    let slice = Duration::from_millis(5);
    while !remaining.is_zero() && !stopped() {
        let nap = remaining.min(slice);
        std::thread::sleep(nap);
        remaining = remaining.saturating_sub(nap);
    }
}

fn make_file_tail_tcp(
    conn: TcpStream,
    recorder: &Recorder,
    retry: RetryPolicy,
    max_line_bytes: Option<usize>,
) -> TailReader<TcpStream> {
    let mut tail = TailReader::new(conn)
        .with_retry(retry)
        .with_recorder(recorder.clone())
        .close_on_eof();
    if let Some(cap) = max_line_bytes {
        tail = tail.with_max_line_bytes(cap);
    }
    tail
}

/// Accept protocol connections until stopped; each session runs on its
/// own thread with panic isolation. The session cap bounds how many
/// concurrent clients can pin threads; beyond it a connection gets one
/// error envelope and is closed.
fn spawn_accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    let m_sessions = shared.hub.counter("typefuse_sessions_total");
    let m_rejected = shared.hub.counter("typefuse_sessions_rejected_total");
    std::thread::Builder::new()
        .name("serve-accept".to_string())
        .spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let (mut stream, _) = match listener.accept() {
                    Ok(accepted) => accepted,
                    Err(_) => continue,
                };
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let _ = stream.set_write_timeout(shared.write_timeout);
                let at_capacity = {
                    let mut sessions = sessions.lock().expect("sessions lock");
                    // Reap finished sessions so the vec stays bounded.
                    sessions.retain(|h| !h.is_finished());
                    sessions.len() >= shared.max_sessions
                };
                if at_capacity {
                    shared.recorder.add("serve.sessions_rejected", 1);
                    m_rejected.add(1);
                    shared.events.log(
                        Level::Warn,
                        "daemon",
                        "session",
                        format!(
                            "session limit reached ({}); rejecting connection",
                            shared.max_sessions
                        ),
                    );
                    let _ = write_line(
                        &mut stream,
                        &protocol::error_response(&format!(
                            "session limit reached ({})",
                            shared.max_sessions
                        )),
                    );
                    continue;
                }
                shared.recorder.add("serve.sessions", 1);
                m_sessions.add(1);
                let session_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("serve-session".to_string())
                    .spawn(move || {
                        let recorder = session_shared.recorder.clone();
                        let events = session_shared.events.clone();
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            run_session(stream, &session_shared)
                        }));
                        if outcome.is_err() {
                            recorder.add("serve.session_panics", 1);
                            events.log(
                                Level::Error,
                                "session",
                                "request",
                                "session thread panicked; connection dropped",
                            );
                        }
                    })
                    .expect("spawn session thread");
                let mut sessions = sessions.lock().expect("sessions lock");
                sessions.push(handle);
            }
        })
        .expect("spawn accept thread")
}

/// One protocol session: read request lines, write response envelopes.
/// The read timeout keeps the thread responsive to daemon shutdown and
/// drives the idle-session timeout. A `watch` request turns the
/// session into a telemetry stream: one snapshot envelope per interval
/// until the client disconnects or the daemon stops.
fn run_session(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let recorder = shared.recorder.clone();
    let m_requests = shared.hub.counter("typefuse_requests_total");
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut last_request = Instant::now();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if shared
                    .session_idle
                    .is_some_and(|limit| last_request.elapsed() >= limit)
                {
                    recorder.add("serve.sessions_idle_closed", 1);
                    let _ = write_line(
                        &mut writer,
                        &protocol::error_response("session idle timeout; closing"),
                    );
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        last_request = Instant::now();
        recorder.add("serve.requests", 1);
        m_requests.add(1);
        recorder.record("serve.request_bytes", trimmed.len() as u64);
        let started = Instant::now();
        let reply = {
            let _span = shared.trace_spans.then(|| recorder.span("serve.request"));
            match protocol::parse_request(trimmed) {
                Ok(request) => {
                    recorder.add(&format!("serve.requests.{}", request_name(&request)), 1);
                    shared.respond(&request)
                }
                Err(message) => {
                    recorder.add("serve.requests.invalid", 1);
                    Reply::One(protocol::error_response(&message))
                }
            }
        };
        if !shared.trace_spans {
            recorder.record_span("serve.request", started.elapsed());
        }
        match reply {
            Reply::One(response) => {
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            Reply::Watch { interval } => {
                run_watch(&mut writer, shared, interval);
                return;
            }
        }
    }
}

/// Stream telemetry snapshots: one envelope immediately, then one per
/// interval. Ends when the client disconnects (write fails) or the
/// daemon stops; the interval sleep is sliced so shutdown stays fast.
fn run_watch(writer: &mut TcpStream, shared: &Shared, interval: Duration) {
    loop {
        if write_line(writer, &shared.metrics_response()).is_err() {
            return;
        }
        let deadline = Instant::now() + interval;
        loop {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
        }
    }
}

fn write_line(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn request_name(request: &Request) -> &'static str {
    match request {
        Request::Schema { .. } => "schema",
        Request::Profile { .. } => "profile",
        Request::Explain { .. } => "explain",
        Request::Health => "health",
        Request::Diff { .. } => "diff",
        Request::Metrics { .. } => "metrics",
        Request::Watch { .. } => "watch",
        Request::Shutdown => "shutdown",
    }
}
