//! Poller supervision: restart crashed source loops with bounded
//! exponential backoff, and trip a per-source circuit breaker when the
//! crashes keep coming.
//!
//! The generic scheduler (`typefuse_engine::spawn_periodic`) swallows a
//! panicking tick and keeps ticking — the right default for periodic
//! housekeeping, but wrong for a poller whose *state* (an open tail
//! reader) may be poisoned by the crash. A supervised poller instead
//! runs as a sequence of *incarnations*: each incarnation rebuilds its
//! world from the shared [`SourceState`](crate::fold::SourceState)
//! (including the tail-resume offset, the same data a durable
//! checkpoint persists) and loops until the daemon stops or something
//! goes wrong. A crash — caught panic or fatal I/O error — ends the
//! incarnation; the supervisor logs it, backs off exponentially, and
//! starts the next one. Too many crashes inside a sliding window trip
//! the breaker: the source is parked with a visible alert and the
//! telemetry gauge pins at 2, bounding the blast radius of an input
//! that crashes every poll.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use typefuse_obs::{EventLog, Level, Recorder, TelemetryCell};

/// Breaker gauge values for `typefuse_source_breaker`.
pub(crate) const BREAKER_OK: u64 = 0;
pub(crate) const BREAKER_BACKOFF: u64 = 1;
pub(crate) const BREAKER_TRIPPED: u64 = 2;

/// Restart and breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Crashes within [`SupervisorPolicy::window`] that trip the
    /// breaker.
    pub max_failures: u32,
    /// Sliding failure window; an incarnation that outlives it also
    /// resets the backoff exponent.
    pub window: Duration,
    /// First restart delay; doubles per consecutive crash.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_failures: 5,
            window: Duration::from_secs(60),
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
        }
    }
}

/// How an incarnation ended.
pub(crate) enum Exit {
    /// Clean: the daemon is stopping, or the source parked itself
    /// (error policy). No restart.
    Stop,
    /// The incarnation hit a fatal error; the supervisor decides
    /// whether to restart.
    Crash(String),
}

/// Telemetry cells the supervisor maintains for one source.
pub(crate) struct SupervisorCells {
    /// `typefuse_source_breaker`: 0 ok, 1 backing off, 2 tripped.
    pub(crate) breaker: TelemetryCell,
    /// `typefuse_source_restarts`: restarts of this source.
    pub(crate) restarts: TelemetryCell,
    /// `typefuse_supervisor_restarts_total`: shared across sources.
    pub(crate) total_restarts: TelemetryCell,
}

/// A handle to one supervised poller thread, with the same stop/join
/// discipline as `typefuse_engine::BackgroundTask`.
pub(crate) struct Supervised {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Supervised {
    /// Stop and wait for the supervisor (and its current incarnation).
    pub(crate) fn join(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Supervised {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Run `incarnation` under supervision on a dedicated thread.
///
/// The closure receives the task's own stop flag and must return
/// promptly once it (or the shared `stop` it captured) is set. `on_trip`
/// runs once if the breaker trips — the daemon parks the source there.
#[allow(clippy::too_many_arguments)] // one call site; a builder would be noise
pub(crate) fn spawn_supervised(
    name: &str,
    policy: SupervisorPolicy,
    stop: Arc<AtomicBool>,
    recorder: Recorder,
    events: EventLog,
    cells: SupervisorCells,
    on_trip: impl FnOnce(String) + Send + 'static,
    mut incarnation: impl FnMut(&AtomicBool) -> Exit + Send + 'static,
) -> Supervised {
    let own_stop = Arc::new(AtomicBool::new(false));
    let thread_own = Arc::clone(&own_stop);
    let name = name.to_string();
    let handle = std::thread::Builder::new()
        .name(format!("sup-{name}"))
        .spawn(move || {
            let stopped = || stop.load(Ordering::Acquire) || thread_own.load(Ordering::Acquire);
            let mut failures: VecDeque<Instant> = VecDeque::new();
            let mut streak = 0u32;
            let mut on_trip = Some(on_trip);
            cells.breaker.set(BREAKER_OK);
            while !stopped() {
                let started = Instant::now();
                let outcome =
                    std::panic::catch_unwind(AssertUnwindSafe(|| incarnation(&thread_own)));
                if stopped() {
                    break;
                }
                let reason = match outcome {
                    Ok(Exit::Stop) => break,
                    Ok(Exit::Crash(reason)) => reason,
                    // `&*` so the *contents* are downcast, not the Box.
                    Err(payload) => format!("panic: {}", panic_message(&*payload)),
                };
                recorder.add("serve.poller_crashes", 1);
                let now = Instant::now();
                failures.push_back(now);
                while failures
                    .front()
                    .is_some_and(|at| now.duration_since(*at) > policy.window)
                {
                    failures.pop_front();
                }
                if failures.len() as u32 >= policy.max_failures {
                    cells.breaker.set(BREAKER_TRIPPED);
                    recorder.add("serve.breaker_trips", 1);
                    let alert = format!(
                        "circuit breaker tripped after {} crashes in {:?} (last: {reason})",
                        failures.len(),
                        policy.window
                    );
                    events.log(Level::Error, &name, "supervisor", alert.clone());
                    if let Some(trip) = on_trip.take() {
                        trip(alert);
                    }
                    break;
                }
                // A long healthy incarnation earns a fresh backoff.
                if started.elapsed() >= policy.window {
                    streak = 0;
                }
                let backoff = policy
                    .base_backoff
                    .saturating_mul(1u32 << streak.min(16))
                    .min(policy.max_backoff);
                streak += 1;
                cells.breaker.set(BREAKER_BACKOFF);
                cells.restarts.add(1);
                cells.total_restarts.add(1);
                events.log(
                    Level::Warn,
                    &name,
                    "supervisor",
                    format!("poller crashed ({reason}); restarting in {backoff:?}"),
                );
                let mut remaining = backoff;
                let slice = Duration::from_millis(5);
                while !remaining.is_zero() && !stopped() {
                    let nap = remaining.min(slice);
                    std::thread::sleep(nap);
                    remaining = remaining.saturating_sub(nap);
                }
                cells.breaker.set(BREAKER_OK);
            }
        })
        .expect("spawn supervisor thread");
    Supervised {
        stop: own_stop,
        handle: Some(handle),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use typefuse_obs::TelemetryHub;

    fn cells(hub: &TelemetryHub) -> SupervisorCells {
        SupervisorCells {
            breaker: hub.gauge("b"),
            restarts: hub.gauge("r"),
            total_restarts: hub.counter("t"),
        }
    }

    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            max_failures: 3,
            window: Duration::from_secs(60),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        }
    }

    fn wait_until(what: &str, condition: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !condition() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn gauge_value(hub: &TelemetryHub, key: &str) -> u64 {
        let sample = hub.sample();
        sample
            .gauges
            .get(key)
            .or_else(|| sample.counters.get(key))
            .copied()
            .unwrap_or(0)
    }

    #[test]
    fn crashes_restart_until_healthy() {
        let hub = TelemetryHub::new();
        let stop = Arc::new(AtomicBool::new(false));
        let crashes = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&crashes);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        let task = spawn_supervised(
            "s",
            fast_policy(),
            Arc::clone(&stop),
            Recorder::enabled(),
            EventLog::new(16, Level::Debug),
            cells(&hub),
            |_| panic!("breaker must not trip in this test"),
            move |own| {
                if c.fetch_add(1, Ordering::SeqCst) < 2 {
                    return Exit::Crash("injected".to_string());
                }
                d.store(true, Ordering::SeqCst);
                while !own.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Exit::Stop
            },
        );
        while !done.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        task.join();
        assert_eq!(crashes.load(Ordering::SeqCst), 3, "two crashes, then held");
        assert_eq!(gauge_value(&hub, "r"), 2);
        assert_eq!(gauge_value(&hub, "t"), 2);
    }

    #[test]
    fn repeated_crashes_trip_the_breaker_and_park() {
        let hub = TelemetryHub::new();
        let events = EventLog::new(16, Level::Debug);
        let tripped = Arc::new(AtomicBool::new(false));
        let t = Arc::clone(&tripped);
        let task = spawn_supervised(
            "s",
            fast_policy(),
            Arc::new(AtomicBool::new(false)),
            Recorder::enabled(),
            events.clone(),
            cells(&hub),
            move |reason| {
                assert!(reason.contains("circuit breaker tripped"), "{reason}");
                t.store(true, Ordering::SeqCst);
            },
            |_| panic!("always down"),
        );
        // The supervisor thread exits on its own after the trip; wait
        // for it rather than joining (join would request a stop and
        // could cut the crash accounting short).
        wait_until("breaker trip", || tripped.load(Ordering::SeqCst));
        task.join();
        assert!(tripped.load(Ordering::SeqCst));
        assert_eq!(gauge_value(&hub, "b"), BREAKER_TRIPPED);
        assert!(
            events
                .recent(16)
                .iter()
                .any(|e| e.level == Level::Error && e.span == "supervisor"),
            "trip is an error event"
        );
    }

    #[test]
    fn panics_are_caught_with_their_message() {
        let events = EventLog::new(16, Level::Debug);
        let hub = TelemetryHub::new();
        let policy = SupervisorPolicy {
            max_failures: 1,
            ..fast_policy()
        };
        let task = spawn_supervised(
            "s",
            policy,
            Arc::new(AtomicBool::new(false)),
            Recorder::enabled(),
            events.clone(),
            cells(&hub),
            |_| {},
            |_| panic!("record 7 poisoned the fold"),
        );
        wait_until("trip event", || {
            events
                .recent(16)
                .iter()
                .any(|e| e.message.contains("record 7 poisoned the fold"))
        });
        task.join();
        assert!(
            events
                .recent(16)
                .iter()
                .any(|e| e.message.contains("record 7 poisoned the fold")),
            "panic message surfaces: {:?}",
            events.recent(16)
        );
    }
}
