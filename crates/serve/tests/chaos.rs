//! Daemon fault-injection tests: durable checkpoints across restarts,
//! supervised poller crashes, circuit breaking, rotation, and
//! checkpoint corruption. The common claim under test: no fault short
//! of losing the data itself changes the schema the daemon serves.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use typefuse::JobConfig;
use typefuse_json::{Envelope, Value};
use typefuse_obs::{series_key, Recorder};
use typefuse_serve::{ChaosConfig, Daemon, PollerPanic, ServeConfig, SupervisorPolicy};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("typefuse-chaos-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = temp_path(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast(config: ServeConfig) -> ServeConfig {
    config
        .listen("127.0.0.1:0")
        .poll_interval(Duration::from_millis(5))
        .checkpoint_interval(Duration::from_millis(10))
}

/// A supervisor that restarts almost instantly, for tests that crash
/// pollers on purpose.
fn fast_supervisor(max_failures: u32) -> SupervisorPolicy {
    SupervisorPolicy {
        max_failures,
        window: Duration::from_secs(60),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(!response.is_empty(), "daemon closed mid-request");
        response.trim().to_string()
    }

    fn wait_for_records(&mut self, source: &str, want: i64) -> Envelope {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let text = self.request(&format!(r#"{{"op":"schema","source":"{source}"}}"#));
            let env = Envelope::expect_kind(&text, "schema").unwrap();
            let records = env.payload.get("records").and_then(Value::as_i64);
            if records == Some(want) {
                return env;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {want} records (at {records:?})"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Poll a hub series (gauge or counter) until it reaches `want`.
fn wait_series(daemon: &Daemon, key: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let sample = daemon.hub().sample();
        let got = sample
            .gauges
            .get(key)
            .or_else(|| sample.counters.get(key))
            .copied();
        if got == Some(want) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {key} == {want} (at {got:?})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn batch_schema(path: &Path) -> String {
    JobConfig::new()
        .build()
        .run_ndjson(BufReader::new(std::fs::File::open(path).unwrap()))
        .unwrap()
        .schema
        .to_string()
}

fn append(path: &Path, text: &str) {
    let mut file = std::fs::OpenOptions::new().append(true).open(path).unwrap();
    file.write_all(text.as_bytes()).unwrap();
    file.flush().unwrap();
}

#[test]
fn clean_shutdown_checkpoint_resumes_byte_identically_with_no_rereads() {
    let feed = temp_path("clean.ndjson");
    let ckpt = fresh_dir("clean-ckpt");
    std::fs::write(&feed, "{\"a\":1}\n{\"a\":2,\"b\":true}\n{\"a\":3}\n").unwrap();

    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .watch_file("events", &feed)
            .checkpoint_dir(&ckpt),
    ))
    .unwrap();
    let first = Client::connect(daemon.addr())
        .wait_for_records("events", 3)
        .payload;
    daemon.shutdown();

    // Appends land while the daemon is down.
    append(&feed, "{\"a\":4,\"c\":\"x\"}\n{\"a\":null}\n");

    // Restart with a fresh recorder: its ingest counter sees only what
    // this incarnation actually reads.
    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &feed)
            .checkpoint_dir(&ckpt),
    ))
    .unwrap();
    let mut client = Client::connect(daemon.addr());
    let resumed = client.wait_for_records("events", 5).payload;

    let served = resumed.get("schema").and_then(Value::as_str).unwrap();
    assert_eq!(served, batch_schema(&feed), "resume == uninterrupted batch");
    // The old schema was a prefix of this run, not a re-read: only the
    // two post-restart records passed through the parser.
    assert_eq!(recorder.snapshot().counters["ingest.records"], 2);
    // The restored version survived (v1 from the first run), and the
    // drift to v2 is relative to it.
    assert_eq!(first.get("version").and_then(Value::as_i64), Some(1));

    daemon.shutdown();
    std::fs::remove_file(&feed).ok();
    std::fs::remove_dir_all(&ckpt).ok();
}

#[test]
fn uncontrolled_stop_resumes_from_the_last_periodic_checkpoint() {
    let feed = temp_path("kill.ndjson");
    let ckpt = fresh_dir("kill-ckpt");
    std::fs::write(&feed, "{\"n\":1}\n{\"n\":2}\n{\"n\":3}\n").unwrap();

    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .watch_file("events", &feed)
            .checkpoint_dir(&ckpt),
    ))
    .unwrap();
    // Wait until a periodic checkpoint covers all three lines, then
    // tear the daemon down *without* shutdown(): no final compacting
    // sync runs, exactly like a crash after the last tick.
    wait_series(
        &daemon,
        &series_key("typefuse_source_checkpoint_lines", &[("source", "events")]),
        3,
    );
    daemon.stop();
    drop(daemon);

    append(&feed, "{\"n\":4,\"late\":true}\n");
    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &feed)
            .checkpoint_dir(&ckpt),
    ))
    .unwrap();
    let env = Client::connect(daemon.addr())
        .wait_for_records("events", 4)
        .payload;
    assert_eq!(
        env.get("schema").and_then(Value::as_str).unwrap(),
        batch_schema(&feed)
    );
    assert_eq!(
        recorder.snapshot().counters["ingest.records"],
        1,
        "only the post-crash append is re-read"
    );
    daemon.shutdown();
    std::fs::remove_file(&feed).ok();
    std::fs::remove_dir_all(&ckpt).ok();
}

#[test]
fn injected_poller_panic_restarts_the_poller_and_keeps_serving() {
    let feed = temp_path("panic.ndjson");
    std::fs::write(&feed, "{\"x\":1}\n{\"x\":2}\n{\"x\":3}\n").unwrap();

    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &feed)
            .supervisor(fast_supervisor(5))
            .chaos(ChaosConfig {
                poller_panic: Some(PollerPanic {
                    source: "events".to_string(),
                    at_records: 3,
                    times: 1,
                }),
                checkpoint_write_failures: 0,
            }),
    ))
    .unwrap();

    // The poller folds all three records, then the injected panic
    // kills that incarnation; the supervisor restarts it.
    wait_series(
        &daemon,
        &series_key("typefuse_source_restarts", &[("source", "events")]),
        1,
    );
    let mut client = Client::connect(daemon.addr());
    client.wait_for_records("events", 3);

    // The restarted incarnation is a working poller, not a zombie:
    // fresh appends still fold.
    append(&feed, "{\"x\":4}\n{\"x\":5,\"y\":\"z\"}\n");
    let env = client.wait_for_records("events", 5).payload;
    assert_eq!(
        env.get("schema").and_then(Value::as_str).unwrap(),
        batch_schema(&feed)
    );
    // Healthy again after the backoff: breaker gauge back to 0.
    wait_series(
        &daemon,
        &series_key("typefuse_source_breaker", &[("source", "events")]),
        0,
    );
    let snapshot = recorder.snapshot();
    assert_eq!(snapshot.counters["serve.poller_crashes"], 1);
    assert_eq!(
        daemon
            .hub()
            .sample()
            .counters
            .get("typefuse_supervisor_restarts_total")
            .copied(),
        Some(1)
    );

    daemon.shutdown();
    std::fs::remove_file(&feed).ok();
}

#[test]
fn repeated_crashes_trip_the_breaker_and_park_the_source_without_killing_the_daemon() {
    let feed = temp_path("trip.ndjson");
    std::fs::write(&feed, "{\"x\":1}\n").unwrap();

    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &feed)
            .supervisor(fast_supervisor(2))
            .chaos(ChaosConfig {
                // The trigger stays satisfied after every restart, so
                // the poller crashes until the breaker trips.
                poller_panic: Some(PollerPanic {
                    source: "events".to_string(),
                    at_records: 1,
                    times: 99,
                }),
                checkpoint_write_failures: 0,
            }),
    ))
    .unwrap();

    wait_series(
        &daemon,
        &series_key("typefuse_source_breaker", &[("source", "events")]),
        2,
    );
    // The breaker parked the source (visible in health), but the
    // daemon itself keeps answering.
    let mut client = Client::connect(daemon.addr());
    let text = client.request(r#"{"op":"health"}"#);
    let health = typefuse_json::to_string(&Envelope::expect_kind(&text, "health").unwrap().payload);
    assert!(
        health.contains("\"status\":\"failed"),
        "parked source in: {health}"
    );
    assert!(
        health.contains("circuit breaker tripped"),
        "alert in: {health}"
    );
    // The schema folded before the first crash is still served.
    let text = client.request(r#"{"op":"schema","source":"events"}"#);
    let env = Envelope::expect_kind(&text, "schema").unwrap();
    assert_eq!(env.payload.get("records").and_then(Value::as_i64), Some(1));

    let snapshot = recorder.snapshot();
    assert_eq!(snapshot.counters["serve.breaker_trips"], 1);
    assert!(snapshot.counters["serve.poller_crashes"] >= 2);
    let events = daemon.events();
    assert!(
        events
            .recent(64)
            .iter()
            .any(|e| e.span == "supervisor" && e.message.contains("circuit breaker tripped")),
        "trip alert event"
    );

    daemon.shutdown();
    std::fs::remove_file(&feed).ok();
}

#[test]
fn corrupt_and_torn_checkpoints_degrade_to_a_serving_daemon() {
    let feed = temp_path("corrupt.ndjson");
    let ckpt = fresh_dir("corrupt-ckpt");
    std::fs::write(&feed, "{\"k\":1}\n{\"k\":2}\n").unwrap();

    // Seed a valid single-frame checkpoint via a clean shutdown.
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .watch_file("events", &feed)
            .checkpoint_dir(&ckpt),
    ))
    .unwrap();
    Client::connect(daemon.addr()).wait_for_records("events", 2);
    daemon.shutdown();
    let file = std::fs::read_dir(&ckpt)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .expect("checkpoint written");

    // Torn tail: garbage appended after the good frame. The loader
    // falls back to the frame; only the new record is re-read.
    let good = std::fs::read(&file).unwrap();
    append(&file, "TFC1 torn garbage after the valid frame");
    append(&feed, "{\"k\":3}\n");
    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &feed)
            .checkpoint_dir(&ckpt),
    ))
    .unwrap();
    let env = Client::connect(daemon.addr())
        .wait_for_records("events", 3)
        .payload;
    assert_eq!(
        env.get("schema").and_then(Value::as_str).unwrap(),
        batch_schema(&feed)
    );
    let snapshot = recorder.snapshot();
    assert_eq!(snapshot.counters["serve.checkpoint_torn"], 1);
    assert_eq!(snapshot.counters["serve.checkpoint_resumed"], 1);
    assert_eq!(snapshot.counters["ingest.records"], 1, "no re-read");
    daemon.shutdown();

    // Fully corrupt file: every byte garbage. The daemon starts cold,
    // re-reads everything, and still serves the right schema.
    std::fs::write(&file, vec![0xAAu8; good.len()]).unwrap();
    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &feed)
            .checkpoint_dir(&ckpt),
    ))
    .unwrap();
    let env = Client::connect(daemon.addr())
        .wait_for_records("events", 3)
        .payload;
    assert_eq!(
        env.get("schema").and_then(Value::as_str).unwrap(),
        batch_schema(&feed)
    );
    assert_eq!(recorder.snapshot().counters["ingest.records"], 3, "cold");
    daemon.shutdown();
    std::fs::remove_file(&feed).ok();
    std::fs::remove_dir_all(&ckpt).ok();
}

#[test]
fn recreated_smaller_source_file_is_reread_from_byte_zero() {
    let feed = temp_path("rotate.ndjson");
    std::fs::write(
        &feed,
        "{\"r\":1,\"tag\":\"aaaa\"}\n{\"r\":2,\"tag\":\"bbbb\"}\n",
    )
    .unwrap();

    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &feed),
    ))
    .unwrap();
    let mut client = Client::connect(daemon.addr());
    client.wait_for_records("events", 2);

    // Rotate: same name, new (smaller) file. The poller's stat sees
    // the length fall below its offset and resets to byte 0.
    std::fs::remove_file(&feed).unwrap();
    std::fs::write(&feed, "{\"r\":3}\n").unwrap();
    client.wait_for_records("events", 3);
    assert!(recorder.snapshot().counters["serve.rotations"] >= 1);
    assert!(
        daemon
            .events()
            .recent(64)
            .iter()
            .any(|e| e.message.contains("rotation assumed")),
        "rotation warning logged"
    );

    daemon.shutdown();
    std::fs::remove_file(&feed).ok();
}

#[test]
fn injected_checkpoint_write_failures_are_retried_until_durable() {
    let feed = temp_path("ckptfail.ndjson");
    let ckpt = fresh_dir("ckptfail-ckpt");
    std::fs::write(&feed, "{\"w\":1}\n{\"w\":2}\n").unwrap();

    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &feed)
            .checkpoint_dir(&ckpt)
            .chaos(ChaosConfig {
                poller_panic: None,
                checkpoint_write_failures: 2,
            }),
    ))
    .unwrap();
    // Two ticks fail with the injected error, then the third lands.
    wait_series(
        &daemon,
        &series_key("typefuse_source_checkpoint_lines", &[("source", "events")]),
        2,
    );
    let snapshot = recorder.snapshot();
    assert_eq!(snapshot.counters["serve.checkpoint_failures"], 2);
    assert!(snapshot.counters["serve.checkpoints"] >= 1);
    assert!(
        daemon
            .events()
            .recent(64)
            .iter()
            .any(|e| e.span == "checkpoint" && e.message.contains("will retry")),
        "failure warning logged"
    );
    daemon.shutdown();

    // The eventually-durable checkpoint is a working resume point.
    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &feed)
            .checkpoint_dir(&ckpt),
    ))
    .unwrap();
    Client::connect(daemon.addr()).wait_for_records("events", 2);
    assert_eq!(recorder.snapshot().counters.get("ingest.records"), None);
    daemon.shutdown();
    std::fs::remove_file(&feed).ok();
    std::fs::remove_dir_all(&ckpt).ok();
}

#[test]
fn session_limit_rejects_and_idle_sessions_are_closed() {
    let feed = temp_path("sessions.ndjson");
    std::fs::write(&feed, "{\"s\":1}\n").unwrap();

    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .watch_file("events", &feed)
            .max_sessions(2)
            .session_idle_timeout(Duration::from_millis(300)),
    ))
    .unwrap();

    // Fill both session slots.
    let mut a = Client::connect(daemon.addr());
    a.wait_for_records("events", 1);
    let mut b = Client::connect(daemon.addr());
    b.request(r#"{"op":"health"}"#);
    // The third connection is rejected: the error envelope arrives
    // unprompted and the daemon closes the connection.
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    let env = Envelope::expect_kind(line.trim(), "error").unwrap();
    assert!(
        env.payload
            .get("message")
            .and_then(Value::as_str)
            .unwrap()
            .contains("session limit"),
        "{line}"
    );

    // Idle sessions are reaped: after the timeout both held sessions
    // are closed (each gets a parting error envelope) and a new
    // connection is accepted again. Probes racing the close may hit a
    // broken pipe or read the rejection envelope — both mean "retry".
    let try_health = |addr: std::net::SocketAddr| -> Option<String> {
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
        let mut writer = stream.try_clone().ok()?;
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"health\"}\n").ok()?;
        writer.flush().ok()?;
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        Some(line.trim().to_string())
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let accepted = try_health(daemon.addr())
            .is_some_and(|text| Envelope::expect_kind(&text, "health").is_ok());
        if accepted {
            break;
        }
        assert!(Instant::now() < deadline, "idle reaping never freed a slot");
        std::thread::sleep(Duration::from_millis(50));
    }

    daemon.shutdown();
    std::fs::remove_file(&feed).ok();
}
