//! End-to-end daemon tests: a resident `typefuse serve` on loopback,
//! fed by file appends and TCP producers, answering the line protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use typefuse::JobConfig;
use typefuse_json::{Envelope, Value};
use typefuse_obs::Recorder;
use typefuse_serve::{Daemon, ServeConfig};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("typefuse-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// One protocol session.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(!response.is_empty(), "daemon closed mid-request");
        response.trim().to_string()
    }

    /// Poll `schema` until the daemon has folded `want` records.
    fn wait_for_records(&mut self, source: &str, want: i64) -> Envelope {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let text = self.request(&format!(r#"{{"op":"schema","source":"{source}"}}"#));
            let env = Envelope::expect_kind(&text, "schema").unwrap();
            let records = env.payload.get("records").and_then(Value::as_i64);
            if records == Some(want) {
                return env;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {want} records (at {records:?})"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn fast(config: ServeConfig) -> ServeConfig {
    config
        .listen("127.0.0.1:0")
        .poll_interval(Duration::from_millis(5))
}

#[test]
fn watched_file_serves_batch_identical_schemas_and_reports_drift() {
    let path = temp_path("events.ndjson");
    let first = "{\"user\":\"ada\",\"n\":1}\n{\"user\":\"kay\",\"n\":2}\n{\"user\":null,\"n\":3}\n";
    let second =
        "{\"user\":\"lin\",\"n\":4,\"tags\":[\"a\",\"b\"]}\n{\"user\":\"tad\",\"n\":5.5}\n";
    std::fs::write(&path, first).unwrap();

    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(JobConfig::new().recorder(recorder.clone()))
            .watch_file("events", &path),
    ))
    .unwrap();
    let mut client = Client::connect(daemon.addr());

    // The pre-existing content is folded and published as version 1.
    let env = client.wait_for_records("events", 3);
    assert_eq!(env.payload.get("version").and_then(Value::as_i64), Some(1));

    // Append while the daemon is live; the tail picks it up.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    file.write_all(second.as_bytes()).unwrap();
    file.flush().unwrap();
    let env = client.wait_for_records("events", 5);
    assert_eq!(env.payload.get("version").and_then(Value::as_i64), Some(2));
    let served = env
        .payload
        .get("schema")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    // The law behind the daemon: incremental folding is byte-identical
    // to a cold batch run over all bytes.
    let batch = JobConfig::new()
        .build()
        .run_ndjson(BufReader::new(std::fs::File::open(&path).unwrap()))
        .unwrap();
    assert_eq!(served, batch.schema.to_string());

    // `diff` replays the registry changes between the two snapshots.
    let text = client.request(r#"{"op":"diff","source":"events","from":1,"to":2}"#);
    let env = Envelope::expect_kind(&text, "diff").unwrap();
    let changes = env.payload.get("changes").unwrap();
    let rendered = typefuse_json::to_string(changes);
    assert!(rendered.contains("$.tags"), "diff changes: {rendered}");

    // `explain` exposes provenance: tags first appeared at line 4.
    let text = client.request(r#"{"op":"explain","source":"events","path":"$.tags"}"#);
    let env = Envelope::expect_kind(&text, "explain").unwrap();
    assert_eq!(env.payload.get("count").and_then(Value::as_i64), Some(1));
    assert_eq!(
        env.payload.get("optional").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        env.payload.get("first_line").and_then(Value::as_i64),
        Some(4)
    );

    // `profile` is the full per-path report.
    let text = client.request(r#"{"op":"profile","source":"events"}"#);
    let env = Envelope::expect_kind(&text, "profile").unwrap();
    assert_eq!(env.payload.get("records").and_then(Value::as_i64), Some(5));

    // `health` aggregates every source, with the drift alert attached.
    let text = client.request(r#"{"op":"health"}"#);
    let env = Envelope::expect_kind(&text, "health").unwrap();
    let health = typefuse_json::to_string(&env.payload);
    assert!(health.contains("\"source\":\"events\""), "health: {health}");
    assert!(health.contains("v1→v2"), "drift alert in: {health}");

    // Bad requests get error envelopes, and the session survives them.
    let text = client.request(r#"{"op":"schema","source":"nope"}"#);
    let env = Envelope::expect_kind(&text, "error").unwrap();
    let message = env.payload.get("message").and_then(Value::as_str).unwrap();
    assert!(message.contains("unknown source"), "{message}");
    let text = client.request("not json at all");
    Envelope::expect_kind(&text, "error").unwrap();
    client.wait_for_records("events", 5);

    daemon.shutdown();
    let report = recorder.snapshot();
    assert!(report.counters["ingest.records"] >= 5);
    assert!(report.counters["serve.requests"] >= 5);
    assert_eq!(report.counters["serve.publishes"], 2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn tcp_sources_fold_producer_connections_and_shutdown_op_stops_the_daemon() {
    let daemon = Daemon::start(fast(ServeConfig::new().tcp_source("feed", "127.0.0.1:0"))).unwrap();
    // The producer address is fixed by the config, so bind a concrete
    // port for this test by asking the OS first.
    drop(daemon);
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let feed_addr = probe.local_addr().unwrap();
    drop(probe);
    let daemon = Daemon::start(fast(
        ServeConfig::new().tcp_source("feed", feed_addr.to_string()),
    ))
    .unwrap();

    // Two producers, one with an unterminated final record (flushed on
    // disconnect), one clean.
    let mut producer = TcpStream::connect(feed_addr).unwrap();
    producer
        .write_all(b"{\"id\":1}\n{\"id\":2,\"ok\":true}")
        .unwrap();
    drop(producer);
    let mut producer = TcpStream::connect(feed_addr).unwrap();
    producer.write_all(b"{\"id\":3}\n").unwrap();
    producer.flush().unwrap();

    let mut client = Client::connect(daemon.addr());
    let env = client.wait_for_records("feed", 3);
    let schema = env.payload.get("schema").and_then(Value::as_str).unwrap();
    assert!(schema.contains("ok"), "schema: {schema}");
    drop(producer);

    // Concurrent sessions: each gets its own thread and sees the same
    // state.
    let addr = daemon.addr();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for _ in 0..5 {
                    let text = c.request(r#"{"op":"health"}"#);
                    Envelope::expect_kind(&text, "health").unwrap();
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    // A protocol shutdown acknowledges, then stops the daemon.
    let text = client.request(r#"{"op":"shutdown"}"#);
    Envelope::expect_kind(&text, "ok").unwrap();
    daemon.wait();
    assert!(daemon.stopping());
    daemon.shutdown();
}

#[test]
fn metrics_op_reports_per_source_series_that_agree_with_the_fold() {
    let path = temp_path("metrics.ndjson");
    std::fs::write(&path, "{\"a\":1}\n{\"a\":2}\n{\"a\":3,\"b\":true}\n").unwrap();

    let daemon = Daemon::start(fast(ServeConfig::new().watch_file("events", &path))).unwrap();
    let mut client = Client::connect(daemon.addr());
    client.wait_for_records("events", 3);

    let text = client.request(r#"{"op":"metrics"}"#);
    let env = Envelope::expect_kind(&text, "telemetry").unwrap();
    let counters = env.payload.get("counters").unwrap();
    assert_eq!(
        counters
            .get("typefuse_source_records{source=\"events\"}")
            .and_then(Value::as_i64),
        Some(3),
        "per-source counter agrees with folded records: {text}"
    );
    let gauges = env.payload.get("gauges").unwrap();
    assert_eq!(
        gauges
            .get("typefuse_source_version{source=\"events\"}")
            .and_then(Value::as_i64),
        Some(1)
    );
    assert_eq!(
        gauges
            .get("typefuse_source_lag_bytes{source=\"events\"}")
            .and_then(Value::as_i64),
        Some(0),
        "fully caught-up tail has no lag"
    );
    assert!(
        env.payload
            .get("approx")
            .and_then(|a| a.get("typefuse_uptime_ms"))
            .and_then(Value::as_i64)
            .is_some(),
        "wall-clock series live in the approx section"
    );
    let first_version = env.payload.get("version").and_then(Value::as_i64).unwrap();

    // Determinism for a fixed fold sequence: a second sample renders
    // the fold-driven sections byte-identically; only the snapshot
    // sequence number and the request counter (this very request)
    // advance.
    let text2 = client.request(r#"{"op":"metrics"}"#);
    let env2 = Envelope::expect_kind(&text2, "telemetry").unwrap();
    assert_eq!(
        env2.payload.get("version").and_then(Value::as_i64),
        Some(first_version + 1)
    );
    assert_eq!(
        typefuse_json::to_string(env.payload.get("gauges").unwrap()),
        typefuse_json::to_string(env2.payload.get("gauges").unwrap()),
        "gauges section is byte-deterministic"
    );
    let counters2 = env2.payload.get("counters").unwrap();
    for (key, value) in counters.as_object().unwrap().iter() {
        let second = counters2.get(key).and_then(Value::as_i64);
        if key == "typefuse_requests_total" {
            assert_eq!(second, value.as_i64().map(|v| v + 1), "one more request");
        } else {
            assert_eq!(second, value.as_i64(), "counter {key} drifted with no fold");
        }
    }

    // Prometheus exposition rides inside a one-line envelope.
    let text = client.request(r#"{"op":"metrics","format":"prometheus"}"#);
    let env = Envelope::expect_kind(&text, "prometheus").unwrap();
    assert_eq!(
        env.payload.get("content_type").and_then(Value::as_str),
        Some("text/plain; version=0.0.4")
    );
    let exposition = env.payload.get("text").and_then(Value::as_str).unwrap();
    assert!(
        exposition.contains("# TYPE typefuse_source_records counter"),
        "{exposition}"
    );
    assert!(
        exposition.contains("typefuse_source_records{source=\"events\"} 3"),
        "{exposition}"
    );
    assert!(
        exposition.contains("# TYPE typefuse_uptime_ms gauge"),
        "{exposition}"
    );
    assert!(
        exposition.contains("typefuse_sessions_total"),
        "{exposition}"
    );

    // Structured events recorded the boot and the publish.
    let events = daemon.events();
    let recent = events.recent(16);
    assert!(
        recent.iter().any(|e| e.span == "boot"),
        "boot event: {recent:?}"
    );
    assert!(
        recent
            .iter()
            .any(|e| e.span == "publish" && e.message.contains("version 1")),
        "publish event: {recent:?}"
    );

    daemon.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn watch_streams_snapshots_and_a_disconnect_leaves_the_daemon_healthy() {
    let path = temp_path("watch.ndjson");
    std::fs::write(&path, "{\"n\":1}\n{\"n\":2}\n").unwrap();

    let daemon = Daemon::start(fast(ServeConfig::new().watch_file("events", &path))).unwrap();
    Client::connect(daemon.addr()).wait_for_records("events", 2);

    // Subscribe and read a few streamed envelopes.
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer
        .write_all(b"{\"op\":\"watch\",\"interval_ms\":20}\n")
        .unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut versions = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let env = Envelope::expect_kind(line.trim(), "telemetry").unwrap();
        assert_eq!(
            env.payload
                .get("counters")
                .and_then(|c| c.get("typefuse_source_records{source=\"events\"}"))
                .and_then(Value::as_i64),
            Some(2)
        );
        versions.push(env.payload.get("version").and_then(Value::as_i64).unwrap());
    }
    assert!(
        versions.windows(2).all(|w| w[1] > w[0]),
        "snapshot versions advance: {versions:?}"
    );
    drop(reader);
    drop(writer);

    // The abandoned stream must not wedge the daemon: a fresh session
    // still gets answers, and health carries the new totals.
    let mut client = Client::connect(daemon.addr());
    let text = client.request(r#"{"op":"health"}"#);
    let env = Envelope::expect_kind(&text, "health").unwrap();
    assert_eq!(env.payload.get("records").and_then(Value::as_i64), Some(2));
    assert!(env
        .payload
        .get("uptime_ms")
        .and_then(Value::as_i64)
        .is_some());
    let sources = typefuse_json::to_string(env.payload.get("sources").unwrap());
    assert!(
        sources.contains("\"last_activity_ms\":") && !sources.contains("\"last_activity_ms\":null"),
        "per-source activity stamp: {sources}"
    );

    daemon.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn watched_file_may_not_exist_yet_and_quarantine_collects_bad_records() {
    let path = temp_path("late.ndjson");
    let sink = temp_path("late.quarantine.ndjson");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&sink).ok();

    let recorder = Recorder::enabled();
    let daemon = Daemon::start(fast(
        ServeConfig::new()
            .job(
                JobConfig::new()
                    .recorder(recorder.clone())
                    .on_error(typefuse::ErrorPolicy::quarantine(&sink)),
            )
            .watch_file("late", &path),
    ))
    .unwrap();

    // The file appears only after the daemon is up.
    std::thread::sleep(Duration::from_millis(30));
    std::fs::write(&path, "{\"a\":1}\nnot json\n{\"a\":2}\n").unwrap();

    let mut client = Client::connect(daemon.addr());
    let env = client.wait_for_records("late", 2);
    assert_eq!(env.payload.get("skipped").and_then(Value::as_i64), Some(1));

    daemon.shutdown();
    let entries = typefuse::faults::read_quarantine(&sink).unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].0, 2, "quarantined at its stream line");
    assert_eq!(entries[0].2.as_deref(), Some("not json"));
    assert_eq!(recorder.snapshot().counters["ingest.quarantined"], 1);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&sink).ok();
}
