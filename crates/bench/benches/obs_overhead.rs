//! Overhead of the observability layer: the identical `SchemaJob` run
//! with the default disabled recorder vs an enabled one. The enabled
//! run pays one atomic add per record (`infer.types`), one per fuse
//! call plus a histogram bucket add, and a handful of span timestamps —
//! the acceptance bar is < 3% on a large run.
//!
//! ```text
//! cargo bench -p typefuse-bench --bench obs_overhead
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use typefuse::JobConfig;
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_json::Value;
use typefuse_obs::Recorder;

const N: usize = 5_000;

fn values() -> Vec<Value> {
    Profile::Twitter.generate(20170321, N).collect()
}

fn bench_recorder_overhead(c: &mut Criterion) {
    let values = values();
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("disabled_recorder", |b| {
        let job = JobConfig::new().without_type_stats().build();
        b.iter(|| job.run_values(values.clone()))
    });
    group.bench_function("enabled_recorder", |b| {
        let job = JobConfig::new()
            .without_type_stats()
            .recorder(Recorder::enabled())
            .build();
        b.iter(|| job.run_values(values.clone()))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_recorder_overhead
}
criterion_main!(benches);
