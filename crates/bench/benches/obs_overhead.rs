//! Overhead of the observability layer: the identical `SchemaJob` run
//! with the default disabled recorder vs an enabled one. The enabled
//! run pays one atomic add per record (`infer.types`), one per fuse
//! call plus a histogram bucket add, and a handful of span timestamps —
//! the acceptance bar is < 3% on a large run.
//!
//! Also measures the live telemetry plane (`TelemetryHub`): the
//! hot-path cost a poller pays per update (one relaxed atomic add
//! through a hoisted cell) and the on-demand cost a `metrics` request
//! or Prometheus scrape pays to sample and render a daemon-sized hub.
//!
//! ```text
//! cargo bench -p typefuse-bench --bench obs_overhead
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use typefuse::JobConfig;
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_json::Value;
use typefuse_obs::{series_key, Recorder, TelemetryHub};

const N: usize = 5_000;

fn values() -> Vec<Value> {
    Profile::Twitter.generate(20170321, N).collect()
}

fn bench_recorder_overhead(c: &mut Criterion) {
    let values = values();
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("disabled_recorder", |b| {
        let job = JobConfig::new().without_type_stats().build();
        b.iter(|| job.run_values(values.clone()))
    });
    group.bench_function("enabled_recorder", |b| {
        let job = JobConfig::new()
            .without_type_stats()
            .recorder(Recorder::enabled())
            .build();
        b.iter(|| job.run_values(values.clone()))
    });
    group.finish();
}

/// A hub shaped like a serving daemon: 8 sources × the per-source
/// series the poller maintains, plus the daemon-level series.
fn daemon_sized_hub() -> TelemetryHub {
    let hub = TelemetryHub::new();
    for i in 0..8 {
        let source = format!("source-{i}");
        for metric in ["typefuse_source_records", "typefuse_sessions_seen"] {
            hub.counter(series_key(metric, &[("source", &source)]))
                .add(1000 + i);
        }
        for metric in [
            "typefuse_source_skipped",
            "typefuse_source_quarantined",
            "typefuse_source_offset_bytes",
            "typefuse_source_lag_bytes",
            "typefuse_source_distinct_shapes",
            "typefuse_source_version",
        ] {
            hub.gauge(series_key(metric, &[("source", &source)])).set(i);
        }
        hub.approx_gauge(series_key(
            "typefuse_source_records_per_sec",
            &[("source", &source)],
        ))
        .set(i * 100);
    }
    hub.counter("typefuse_requests_total").add(5000);
    hub.counter("typefuse_sessions_total").add(40);
    hub.approx_gauge("typefuse_uptime_ms").set(3_600_000);
    hub
}

fn bench_telemetry_hub(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_hub");
    group.bench_function("cell_bump", |b| {
        let hub = TelemetryHub::new();
        let cell = hub.counter(series_key(
            "typefuse_source_records",
            &[("source", "events")],
        ));
        b.iter(|| cell.add(1));
    });
    let hub = daemon_sized_hub();
    group.bench_function("sample_to_json", |b| b.iter(|| hub.sample().to_json()));
    group.bench_function("sample_to_prometheus", |b| {
        b.iter(|| hub.sample().to_prometheus())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_recorder_overhead, bench_telemetry_hub
}
criterion_main!(benches);
