//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Array collapse on/off** — the paper trades array positional
//!    precision for succinctness (Section 2); the variant keeps aligned
//!    positional arrays. We measure both time and resulting schema size.
//! 2. **Reduce topology** — sequential driver fold vs parallel tree
//!    reduce over per-partition schemas (associativity makes them
//!    equivalent in output; Theorem 5.5).
//! 3. **Fusion accumulation order** — absorbing record types one at a
//!    time vs pre-fusing in pairs (tree) on one thread.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_engine::{Dataset, ReducePlan, Runtime};
use typefuse_infer::{fuse, fuse_with, infer_type, ArrayFusion, FuseConfig};
use typefuse_types::Type;

fn twitter_types(n: usize) -> Vec<Type> {
    Profile::Twitter
        .generate(5, n)
        .map(|v| infer_type(&v))
        .collect()
}

fn bench_array_collapse(c: &mut Criterion) {
    let types = twitter_types(1_000);
    let mut group = c.benchmark_group("ablation_array_fusion");
    for (name, mode) in [
        ("collapse_paper", ArrayFusion::Collapse),
        (
            "positional_when_aligned",
            ArrayFusion::PositionalWhenAligned,
        ),
    ] {
        let cfg = FuseConfig { array_fusion: mode };
        group.bench_function(name, |b| {
            b.iter(|| {
                types
                    .iter()
                    .fold(Type::Bottom, |acc, t| fuse_with(cfg, black_box(&acc), t))
                    .size()
            })
        });
    }
    group.finish();

    // Also report (once) the schema-size consequence of the ablation,
    // which is the real trade-off the paper discusses.
    let collapse = types.iter().fold(Type::Bottom, |a, t| {
        fuse_with(
            FuseConfig {
                array_fusion: ArrayFusion::Collapse,
            },
            &a,
            t,
        )
    });
    let positional = types.iter().fold(Type::Bottom, |a, t| {
        fuse_with(
            FuseConfig {
                array_fusion: ArrayFusion::PositionalWhenAligned,
            },
            &a,
            t,
        )
    });
    eprintln!(
        "[ablation] fused schema size — collapse: {}, positional-when-aligned: {}",
        collapse.size(),
        positional.size()
    );
}

fn bench_reduce_topology(c: &mut Criterion) {
    // Per-partition schemas of a 64-partition Wikidata job: the partials
    // whose combination topology Table 8 is about.
    let partials: Vec<Type> = (0..64u64)
        .map(|p| {
            Profile::Wikidata
                .generate(p, 40)
                .map(|v| infer_type(&v))
                .fold(Type::Bottom, |a, t| fuse(&a, &t))
        })
        .collect();
    let rt = Runtime::default();
    let mut group = c.benchmark_group("ablation_reduce_topology");
    for (name, plan) in [
        ("sequential", ReducePlan::Sequential),
        ("tree_arity2", ReducePlan::Tree { arity: 2 }),
        ("tree_arity8", ReducePlan::Tree { arity: 8 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, &plan| {
            b.iter(|| plan.combine(&rt, partials.clone(), fuse).unwrap().size())
        });
    }
    group.finish();
}

fn bench_dataset_reduce_vs_aggregate(c: &mut Criterion) {
    // Spark idiom comparison: map-then-reduce materialises the types;
    // aggregate folds them into the accumulator as they are produced.
    let values: Vec<_> = Profile::GitHub.generate(9, 1_000).collect();
    let rt = Runtime::default();
    let dataset = Dataset::from_vec(values, rt.workers() * 4);
    let mut group = c.benchmark_group("ablation_reduce_vs_aggregate");
    group.bench_function("map_then_reduce", |b| {
        b.iter(|| {
            dataset
                .map(&rt, infer_type)
                .reduce(&rt, ReducePlan::default(), fuse)
                .unwrap()
                .size()
        })
    });
    group.bench_function("aggregate_fused", |b| {
        b.iter(|| {
            dataset
                .aggregate(
                    &rt,
                    ReducePlan::default(),
                    || Type::Bottom,
                    |acc, v| fuse(&acc, &infer_type(v)),
                    fuse,
                )
                .size()
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_array_collapse, bench_reduce_topology, bench_dataset_reduce_vs_aggregate
}
criterion_main!(benches);
