//! JSON substrate benchmarks: the parser and serializer that feed the
//! pipeline (the paper's type inference runs over Json4s output; ours
//! runs over this parser's output, so its throughput bounds end-to-end
//! times).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_infer::infer_type;
use typefuse_json::{parse_value, to_string, NdjsonReader, Value};

fn corpus(profile: Profile, n: usize) -> (String, Vec<Value>) {
    let values: Vec<Value> = profile.generate(1, n).collect();
    let mut text = Vec::new();
    typefuse_json::ndjson::write_ndjson(&mut text, &values).unwrap();
    (String::from_utf8(text).unwrap(), values)
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse_ndjson");
    for profile in Profile::ALL {
        let (text, _) = corpus(profile, 200);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(BenchmarkId::from_parameter(profile), |b| {
            b.iter(|| {
                NdjsonReader::new(black_box(text.as_bytes()))
                    .collect::<Result<Vec<Value>, _>>()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("serialize");
    for profile in [Profile::GitHub, Profile::NYTimes] {
        let (_, values) = corpus(profile, 200);
        group.bench_function(BenchmarkId::from_parameter(profile), |b| {
            b.iter(|| {
                values
                    .iter()
                    .map(|v| to_string(black_box(v)).len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_infer_only(c: &mut Criterion) {
    // Isolate the Map phase: type inference over pre-parsed values.
    let mut group = c.benchmark_group("infer_only");
    for profile in Profile::ALL {
        let (_, values) = corpus(profile, 200);
        group.throughput(Throughput::Elements(values.len() as u64));
        group.bench_function(BenchmarkId::from_parameter(profile), |b| {
            b.iter(|| {
                values
                    .iter()
                    .map(|v| infer_type(black_box(v)).size())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_direct_vs_tree_inference(c: &mut Criterion) {
    // The streaming path skips the Value tree entirely; measure both
    // text-to-type routes per profile.
    let mut group = c.benchmark_group("text_to_type");
    for profile in [Profile::Twitter, Profile::NYTimes] {
        let (text, _) = corpus(profile, 200);
        let lines: Vec<&str> = text.lines().collect();
        group.bench_function(format!("{profile}/tree"), |b| {
            b.iter(|| {
                lines
                    .iter()
                    .map(|l| infer_type(&parse_value(black_box(l)).unwrap()).size())
                    .sum::<usize>()
            })
        });
        group.bench_function(format!("{profile}/streaming"), |b| {
            b.iter(|| {
                lines
                    .iter()
                    .map(|l| {
                        typefuse_infer::streaming::infer_type_from_str(black_box(l))
                            .unwrap()
                            .size()
                    })
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_structural_scan(c: &mut Criterion) {
    // Stage-1 structural indexing: the SWAR word-classified sweep vs
    // the byte-at-a-time reference oracle, in MB/s over whole corpora.
    let mut group = c.benchmark_group("structural_scan");
    for profile in [Profile::GitHub, Profile::NYTimes] {
        let (text, _) = corpus(profile, 200);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(format!("{profile}/swar"), |b| {
            b.iter(|| {
                typefuse_json::scan(black_box(text.as_bytes()))
                    .structurals
                    .len()
            })
        });
        group.bench_function(format!("{profile}/scalar"), |b| {
            b.iter(|| {
                typefuse_json::scan::scan_scalar(black_box(text.as_bytes()))
                    .structurals
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_shape_cache(c: &mut Criterion) {
    // The shape route's two regimes, in ns/record. GitHub events are
    // shape-redundant (steady state is almost all hits); Wikidata's
    // open-content records keep the cache missing.
    let mut group = c.benchmark_group("shape_cache");
    let opts = typefuse_json::ParserOptions::default();
    let rec = typefuse_obs::Recorder::disabled();
    for profile in [Profile::GitHub, Profile::Wikidata] {
        let (text, _) = corpus(profile, 200);
        let lines: Vec<&str> = text.lines().collect();
        group.throughput(Throughput::Elements(lines.len() as u64));
        group.bench_function(format!("{profile}/warm"), |b| {
            // Warm the cache once, then measure the hit path.
            let mut cache = typefuse_infer::ShapeCache::new();
            for line in &lines {
                cache.infer_line(line.as_bytes(), &opts, &rec).unwrap();
            }
            b.iter(|| {
                lines
                    .iter()
                    .map(|l| {
                        cache
                            .infer_line(black_box(l.as_bytes()), &opts, &rec)
                            .unwrap()
                            .size()
                    })
                    .sum::<usize>()
            })
        });
        group.bench_function(format!("{profile}/cold"), |b| {
            // Fresh cache per pass: every distinct signature replays
            // the event fold.
            b.iter(|| {
                let mut cache = typefuse_infer::ShapeCache::new();
                lines
                    .iter()
                    .map(|l| {
                        cache
                            .infer_line(black_box(l.as_bytes()), &opts, &rec)
                            .unwrap()
                            .size()
                    })
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_string_escapes(c: &mut Criterion) {
    // Hot path detail: escaped vs plain strings.
    let plain = format!("\"{}\"", "a".repeat(1000));
    let escaped = format!("\"{}\"", "a\\n\\t\\u00e9".repeat(100));
    let mut group = c.benchmark_group("parse_strings");
    group.bench_function("plain_1k", |b| {
        b.iter(|| parse_value(black_box(&plain)).unwrap())
    });
    group.bench_function("escaped_100_units", |b| {
        b.iter(|| parse_value(black_box(&escaped)).unwrap())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parse, bench_serialize, bench_infer_only, bench_direct_vs_tree_inference, bench_structural_scan, bench_shape_cache, bench_string_escapes
}
criterion_main!(benches);
