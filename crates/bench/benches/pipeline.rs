//! End-to-end pipeline benchmarks — the Table 6 measurement as a
//! criterion bench: generate → infer → fuse per profile, plus worker
//! scaling (the paper's scalability claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use typefuse_bench::{run_scale, ScaleConfig};
use typefuse_datagen::Profile;

const N: u64 = 2_000;

fn bench_profiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_by_profile");
    group.throughput(Throughput::Elements(N));
    for profile in Profile::ALL {
        group.bench_function(BenchmarkId::from_parameter(profile), |b| {
            b.iter(|| run_scale(&ScaleConfig::new(profile, N)))
        });
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_worker_scaling");
    group.throughput(Throughput::Elements(N));
    let max = typefuse_engine::runtime::available_workers();
    for workers in [1usize, 2, 4, 8] {
        if workers > max {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                run_scale(
                    &ScaleConfig::new(Profile::Twitter, N)
                        .workers(w)
                        .partitions(w * 4),
                )
            })
        });
    }
    group.finish();
}

fn bench_record_scaling(c: &mut Criterion) {
    // Time should be linear in record count (the scalability table).
    let mut group = c.benchmark_group("pipeline_record_scaling");
    for n in [500u64, 1_000, 2_000, 4_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_scale(&ScaleConfig::new(Profile::GitHub, n)))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_profiles, bench_worker_scaling, bench_record_scaling
}
criterion_main!(benches);
