//! Overhead of the error-policy machinery on *clean* input: the same
//! NDJSON corpus run under `FailFast` (the default, byte-identical to
//! the pre-policy pipeline) vs `Skip`. On clean data the Skip route
//! does exactly the same work plus one empty-report check at the end,
//! so the acceptance bar is "within noise of FailFast". A third case
//! measures a 10%-dirty corpus under Skip to show that bad records
//! cost parse-failure handling, not a different pipeline.
//!
//! ```text
//! cargo bench -p typefuse-bench --bench error_policy_overhead
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use typefuse::pipeline::Source;
use typefuse::ErrorPolicy;
use typefuse::JobConfig;
use typefuse_datagen::{DatasetProfile, Profile};

const N: usize = 5_000;

fn ndjson_corpus(dirty_every: Option<usize>) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, value) in Profile::Twitter.generate(20170321, N).enumerate() {
        if dirty_every.is_some_and(|k| i % k == k - 1) {
            out.extend_from_slice(b"{definitely not json\n");
        } else {
            out.extend_from_slice(typefuse_json::to_string(&value).as_bytes());
            out.push(b'\n');
        }
    }
    out
}

fn bench_error_policy_overhead(c: &mut Criterion) {
    let clean = ndjson_corpus(None);
    let dirty = ndjson_corpus(Some(10));
    let mut group = c.benchmark_group("error_policy_overhead");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("fail_fast_clean", |b| {
        let job = JobConfig::new().without_type_stats().build();
        b.iter(|| job.run(Source::ndjson(clean.as_slice())).unwrap().records)
    });
    group.bench_function("skip_clean", |b| {
        let job = JobConfig::new()
            .without_type_stats()
            .on_error(ErrorPolicy::skip())
            .build();
        b.iter(|| job.run(Source::ndjson(clean.as_slice())).unwrap().records)
    });
    group.bench_function("skip_10pct_dirty", |b| {
        let job = JobConfig::new()
            .without_type_stats()
            .on_error(ErrorPolicy::skip())
            .build();
        b.iter(|| job.run(Source::ndjson(dirty.as_slice())).unwrap().records)
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_error_policy_overhead
}
criterion_main!(benches);
