//! The two Map routes head to head: tree inference (parse each line into
//! a `Value`, then Figure 4) versus the event fast path (fold the token
//! stream straight into the type). Both run through the full
//! `SchemaJob::run(Source::ndjson(..))` pipeline, so the comparison
//! includes reading, partitioning, Map and Reduce — the numbers are
//! records/s of the whole ingest, not just the inference kernel.
//!
//! Every measurement first asserts the two routes produce byte-identical
//! schemas on the profile, so a run of this bench doubles as the
//! differential check CI's bench-smoke job relies on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use typefuse::pipeline::{MapPath, SchemaJob, Source};
use typefuse::JobConfig;
use typefuse_datagen::{DatasetProfile, Profile};

fn corpus(profile: Profile, n: usize) -> String {
    let values: Vec<_> = profile.generate(7, n).collect();
    let mut text = Vec::new();
    typefuse_json::ndjson::write_ndjson(&mut text, &values).unwrap();
    String::from_utf8(text).unwrap()
}

fn job(path: MapPath) -> SchemaJob {
    JobConfig::new().map_path(path).without_type_stats().build()
}

fn run(path: MapPath, text: &str) -> typefuse_types::Type {
    job(path)
        .run(Source::ndjson(text.as_bytes()))
        .expect("generated corpus is valid NDJSON")
        .schema
}

fn bench_value_vs_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_vs_events");
    for profile in Profile::ALL {
        let n = 200usize;
        let text = corpus(profile, n);

        // Differential guard: identical schemas before anything is timed.
        let via_events = run(MapPath::Events, &text);
        let via_values = run(MapPath::Values, &text);
        assert_eq!(
            via_events, via_values,
            "map routes disagree on {profile}: {via_events} vs {via_values}"
        );

        group.throughput(Throughput::Elements(n as u64));
        for (label, path) in [("events", MapPath::Events), ("value", MapPath::Values)] {
            group.bench_function(BenchmarkId::new(label, profile), |b| {
                b.iter(|| run(path, black_box(&text)).size())
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_value_vs_events
}
criterion_main!(benches);
