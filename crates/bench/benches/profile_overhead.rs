//! Cost of the data-plane profiler: the profiled pipeline
//! (`SchemaJob::run_profiled` — per-path presence, kind/length
//! histograms, provenance lines) versus plain fusion over the same
//! NDJSON input. Both run end to end through `Source::ndjson`, so the
//! overhead number is the real per-ingest cost a `--profile-json` user
//! pays, not just the accumulator's.
//!
//! Every measurement first asserts the profiled run reproduces the
//! plain run's schema and that the profile is byte-identical across
//! both Map routes, so this bench doubles as a differential check.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use typefuse::pipeline::{MapPath, SchemaJob, Source};
use typefuse::JobConfig;
use typefuse_datagen::{DatasetProfile, Profile};

fn corpus(profile: Profile, n: usize) -> String {
    let values: Vec<_> = profile.generate(7, n).collect();
    let mut text = Vec::new();
    typefuse_json::ndjson::write_ndjson(&mut text, &values).unwrap();
    String::from_utf8(text).unwrap()
}

fn job() -> SchemaJob {
    JobConfig::new().without_type_stats().build()
}

fn run_plain(text: &str) -> typefuse_types::Type {
    job()
        .run(Source::ndjson(text.as_bytes()))
        .expect("generated corpus is valid NDJSON")
        .schema
}

fn run_profiled(text: &str, path: MapPath) -> typefuse_infer::ProfileReport {
    JobConfig::new()
        .without_type_stats()
        .map_path(path)
        .build()
        .run_profiled(Source::ndjson(text.as_bytes()))
        .expect("generated corpus is valid NDJSON")
        .profile
}

fn bench_profile_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_overhead");
    for profile in Profile::ALL {
        let n = 200usize;
        let text = corpus(profile, n);

        // Differential guards before anything is timed: the profiled
        // run fuses the same schema, and the two Map routes produce the
        // same profile bytes.
        let plain = run_plain(&text);
        let via_events = run_profiled(&text, MapPath::Events);
        let via_values = run_profiled(&text, MapPath::Values);
        assert_eq!(
            via_events.schema, plain,
            "profiled schema drifts on {profile}"
        );
        assert_eq!(
            via_events.to_json(),
            via_values.to_json(),
            "profile bytes differ between map routes on {profile}"
        );

        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("plain", profile), |b| {
            b.iter(|| run_plain(black_box(&text)).size())
        });
        group.bench_function(BenchmarkId::new("profiled", profile), |b| {
            b.iter(|| run_profiled(black_box(&text), MapPath::Events).paths.len())
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_profile_overhead
}
criterion_main!(benches);
