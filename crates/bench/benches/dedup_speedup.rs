//! The Reduce phase head to head: the plain fold (every record's type
//! fused into the running schema) versus the shape-dedup route (types
//! hash-consed into ids, each distinct `schema ⊔ shape` step computed
//! once and replayed from the memo cache).
//!
//! Both run the engine's `reduce_fused` over the same pre-inferred
//! `Dataset<Type>`, so the numbers isolate the Reduce — the Map cost is
//! identical by construction. GitHub is the high-redundancy profile
//! (hundreds of records per shape: dedup should win big); Wikidata's
//! entity records are mostly distinct (the dedup route degenerates to
//! the plain fold plus interning overhead — the honest lower bound).
//!
//! Every measurement first asserts the two routes produce byte-identical
//! schemas, so a run of this bench doubles as a differential check.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_engine::{Dataset, ReducePlan, Runtime};
use typefuse_infer::{infer_type, DedupFuser, FuseConfig, Fuser};
use typefuse_types::Type;

fn inferred(profile: Profile, n: usize) -> Dataset<Type> {
    let types: Vec<Type> = profile.generate(7, n).map(|v| infer_type(&v)).collect();
    Dataset::from_vec(types, 16)
}

fn reduce<F: Fuser>(data: &Dataset<Type>, rt: &Runtime, fuser: &F) -> Type {
    let rec = typefuse_obs::Recorder::disabled();
    let (schema, _) = data.reduce_fused(rt, ReducePlan::default(), fuser, &rec);
    schema.expect("non-empty dataset")
}

fn bench_dedup_speedup(c: &mut Criterion) {
    let rt = Runtime::default();
    let mut group = c.benchmark_group("dedup_speedup");
    for (profile, n) in [(Profile::GitHub, 100_000), (Profile::Wikidata, 20_000)] {
        let data = inferred(profile, n);

        // Differential guard: identical schemas before anything is timed.
        let plain = reduce(&data, &rt, &FuseConfig::default());
        let dedup = reduce(&data, &rt, &DedupFuser::plain(FuseConfig::default()));
        assert_eq!(
            plain, dedup,
            "reduce routes disagree on {profile}: {plain} vs {dedup}"
        );

        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("plain", profile), |b| {
            b.iter(|| reduce(black_box(&data), &rt, &FuseConfig::default()).size())
        });
        group.bench_function(BenchmarkId::new("dedup", profile), |b| {
            b.iter(|| {
                reduce(
                    black_box(&data),
                    &rt,
                    &DedupFuser::plain(FuseConfig::default()),
                )
                .size()
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dedup_speedup
}
criterion_main!(benches);
