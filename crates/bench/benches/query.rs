//! Benchmarks for the schema-checked query layer: how much the static
//! check costs relative to evaluation, and evaluation throughput of each
//! operator class.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use typefuse_bench::{run_scale, ScaleConfig};
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_json::Value;
use typefuse_query::Pipeline;

const N: usize = 1_000;

fn rows() -> Vec<Value> {
    Profile::NYTimes.generate(11, N).collect()
}

fn schema() -> typefuse_types::Type {
    run_scale(&ScaleConfig::new(Profile::NYTimes, N as u64)).schema
}

fn pipeline() -> Pipeline {
    Pipeline::parse(
        "filter exists $.byline and $.word_count > 100\n\
         flatten $.keywords\n\
         filter $.keywords.name == \"subject\"\n\
         project $.headline.main, $.keywords.value\n\
         distinct\n\
         limit 100",
    )
    .unwrap()
}

fn bench_check(c: &mut Criterion) {
    let schema = schema();
    let pipeline = pipeline();
    c.bench_function("query_static_check", |b| {
        b.iter(|| pipeline.check(&schema).unwrap().size())
    });
}

fn bench_eval(c: &mut Criterion) {
    let rows = rows();
    let mut group = c.benchmark_group("query_eval");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("full_pipeline", |b| {
        let p = pipeline();
        b.iter(|| p.eval(&rows).unwrap().len())
    });
    group.bench_function("filter_only", |b| {
        let p = Pipeline::parse("filter $.word_count > 100").unwrap();
        b.iter(|| p.eval(&rows).unwrap().len())
    });
    group.bench_function("project_only", |b| {
        let p = Pipeline::parse("project $.headline.main, $.pub_date").unwrap();
        b.iter(|| p.eval(&rows).unwrap().len())
    });
    group.bench_function("flatten_only", |b| {
        let p = Pipeline::parse("flatten $.keywords").unwrap();
        b.iter(|| p.eval(&rows).unwrap().len())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_check, bench_eval
}
criterion_main!(benches);
