//! Micro-benchmarks of the fusion operator itself (Figure 6).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use typefuse_bench::{run_scale, ScaleConfig};
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_infer::{fuse, infer_type};
use typefuse_types::{RecordBuilder, Type};

/// The fused schema of a small prefix of a profile — a realistic "wide"
/// fusion operand.
fn profile_schema(profile: Profile, n: u64) -> Type {
    run_scale(&ScaleConfig::new(profile, n).workers(1).partitions(1)).schema
}

fn bench_same_schema_refusion(c: &mut Criterion) {
    // Steady-state of the reduce: almost every record's type is already
    // included in the accumulator, so Fuse(acc, t) must be cheap.
    let mut group = c.benchmark_group("refuse_record_into_schema");
    for profile in Profile::ALL {
        let schema = profile_schema(profile, 500);
        let record_type = infer_type(&profile.record(99, 0));
        group.bench_function(profile.name(), |b| {
            b.iter(|| fuse(black_box(&schema), black_box(&record_type)))
        });
    }
    group.finish();
}

fn bench_schema_merge(c: &mut Criterion) {
    // The final step of partitioned processing: fusing two fused schemas.
    let mut group = c.benchmark_group("fuse_two_partition_schemas");
    for profile in Profile::ALL {
        let a = profile_schema(profile, 400);
        let b_schema = {
            let cfg = ScaleConfig {
                seed: 777,
                ..ScaleConfig::new(profile, 400)
            };
            run_scale(&cfg.workers(1).partitions(1)).schema
        };
        group.bench_function(profile.name(), |b| {
            b.iter(|| fuse(black_box(&a), black_box(&b_schema)))
        });
    }
    group.finish();
}

fn bench_record_width(c: &mut Criterion) {
    // Record fusion is a merge-join over sorted fields: cost should be
    // linear in the field count.
    let mut group = c.benchmark_group("record_fusion_by_width");
    for width in [4usize, 16, 64, 256] {
        let mut left = RecordBuilder::new();
        let mut right = RecordBuilder::new();
        for i in 0..width {
            left = left.required(format!("k{i:04}"), Type::Num);
            // Half the keys overlap, half are disjoint.
            let key = if i % 2 == 0 {
                format!("k{i:04}")
            } else {
                format!("r{i:04}")
            };
            right = right.required(key, Type::Str);
        }
        let (l, r) = (left.into_type(), right.into_type());
        group.bench_function(format!("width_{width}"), |b| {
            b.iter(|| fuse(black_box(&l), black_box(&r)))
        });
    }
    group.finish();
}

fn bench_atomic_dispatch(c: &mut Criterion) {
    // The kind-indexed union table: fusing small unions of mixed kinds.
    let u1 = Type::Num.plus(Type::Str).plus(Type::Null);
    let u2 = Type::Bool.plus(Type::Str);
    c.bench_function("union_kind_dispatch", |b| {
        b.iter(|| fuse(black_box(&u1), black_box(&u2)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_same_schema_refusion, bench_schema_merge, bench_record_width, bench_atomic_dispatch
}
criterion_main!(benches);
