//! A counting global allocator, so `typefuse bench` can report heap
//! traffic next to throughput.
//!
//! [`CountingAllocator`] wraps [`std::alloc::System`] and bumps three
//! relaxed atomics per call — cheap enough to leave on for benchmark
//! runs, and the only `unsafe` in the workspace (the [`GlobalAlloc`]
//! contract requires it, so this module carries a scoped allow while
//! the crate stays `deny(unsafe_code)`).
//!
//! Counting only happens when a binary registers the allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: typefuse_bench::alloc::CountingAllocator =
//!     typefuse_bench::alloc::CountingAllocator;
//! ```
//!
//! The `typefuse` CLI does; library consumers that do not will simply
//! observe zero deltas, which [`AllocSnapshot::is_counting`] exposes so
//! reports can mark the counters absent instead of claiming a
//! zero-allocation run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts calls and requested bytes.
pub struct CountingAllocator;

#[allow(unsafe_code)]
// Safety: delegates every operation verbatim to `System`; the counters
// are relaxed atomics and never affect allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Cumulative allocator counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Allocations (including reallocations) since process start.
    pub allocations: u64,
    /// Bytes requested since process start.
    pub allocated_bytes: u64,
    /// Deallocations since process start.
    pub deallocations: u64,
}

impl AllocSnapshot {
    /// The counter deltas accumulated since an `earlier` snapshot.
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            allocated_bytes: self.allocated_bytes.saturating_sub(earlier.allocated_bytes),
            deallocations: self.deallocations.saturating_sub(earlier.deallocations),
        }
    }

    /// Whether the counting allocator is actually registered — false
    /// means every counter reads zero and should be reported as absent.
    pub fn is_counting(&self) -> bool {
        self.allocations > 0
    }
}

/// Read the current counter values (all zero unless a binary registered
/// [`CountingAllocator`] as its global allocator).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        deallocations: DEALLOCATIONS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not register the allocator, so counters are
    // exercised as pure arithmetic here; the CLI smoke test covers the
    // registered path.
    #[test]
    fn snapshot_delta_arithmetic() {
        let earlier = AllocSnapshot {
            allocations: 10,
            allocated_bytes: 1000,
            deallocations: 8,
        };
        let later = AllocSnapshot {
            allocations: 15,
            allocated_bytes: 1600,
            deallocations: 14,
        };
        let delta = later.since(earlier);
        assert_eq!(delta.allocations, 5);
        assert_eq!(delta.allocated_bytes, 600);
        assert_eq!(delta.deallocations, 6);
        assert!(delta.is_counting());
        assert!(!AllocSnapshot::default().is_counting());
        // A stale "later" never underflows.
        assert_eq!(earlier.since(later).allocations, 0);
    }
}
