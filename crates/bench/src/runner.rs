//! The streaming experiment runner: generate → infer → fuse, partition by
//! partition, at paper scale.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use typefuse::pipeline::MapPath;
use typefuse_datagen::{DatasetProfile, Profile};
use typefuse_engine::{ReducePlan, Runtime};
use typefuse_infer::{
    fuse_into, fuse_with, infer_type, streaming, DedupAcc, FuseConfig, ShapeCache,
};
use typefuse_json::ParserOptions;
use typefuse_obs::Recorder;
use typefuse_types::Type;

/// Configuration of one scale run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Dataset profile to generate.
    pub profile: Profile,
    /// Generator seed.
    pub seed: u64,
    /// Number of records.
    pub records: u64,
    /// Number of partitions (each processed as one streamed task).
    pub partitions: usize,
    /// Worker threads.
    pub workers: usize,
    /// Fusion configuration.
    pub fuse_config: FuseConfig,
    /// Map route. The runner generates value trees natively, so
    /// [`MapPath::Values`] (the default here) infers them directly;
    /// [`MapPath::Events`] serializes each record and folds the token
    /// stream instead, timing the full text-to-type route — this is
    /// what the `value_vs_events` bench compares.
    pub map_path: MapPath,
    /// Also serialize every record to count dataset bytes (Table 1).
    /// Costs roughly as much as parsing; off for the type-statistics
    /// tables.
    pub measure_bytes: bool,
    /// Reduce over distinct shapes only (hash-consed interning plus
    /// memoized fusion) instead of fusing every record's type. The
    /// schema is byte-identical either way; the fuse-time columns show
    /// the dedup speedup.
    pub dedup: bool,
}

impl ScaleConfig {
    /// Defaults for a profile at a record count.
    pub fn new(profile: Profile, records: u64) -> Self {
        let workers = typefuse_engine::runtime::available_workers();
        ScaleConfig {
            profile,
            seed: 20170321,
            records,
            partitions: (workers * 4).max(1),
            workers,
            fuse_config: FuseConfig::default(),
            map_path: MapPath::Values,
            measure_bytes: false,
            dedup: false,
        }
    }

    /// Builder: set the Map route (see [`ScaleConfig::map_path`]).
    pub fn map_path(mut self, path: MapPath) -> Self {
        self.map_path = path;
        self
    }

    /// Builder: set the worker count (and leave partitions to the caller).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder: set the partition count.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions.max(1);
        self
    }

    /// Builder: measure serialized bytes too.
    pub fn measure_bytes(mut self) -> Self {
        self.measure_bytes = true;
        self
    }

    /// Builder: reduce over distinct shapes (see [`ScaleConfig::dedup`]).
    pub fn dedup(mut self) -> Self {
        self.dedup = true;
        self
    }

    /// Builder: adopt the shared [`typefuse::JobConfig`] knobs — one
    /// configuration surface for the pipeline, the daemon and the
    /// bench matrix. `None` workers/partitions keep this config's
    /// derived defaults; [`typefuse::pipeline::DedupMode::Auto`] is
    /// resolved against [`ScaleConfig::dedup`]'s current value (the
    /// matrix pins dedup per cell, it never samples).
    pub fn with_job_config(mut self, job: &typefuse::JobConfig) -> Self {
        if let Some(w) = job.workers {
            self.workers = w.max(1);
        }
        if let Some(p) = job.partitions {
            self.partitions = p.max(1);
        }
        self.map_path = job.map_path;
        self.fuse_config = job.fuse_config;
        self.dedup = match job.dedup {
            typefuse::pipeline::DedupMode::On => true,
            typefuse::pipeline::DedupMode::Off => false,
            typefuse::pipeline::DedupMode::Auto => self.dedup,
        };
        self
    }
}

/// Per-partition accumulator: everything Tables 2–8 need, O(1) memory in
/// the partition length (plus the distinct-hash set).
#[derive(Debug, Clone)]
struct PartitionAcc {
    records: u64,
    bytes: u64,
    distinct_hashes: HashSet<u64>,
    min_size: usize,
    max_size: usize,
    size_sum: u64,
    schema: SchemaAcc,
    infer_time: Duration,
    fuse_time: Duration,
}

impl PartitionAcc {
    fn empty(dedup: bool) -> Self {
        PartitionAcc {
            records: 0,
            bytes: 0,
            distinct_hashes: HashSet::new(),
            min_size: usize::MAX,
            max_size: 0,
            size_sum: 0,
            schema: if dedup {
                SchemaAcc::Dedup(Box::new(DedupAcc::new()))
            } else {
                SchemaAcc::Plain(Type::Bottom)
            },
            infer_time: Duration::ZERO,
            fuse_time: Duration::ZERO,
        }
    }
}

/// The per-partition reduce state: the plain running fold, or the
/// shape-dedup accumulator (interner + per-shape counts + memo cache).
#[derive(Debug, Clone)]
enum SchemaAcc {
    Plain(Type),
    Dedup(Box<DedupAcc>),
}

impl SchemaAcc {
    fn absorb(&mut self, cfg: FuseConfig, ty: &Type) {
        match self {
            SchemaAcc::Plain(schema) => fuse_into(cfg, schema, ty),
            SchemaAcc::Dedup(acc) => acc.absorb_type(cfg, ty),
        }
    }

    fn merge(&mut self, cfg: FuseConfig, other: &SchemaAcc) {
        match (self, other) {
            (SchemaAcc::Plain(mine), SchemaAcc::Plain(theirs)) => {
                *mine = fuse_with(cfg, mine, theirs);
            }
            (SchemaAcc::Dedup(mine), SchemaAcc::Dedup(theirs)) => mine.merge(cfg, theirs),
            _ => unreachable!("every partition uses the run's reduce strategy"),
        }
    }

    fn schema(&self) -> Type {
        match self {
            SchemaAcc::Plain(schema) => schema.clone(),
            SchemaAcc::Dedup(acc) => acc.schema(),
        }
    }
}

/// The outcome of a scale run — one row of Tables 2–5 plus the timing
/// columns of Table 6 and the byte column of Table 1.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// Worker threads the run was configured with.
    pub workers: usize,
    /// Records processed.
    pub records: u64,
    /// Serialized dataset size in bytes (0 unless `measure_bytes`).
    pub bytes: u64,
    /// Number of distinct inferred types (hash-based, collision odds
    /// ≈ n²/2⁶⁴ — irrelevant at 10⁶ records).
    pub distinct_types: usize,
    /// Minimum inferred type size.
    pub min_size: usize,
    /// Maximum inferred type size.
    pub max_size: usize,
    /// Mean inferred type size.
    pub avg_size: f64,
    /// Size of the fused type.
    pub fused_size: usize,
    /// The fused schema itself.
    pub schema: Type,
    /// CPU time spent generating + inferring (summed over partitions).
    pub infer_cpu: Duration,
    /// CPU time spent fusing (summed over partitions).
    pub fuse_cpu: Duration,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-partition `(records, distinct, wall)` — the Table 8 rows.
    pub partition_rows: Vec<(u64, usize, Duration)>,
    /// Per-partition `(infer, fuse)` CPU time, index-aligned with
    /// `partition_rows` — the per-stage rollup inputs.
    pub partition_cpu: Vec<(Duration, Duration)>,
    /// The real task timings from the thread pool: per-task queue wait,
    /// execute time and worker id, measured by the [`Runtime`].
    pub stage: typefuse_obs::StageReport,
}

impl ScaleResult {
    /// Fused size over average inferred size — the paper's succinctness
    /// ratio.
    pub fn compaction_ratio(&self) -> f64 {
        if self.avg_size == 0.0 {
            0.0
        } else {
            self.fused_size as f64 / self.avg_size
        }
    }

    /// Per-worker utilization of the partition stage, reconstructed
    /// from the pool's real task timings (queue wait doubles as the
    /// start offset, so busy intervals need no extra plumbing).
    pub fn utilization(&self) -> typefuse_obs::UtilizationReport {
        typefuse_obs::UtilizationReport::from_stage(&self.stage, self.workers)
    }

    /// Per-partition duration rollups as log₂ histograms, keyed by
    /// stage name: `partition.execute_ns` / `partition.queue_wait_ns`
    /// from the pool's task timings, `partition.infer_ns` /
    /// `partition.fuse_ns` from the runner's own CPU clocks. Quantiles
    /// (p50/p90/p99) come out of the histogram report.
    pub fn stage_histograms(
        &self,
    ) -> std::collections::BTreeMap<String, typefuse_obs::HistogramReport> {
        use typefuse_obs::LogHistogram;
        let mut execute = LogHistogram::new();
        let mut wait = LogHistogram::new();
        for task in &self.stage.tasks {
            execute.record(task.execute_ns);
            wait.record(task.queue_wait_ns);
        }
        let mut infer = LogHistogram::new();
        let mut fuse = LogHistogram::new();
        for (i, f) in &self.partition_cpu {
            infer.record(i.as_nanos() as u64);
            fuse.record(f.as_nanos() as u64);
        }
        let mut out = std::collections::BTreeMap::new();
        out.insert("partition.execute_ns".to_string(), execute.report());
        out.insert("partition.queue_wait_ns".to_string(), wait.report());
        out.insert("partition.infer_ns".to_string(), infer.report());
        out.insert("partition.fuse_ns".to_string(), fuse.report());
        out
    }

    /// Convert to the same [`typefuse_obs::RunReport`] struct the CLI's
    /// `--metrics-json` emits, so bench output and pipeline output can
    /// be diffed or post-processed with the same tooling. The
    /// `partitions` stage carries the pool's real task timings (queue
    /// wait, execute, worker id), and the per-partition duration
    /// histograms ride along for quantile rollups.
    pub fn run_report(&self) -> typefuse_obs::RunReport {
        let mut report = typefuse_obs::RunReport::default();
        report.counters.insert("records".to_string(), self.records);
        if self.bytes > 0 {
            report.counters.insert("json.bytes".to_string(), self.bytes);
        }
        report.stages.push(self.stage.clone());
        report.histograms = self.stage_histograms();
        let values = [
            ("distinct_types", self.distinct_types as f64),
            ("min_size", self.min_size as f64),
            ("max_size", self.max_size as f64),
            ("avg_size", self.avg_size),
            ("fused_size", self.fused_size as f64),
            ("compaction_ratio", self.compaction_ratio()),
            ("infer_cpu_seconds", self.infer_cpu.as_secs_f64()),
            ("fuse_cpu_seconds", self.fuse_cpu.as_secs_f64()),
            ("wall_seconds", self.wall.as_secs_f64()),
        ];
        for (k, v) in values {
            report.values.insert(k.to_string(), v);
        }
        report
            .meta
            .insert("schema".to_string(), self.schema.to_string());
        report
    }
}

fn type_hash(t: &Type) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Run one experiment: stream `records` records of `profile` through
/// inference and fusion across `partitions` parallel partitions.
pub fn run_scale(config: &ScaleConfig) -> ScaleResult {
    let runtime = Runtime::new(config.workers);
    let wall_start = Instant::now();

    // Partition index ranges (contiguous, like HDFS splits).
    let per_part = config.records / config.partitions as u64;
    let remainder = config.records % config.partitions as u64;
    let ranges: Vec<(u64, u64)> = (0..config.partitions as u64)
        .map(|p| {
            let extra = p.min(remainder);
            let start = p * per_part + extra;
            let len = per_part + u64::from(p < remainder);
            (start, start + len)
        })
        .collect();

    let cfg = config.fuse_config;
    let (accs, metrics) = runtime.run_indexed(&ranges, |_, &(start, end)| {
        let mut acc = PartitionAcc::empty(config.dedup);
        // Partition-local signature cache for the shape route, warm for
        // the whole range — the deployment shape of `MapPath::Shape`.
        let mut shape_cache = ShapeCache::new();
        let shape_opts = ParserOptions::default();
        let shape_rec = Recorder::disabled();
        for index in start..end {
            let value = config.profile.record(config.seed, index);
            let owned;
            let ty: &Type = match config.map_path {
                MapPath::Values => {
                    if config.measure_bytes {
                        acc.bytes += typefuse_json::to_string(&value).len() as u64 + 1;
                    }
                    let t0 = Instant::now();
                    owned = infer_type(&value);
                    acc.infer_time += t0.elapsed();
                    &owned
                }
                MapPath::Events => {
                    // Serialization is setup, not measurement: the timed
                    // section is the text-to-type fold (tokenize + infer),
                    // the work an NDJSON ingest would do per line.
                    let line = typefuse_json::to_string(&value);
                    if config.measure_bytes {
                        acc.bytes += line.len() as u64 + 1;
                    }
                    let t0 = Instant::now();
                    owned = streaming::infer_type_from_str(&line)
                        .expect("generated records serialize to valid JSON");
                    acc.infer_time += t0.elapsed();
                    &owned
                }
                MapPath::Shape => {
                    // Same text input as the events route; the timed
                    // section is signature + cache lookup, with misses
                    // replaying the event fold. A hit hands out the
                    // cached type by reference — everything downstream
                    // (stats, fusion) absorbs by reference, so a hit
                    // materializes nothing.
                    let line = typefuse_json::to_string(&value);
                    if config.measure_bytes {
                        acc.bytes += line.len() as u64 + 1;
                    }
                    let t0 = Instant::now();
                    let ty = shape_cache
                        .infer_line_ref(line.as_bytes(), &shape_opts, &shape_rec)
                        .expect("generated records serialize to valid JSON");
                    acc.infer_time += t0.elapsed();
                    ty
                }
            };

            let size = ty.size();
            acc.min_size = acc.min_size.min(size);
            acc.max_size = acc.max_size.max(size);
            acc.size_sum += size as u64;
            acc.distinct_hashes.insert(type_hash(ty));
            acc.records += 1;

            let t1 = Instant::now();
            acc.schema.absorb(cfg, ty);
            acc.fuse_time += t1.elapsed();
        }
        acc
    });

    // Per-partition rows before merging (Table 8).
    let partition_rows: Vec<(u64, usize, Duration)> = accs
        .iter()
        .map(|a| {
            (
                a.records,
                a.distinct_hashes.len(),
                a.infer_time + a.fuse_time,
            )
        })
        .collect();
    let partition_cpu: Vec<(Duration, Duration)> =
        accs.iter().map(|a| (a.infer_time, a.fuse_time)).collect();
    let stage = metrics.stage_report("partitions");

    // Merge: distinct sets union, min/max/sum fold, schemas fuse (the
    // cheap final step the paper highlights).
    let mut merged = PartitionAcc::empty(config.dedup);
    for acc in accs {
        merged.records += acc.records;
        merged.bytes += acc.bytes;
        merged.min_size = merged.min_size.min(acc.min_size);
        merged.max_size = merged.max_size.max(acc.max_size);
        merged.size_sum += acc.size_sum;
        merged.distinct_hashes.extend(&acc.distinct_hashes);
        merged.infer_time += acc.infer_time;
        merged.fuse_time += acc.fuse_time;
        let t = Instant::now();
        merged.schema.merge(cfg, &acc.schema);
        merged.fuse_time += t.elapsed();
    }
    let _ = ReducePlan::default(); // topology ablations live in the benches

    let schema = merged.schema.schema();
    ScaleResult {
        workers: config.workers.max(1),
        records: merged.records,
        bytes: merged.bytes,
        distinct_types: merged.distinct_hashes.len(),
        min_size: if merged.records == 0 {
            0
        } else {
            merged.min_size
        },
        max_size: merged.max_size,
        avg_size: if merged.records == 0 {
            0.0
        } else {
            merged.size_sum as f64 / merged.records as f64
        },
        fused_size: schema.size(),
        schema,
        infer_cpu: merged.infer_time,
        fuse_cpu: merged.fuse_time,
        wall: wall_start.elapsed(),
        partition_rows,
        partition_cpu,
        stage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_materialised_pipeline() {
        let n = 300u64;
        let streamed = run_scale(&ScaleConfig::new(Profile::Twitter, n).partitions(4));
        let values: Vec<_> = Profile::Twitter.generate(20170321, n as usize).collect();
        let materialised = typefuse::pipeline::SchemaJob::new().run_values(values);
        assert_eq!(streamed.schema, materialised.schema);
        assert_eq!(streamed.records, n);
        assert_eq!(streamed.distinct_types, materialised.type_stats.distinct);
        assert_eq!(streamed.min_size, materialised.type_stats.min_size);
        assert_eq!(streamed.max_size, materialised.type_stats.max_size);
        assert!((streamed.avg_size - materialised.type_stats.avg_size).abs() < 1e-9);
    }

    #[test]
    fn event_route_matches_value_route() {
        for profile in [Profile::GitHub, Profile::NYTimes] {
            let via_values = run_scale(&ScaleConfig::new(profile, 150).partitions(5));
            let via_events = run_scale(
                &ScaleConfig::new(profile, 150)
                    .partitions(5)
                    .map_path(MapPath::Events),
            );
            assert_eq!(via_events.schema, via_values.schema, "{profile}");
            assert_eq!(via_events.distinct_types, via_values.distinct_types);
            assert_eq!(via_events.records, via_values.records);
        }
    }

    #[test]
    fn dedup_reduce_matches_plain_reduce() {
        for profile in Profile::ALL {
            let plain = run_scale(&ScaleConfig::new(profile, 200).partitions(5));
            let dedup = run_scale(&ScaleConfig::new(profile, 200).partitions(5).dedup());
            assert_eq!(dedup.schema, plain.schema, "{profile}");
            assert_eq!(dedup.records, plain.records);
            assert_eq!(dedup.distinct_types, plain.distinct_types);
            assert_eq!(dedup.fused_size, plain.fused_size);
        }
    }

    #[test]
    fn partition_rows_sum_to_total() {
        let r = run_scale(&ScaleConfig::new(Profile::GitHub, 100).partitions(7));
        assert_eq!(r.partition_rows.len(), 7);
        let total: u64 = r.partition_rows.iter().map(|(n, _, _)| n).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn bytes_only_when_requested() {
        let without = run_scale(&ScaleConfig::new(Profile::GitHub, 20));
        assert_eq!(without.bytes, 0);
        let with = run_scale(&ScaleConfig::new(Profile::GitHub, 20).measure_bytes());
        assert!(with.bytes > 10_000, "bytes = {}", with.bytes);
    }

    #[test]
    fn zero_records() {
        let r = run_scale(&ScaleConfig::new(Profile::NYTimes, 0));
        assert_eq!(r.records, 0);
        assert_eq!(r.fused_size, 1, "ε has size 1");
        assert_eq!(r.distinct_types, 0);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let a = run_scale(
            &ScaleConfig::new(Profile::Wikidata, 120)
                .workers(1)
                .partitions(6),
        );
        let b = run_scale(
            &ScaleConfig::new(Profile::Wikidata, 120)
                .workers(4)
                .partitions(6),
        );
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.distinct_types, b.distinct_types);
    }

    #[test]
    fn run_report_mirrors_the_result() {
        let r = run_scale(
            &ScaleConfig::new(Profile::GitHub, 50)
                .partitions(4)
                .measure_bytes(),
        );
        let report = r.run_report();
        assert_eq!(report.counters["records"], 50);
        assert_eq!(report.counters["json.bytes"], r.bytes);
        assert_eq!(report.stages.len(), 1);
        assert_eq!(report.stages[0].name, "partitions");
        assert_eq!(report.stages[0].tasks.len(), 4);
        assert_eq!(report.histograms["partition.execute_ns"].count, 4);
        assert_eq!(report.histograms["partition.infer_ns"].count, 4);
        assert_eq!(report.values["fused_size"], r.fused_size as f64);
        assert_eq!(report.meta["schema"], r.schema.to_string());
        // Same shape as the pipeline's report: serializes with the
        // standard top-level keys.
        let json = report.to_json();
        for key in ["\"counters\"", "\"stages\"", "\"values\"", "\"meta\""] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn stage_metrics_cover_every_partition_worker() {
        let r = run_scale(
            &ScaleConfig::new(Profile::Twitter, 200)
                .workers(3)
                .partitions(8),
        );
        assert_eq!(r.workers, 3);
        assert_eq!(r.stage.tasks.len(), 8);
        for task in &r.stage.tasks {
            assert!(task.worker < 3, "worker {} out of pool", task.worker);
            assert!(task.execute_ns > 0);
        }
        let u = r.utilization();
        assert_eq!(u.workers.len(), 3);
        assert_eq!(u.workers.iter().map(|w| w.tasks).sum::<u64>(), 8);
        // Each worker's busy intervals are disjoint, so its busy time
        // is bounded by the stage wall (the makespan consistency the
        // BENCH trajectory property-tests at scale).
        for w in &u.workers {
            assert!(
                w.busy_ns <= u.wall_ns,
                "worker {} busy {} > wall {}",
                w.worker,
                w.busy_ns,
                u.wall_ns
            );
        }
    }

    #[test]
    fn uneven_partitioning_covers_every_record() {
        // 10 records over 3 partitions: 4+3+3.
        let r = run_scale(&ScaleConfig::new(Profile::GitHub, 10).partitions(3));
        let sizes: Vec<u64> = r.partition_rows.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }
}
