//! # typefuse-bench
//!
//! The experiment harness that regenerates every table of the paper's
//! evaluation (Section 6). The heavy lifting lives here so it can be
//! shared by the `tables` binary, the criterion benches and the harness's
//! own tests.
//!
//! Unlike [`typefuse::pipeline::SchemaJob`], the [`run_scale`] runner is
//! *streaming*: records are generated, inferred and fused partition by
//! partition without ever materialising the dataset, so the paper's
//! 1M-record scale fits in a laptop's memory. This mirrors what Spark
//! does — the RDD of values never lives in one place either.

// `deny` instead of `forbid`: the counting allocator in [`alloc`]
// needs the one `unsafe impl` the `GlobalAlloc` contract requires,
// behind a scoped allow. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod report;
pub mod runner;
pub mod tables;
pub mod trajectory;

pub use runner::{run_scale, ScaleConfig, ScaleResult};
pub use tables::{Scale, DEFAULT_SCALES};
pub use trajectory::{compare, BenchReport, BenchRun, Comparison, Verdict, BENCH_SCHEMA_VERSION};
