//! The perf-trajectory format behind `typefuse bench`: a
//! schema-versioned `BENCH_<gitsha>.json` snapshot of the standard
//! workload matrix, plus the comparator that gates regressions.
//!
//! One [`BenchRun`] records a single `(profile, records, partitions,
//! workers, map-path, dedup)` cell: throughput (records/s and MB/s),
//! wall and CPU time, per-stage duration histograms with p50/p90/p99
//! from [`typefuse_obs::LogHistogram`], peak RSS, allocation counters,
//! and the per-worker [`typefuse_obs::UtilizationReport`] reconstructed
//! from the thread pool's real task timings — the live analogue of the
//! paper's Table 7/8 cluster under-utilisation.
//!
//! A [`BenchReport`] is a set of runs stamped with the git revision
//! that produced them. Reports serialize through the same hand-rolled
//! [`JsonWriter`] the rest of the workspace uses (byte-deterministic
//! for a given report) and parse back through `typefuse-json`, so the
//! trajectory file round-trips without any external dependency.
//! [`compare`] diffs two reports run-by-run with a percentage
//! tolerance; `typefuse bench compare` turns its verdict into exit
//! code 6.

use std::collections::BTreeMap;

use typefuse_datagen::DatasetProfile;
use typefuse_json::Value;
use typefuse_obs::{BucketCount, HistogramReport, JsonWriter, UtilizationReport, WorkerSlice};

use crate::alloc::AllocSnapshot;
use crate::runner::{ScaleConfig, ScaleResult};

/// Version of the `BENCH_*.json` layout — the shared response-envelope
/// version ([`typefuse_obs::ENVELOPE_VERSION`]): the report is an
/// envelope of kind `bench`. Bump on breaking shape changes;
/// [`BenchReport::from_json`] refuses versions it does not know, so
/// `bench compare` fails loudly instead of misreading.
pub const BENCH_SCHEMA_VERSION: u64 = typefuse_obs::ENVELOPE_VERSION;

/// One cell of the workload matrix, fully described and measured.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Dataset profile name (`github`, `twitter`, …).
    pub profile: String,
    /// Records processed.
    pub records: u64,
    /// Partition count.
    pub partitions: u64,
    /// Worker threads.
    pub workers: u64,
    /// Map route: `values` or `events`.
    pub map_path: String,
    /// Whether the reduce deduplicated shapes.
    pub dedup: bool,
    /// Wall-clock nanoseconds of the whole run.
    pub wall_ns: u64,
    /// CPU nanoseconds spent inferring (summed over partitions).
    pub infer_cpu_ns: u64,
    /// CPU nanoseconds spent fusing (summed over partitions).
    pub fuse_cpu_ns: u64,
    /// Serialized dataset bytes (0 unless the run measured bytes).
    pub bytes: u64,
    /// Headline throughput: records per wall-clock second.
    pub records_per_sec: f64,
    /// Throughput in MB per wall-clock second (0 when bytes were not
    /// measured).
    pub mb_per_sec: f64,
    /// Size of the fused schema.
    pub fused_size: u64,
    /// Distinct inferred type shapes.
    pub distinct_types: u64,
    /// Peak resident set in bytes at the end of the run (0 when the
    /// platform does not expose it).
    pub peak_rss_bytes: u64,
    /// Heap allocations during the run (0 unless the counting
    /// allocator is registered, as it is in the `typefuse` binary).
    pub alloc_count: u64,
    /// Bytes requested from the heap during the run (0 as above).
    pub alloc_bytes: u64,
    /// Per-stage duration histograms (`partition.execute_ns`,
    /// `partition.infer_ns`, …) with p50/p90/p99 rollups.
    pub stage_histograms: BTreeMap<String, HistogramReport>,
    /// Per-worker busy/queue-wait utilization of the partition stage.
    pub utilization: UtilizationReport,
}

impl BenchRun {
    /// The identity of this matrix cell — two runs compare when their
    /// keys match.
    pub fn key(&self) -> String {
        format!(
            "{}/r{}/p{}/w{}/{}/{}",
            self.profile,
            self.records,
            self.partitions,
            self.workers,
            self.map_path,
            if self.dedup { "dedup" } else { "plain" }
        )
    }

    /// Package a finished [`ScaleResult`] (plus the allocation delta
    /// observed around it) as one trajectory cell.
    pub fn from_scale(config: &ScaleConfig, result: &ScaleResult, alloc: AllocSnapshot) -> Self {
        let wall_secs = result.wall.as_secs_f64();
        let per_sec = |amount: f64| {
            if wall_secs > 0.0 {
                amount / wall_secs
            } else {
                0.0
            }
        };
        BenchRun {
            profile: config.profile.name().to_string(),
            records: result.records,
            partitions: config.partitions as u64,
            workers: result.workers as u64,
            map_path: match config.map_path {
                typefuse::pipeline::MapPath::Values => "values".to_string(),
                typefuse::pipeline::MapPath::Events => "events".to_string(),
                typefuse::pipeline::MapPath::Shape => "shape".to_string(),
            },
            dedup: config.dedup,
            wall_ns: result.wall.as_nanos() as u64,
            infer_cpu_ns: result.infer_cpu.as_nanos() as u64,
            fuse_cpu_ns: result.fuse_cpu.as_nanos() as u64,
            bytes: result.bytes,
            records_per_sec: per_sec(result.records as f64),
            mb_per_sec: per_sec(result.bytes as f64 / 1e6),
            fused_size: result.fused_size as u64,
            distinct_types: result.distinct_types as u64,
            peak_rss_bytes: typefuse_obs::rss::peak_rss_bytes().unwrap_or(0),
            alloc_count: alloc.allocations,
            alloc_bytes: alloc.allocated_bytes,
            stage_histograms: result.stage_histograms(),
            utilization: result.utilization(),
        }
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("profile");
        w.string(&self.profile);
        w.key("records");
        w.number(self.records);
        w.key("partitions");
        w.number(self.partitions);
        w.key("workers");
        w.number(self.workers);
        w.key("map_path");
        w.string(&self.map_path);
        w.key("dedup");
        w.bool_value(self.dedup);
        w.key("wall_ns");
        w.number(self.wall_ns);
        w.key("infer_cpu_ns");
        w.number(self.infer_cpu_ns);
        w.key("fuse_cpu_ns");
        w.number(self.fuse_cpu_ns);
        w.key("bytes");
        w.number(self.bytes);
        w.key("records_per_sec");
        w.float(self.records_per_sec);
        w.key("mb_per_sec");
        w.float(self.mb_per_sec);
        w.key("fused_size");
        w.number(self.fused_size);
        w.key("distinct_types");
        w.number(self.distinct_types);
        w.key("peak_rss_bytes");
        w.number(self.peak_rss_bytes);
        w.key("alloc_count");
        w.number(self.alloc_count);
        w.key("alloc_bytes");
        w.number(self.alloc_bytes);
        w.key("stages");
        w.begin_object();
        for (name, hist) in &self.stage_histograms {
            w.key(name);
            hist.write_json(w);
        }
        w.end_object();
        w.key("utilization");
        self.utilization.write_json(w);
        w.end_object();
    }
}

/// A full trajectory snapshot: every run of one `typefuse bench`
/// invocation, stamped with the revision that produced it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// Layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Git revision the binary was built from (`unknown` outside a
    /// checkout).
    pub git_sha: String,
    /// Free-form creation timestamp (Unix seconds when the CLI fills
    /// it).
    pub created_at: String,
    /// The measured matrix cells.
    pub runs: Vec<BenchRun>,
}

impl BenchReport {
    /// A report stamped with the current schema version.
    pub fn new(git_sha: impl Into<String>, created_at: impl Into<String>) -> Self {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            git_sha: git_sha.into(),
            created_at: created_at.into(),
            runs: Vec::new(),
        }
    }

    /// Look up a run by matrix key.
    pub fn run(&self, key: &str) -> Option<&BenchRun> {
        self.runs.iter().find(|r| r.key() == key)
    }

    /// Serialize as a `BENCH_*.json` document: the workspace response
    /// envelope (`{"schema_version", "kind": "bench", "payload"}`)
    /// around the report body. Byte-deterministic for a given report:
    /// maps are ordered, floats format canonically.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema_version");
        w.number(self.schema_version);
        w.key("kind");
        w.string("bench");
        w.key("payload");
        w.begin_object();
        w.key("git_sha");
        w.string(&self.git_sha);
        w.key("created_at");
        w.string(&self.created_at);
        w.key("runs");
        w.begin_array();
        for run in &self.runs {
            run.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Parse a `BENCH_*.json` document produced by [`Self::to_json`].
    /// The shared envelope reader rejects unknown `schema_version`s and
    /// foreign `kind`s. Derived JSON fields (mean, quantiles,
    /// utilization fractions) are recomputed, not read.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let envelope = typefuse_json::Envelope::expect_kind(text, "bench")?;
        let top = as_object(&envelope.payload, "report")?;
        let version = envelope.schema_version;
        let runs = get(top, "runs", "report")?
            .as_array()
            .ok_or("report.runs must be an array")?
            .iter()
            .map(parse_run)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version: version,
            git_sha: get_str(top, "git_sha", "report")?,
            created_at: get_str(top, "created_at", "report")?,
            runs,
        })
    }
}

fn parse_run(value: &Value) -> Result<BenchRun, String> {
    let run = as_object(value, "run")?;
    let mut stage_histograms = BTreeMap::new();
    for (name, hist) in as_object(get(run, "stages", "run")?, "run.stages")?.iter() {
        stage_histograms.insert(name.to_string(), parse_histogram(hist, name)?);
    }
    Ok(BenchRun {
        profile: get_str(run, "profile", "run")?,
        records: get_u64(run, "records", "run")?,
        partitions: get_u64(run, "partitions", "run")?,
        workers: get_u64(run, "workers", "run")?,
        map_path: get_str(run, "map_path", "run")?,
        dedup: get(run, "dedup", "run")?
            .as_bool()
            .ok_or("run.dedup must be a boolean")?,
        wall_ns: get_u64(run, "wall_ns", "run")?,
        infer_cpu_ns: get_u64(run, "infer_cpu_ns", "run")?,
        fuse_cpu_ns: get_u64(run, "fuse_cpu_ns", "run")?,
        bytes: get_u64(run, "bytes", "run")?,
        records_per_sec: get_f64(run, "records_per_sec", "run")?,
        mb_per_sec: get_f64(run, "mb_per_sec", "run")?,
        fused_size: get_u64(run, "fused_size", "run")?,
        distinct_types: get_u64(run, "distinct_types", "run")?,
        peak_rss_bytes: get_u64(run, "peak_rss_bytes", "run")?,
        alloc_count: get_u64(run, "alloc_count", "run")?,
        alloc_bytes: get_u64(run, "alloc_bytes", "run")?,
        stage_histograms,
        utilization: parse_utilization(get(run, "utilization", "run")?)?,
    })
}

fn parse_histogram(value: &Value, ctx: &str) -> Result<HistogramReport, String> {
    let hist = as_object(value, ctx)?;
    let buckets = get(hist, "buckets", ctx)?
        .as_array()
        .ok_or_else(|| format!("{ctx}.buckets must be an array"))?
        .iter()
        .map(|b| {
            let bucket = as_object(b, "bucket")?;
            Ok(BucketCount {
                lo: get_u64(bucket, "lo", "bucket")?,
                hi: get_u64(bucket, "hi", "bucket")?,
                count: get_u64(bucket, "count", "bucket")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(HistogramReport {
        count: get_u64(hist, "count", ctx)?,
        sum: get_u64(hist, "sum", ctx)?,
        min: get_u64(hist, "min", ctx)?,
        max: get_u64(hist, "max", ctx)?,
        buckets,
    })
}

fn parse_utilization(value: &Value) -> Result<UtilizationReport, String> {
    let util = as_object(value, "utilization")?;
    let workers = get(util, "workers", "utilization")?
        .as_array()
        .ok_or("utilization.workers must be an array")?
        .iter()
        .map(|slice| {
            let s = as_object(slice, "worker slice")?;
            Ok(WorkerSlice {
                worker: get_u64(s, "worker", "worker slice")? as usize,
                tasks: get_u64(s, "tasks", "worker slice")?,
                busy_ns: get_u64(s, "busy_ns", "worker slice")?,
                queue_wait: parse_histogram(get(s, "queue_wait", "worker slice")?, "queue_wait")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(UtilizationReport {
        wall_ns: get_u64(util, "wall_ns", "utilization")?,
        workers,
    })
}

fn as_object<'a>(value: &'a Value, ctx: &str) -> Result<&'a typefuse_json::Map, String> {
    value
        .as_object()
        .ok_or_else(|| format!("{ctx} must be a JSON object"))
}

fn get<'a>(map: &'a typefuse_json::Map, key: &str, ctx: &str) -> Result<&'a Value, String> {
    map.get(key)
        .ok_or_else(|| format!("{ctx} is missing `{key}`"))
}

fn get_u64(map: &typefuse_json::Map, key: &str, ctx: &str) -> Result<u64, String> {
    let value = get(map, key, ctx)?;
    value
        .as_i64()
        .and_then(|i| u64::try_from(i).ok())
        .or_else(|| match value.as_f64() {
            Some(f) if f >= 0.0 => Some(f as u64),
            _ => None,
        })
        .ok_or_else(|| format!("{ctx}.{key} must be a non-negative integer"))
}

fn get_f64(map: &typefuse_json::Map, key: &str, ctx: &str) -> Result<f64, String> {
    get(map, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}.{key} must be a number"))
}

fn get_str(map: &typefuse_json::Map, key: &str, ctx: &str) -> Result<String, String> {
    get(map, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}.{key} must be a string"))
}

/// How one matrix cell moved relative to the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Faster than the baseline by more than the tolerance.
    Improvement,
    /// Within the tolerance band either way.
    Within,
    /// Slower than the baseline by more than the tolerance.
    Regression,
    /// Present in the current report but not in the baseline.
    New,
}

/// One row of a trajectory diff.
#[derive(Debug, Clone, PartialEq)]
pub struct RunComparison {
    /// The matrix key ([`BenchRun::key`]).
    pub key: String,
    /// Baseline throughput in records/s (0 for [`Verdict::New`]).
    pub baseline_rps: f64,
    /// Current throughput in records/s.
    pub current_rps: f64,
    /// Relative change in percent (positive = faster; 0 for new runs).
    pub delta_pct: f64,
    /// Classification under the tolerance.
    pub verdict: Verdict,
}

/// The outcome of diffing a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Tolerance band in percent.
    pub tolerance_pct: f64,
    /// One row per current run, in report order.
    pub runs: Vec<RunComparison>,
    /// Keys present in the baseline but absent from the current report
    /// — listed so a shrunk matrix cannot silently hide a regression.
    pub missing: Vec<String>,
}

/// Diff `current` against `baseline` on headline throughput
/// (records/s). A run regresses when it is more than `tolerance_pct`
/// percent slower than its baseline cell; it improves when it is more
/// than `tolerance_pct` percent faster; otherwise it is within the
/// band. Runs without a baseline cell are marked [`Verdict::New`], and
/// baseline cells without a current run are reported in
/// [`Comparison::missing`] — neither counts as a regression.
pub fn compare(current: &BenchReport, baseline: &BenchReport, tolerance_pct: f64) -> Comparison {
    let tolerance_pct = tolerance_pct.max(0.0);
    let runs = current
        .runs
        .iter()
        .map(|run| {
            let key = run.key();
            match baseline.run(&key) {
                None => RunComparison {
                    key,
                    baseline_rps: 0.0,
                    current_rps: run.records_per_sec,
                    delta_pct: 0.0,
                    verdict: Verdict::New,
                },
                Some(base) => {
                    let delta_pct = if base.records_per_sec > 0.0 {
                        (run.records_per_sec - base.records_per_sec) / base.records_per_sec * 100.0
                    } else {
                        0.0
                    };
                    let verdict = if delta_pct < -tolerance_pct {
                        Verdict::Regression
                    } else if delta_pct > tolerance_pct {
                        Verdict::Improvement
                    } else {
                        Verdict::Within
                    };
                    RunComparison {
                        key,
                        baseline_rps: base.records_per_sec,
                        current_rps: run.records_per_sec,
                        delta_pct,
                        verdict,
                    }
                }
            }
        })
        .collect();
    let missing = baseline
        .runs
        .iter()
        .map(BenchRun::key)
        .filter(|key| current.run(key).is_none())
        .collect();
    Comparison {
        tolerance_pct,
        runs,
        missing,
    }
}

impl Comparison {
    /// Rows classified as regressions.
    pub fn regressions(&self) -> impl Iterator<Item = &RunComparison> {
        self.runs
            .iter()
            .filter(|r| r.verdict == Verdict::Regression)
    }

    /// Whether any run regressed beyond the tolerance.
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Human-readable regression report, one line per run.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "bench compare: {} runs, tolerance ±{:.1}%\n",
            self.runs.len(),
            self.tolerance_pct
        );
        for row in &self.runs {
            let tag = match row.verdict {
                Verdict::Improvement => "IMPROVED  ",
                Verdict::Within => "ok        ",
                Verdict::Regression => "REGRESSION",
                Verdict::New => "new       ",
            };
            if row.verdict == Verdict::New {
                out.push_str(&format!(
                    "  {tag}  {:<44} {:>12.0} rec/s (no baseline)\n",
                    row.key, row.current_rps
                ));
            } else {
                out.push_str(&format!(
                    "  {tag}  {:<44} {:>12.0} -> {:>12.0} rec/s ({:+.1}%)\n",
                    row.key, row.baseline_rps, row.current_rps, row.delta_pct
                ));
            }
        }
        for key in &self.missing {
            out.push_str(&format!("  MISSING     {key} (in baseline, not re-run)\n"));
        }
        let regressions = self.regressions().count();
        if regressions > 0 {
            out.push_str(&format!("{regressions} regression(s) beyond tolerance\n"));
        } else {
            out.push_str("no regressions\n");
        }
        out
    }
}
