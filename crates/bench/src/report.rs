//! Plain-text table formatting for the `tables` binary.

use std::time::Duration;

/// A text table with a header row, built row by row, rendered with
/// right-aligned columns (matching the paper's layout).
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns: first column left-aligned, the rest
    /// right-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad));
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// `2.85 min` / `4.2 s` / `310 ms` — the paper mixes units; pick the
/// natural one.
pub fn human_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 90.0 {
        format!("{:.2} min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.1} s")
    } else {
        format!("{:.0} ms", secs * 1e3)
    }
}

/// Thousands separators: `312,458` like the paper's tables.
pub fn human_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "count"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "12345"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn human_durations() {
        assert_eq!(human_duration(Duration::from_millis(310)), "310 ms");
        assert_eq!(human_duration(Duration::from_secs_f64(4.23)), "4.2 s");
        assert_eq!(human_duration(Duration::from_secs_f64(171.0)), "2.85 min");
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(7), "7");
        assert_eq!(human_count(1234), "1,234");
        assert_eq!(human_count(312458), "312,458");
        assert_eq!(human_count(1_000_000), "1,000,000");
    }
}
