//! `tables` — regenerate every table of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p typefuse-bench --bin tables            # all tables, 100K scale
//! cargo run --release -p typefuse-bench --bin tables -- --max-records 1000000
//! cargo run --release -p typefuse-bench --bin tables -- table3 table7
//! ```
//!
//! Output is the paper's table layout with our measured values; paste the
//! results into EXPERIMENTS.md next to the paper's numbers.

use typefuse_bench::report::{human_count, human_duration, TextTable};
use typefuse_bench::tables;
use typefuse_bench::{Scale, DEFAULT_SCALES};
use typefuse_datagen::Profile;
use typefuse_engine::sim::SimReport;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_records: u64 = 100_000;
    let mut metrics_json: Option<String> = None;
    let mut dedup = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--dedup" => dedup = true,
            "--max-records" => {
                max_records = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-records needs a number"));
            }
            "--metrics-json" => {
                metrics_json = Some(
                    iter.next()
                        .unwrap_or_else(|| die("--metrics-json needs a path")),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: tables [--max-records N] [--metrics-json F] [--dedup] \
                     [table1 table2 ... table8]"
                );
                return;
            }
            t if t.starts_with("table") => wanted.push(t.to_string()),
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let scales: Vec<Scale> = DEFAULT_SCALES
        .iter()
        .copied()
        .filter(|s| s.records <= max_records)
        .collect();
    if scales.is_empty() {
        die("--max-records below 1000 leaves no scales to run");
    }
    let all = wanted.is_empty();
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    println!(
        "typefuse experiment harness — scales: {}\n",
        scales
            .iter()
            .map(|s| s.label)
            .collect::<Vec<_>>()
            .join(", ")
    );

    if want("table1") {
        print_table1(&scales);
    }
    for (name, profile, paper) in [
        ("table2", Profile::GitHub, "Table 2 (GitHub)"),
        ("table3", Profile::Twitter, "Table 3 (Twitter)"),
        ("table4", Profile::Wikidata, "Table 4 (Wikidata)"),
        ("table5", Profile::NYTimes, "Table 5 (NYTimes)"),
    ] {
        if want(name) {
            print_table_types(paper, profile, &scales);
        }
    }
    if want("table6") {
        print_table6(&scales);
    }
    if want("table7") || want("table8") {
        let sample = 2_000.min(max_records).max(200);
        let cpu = tables::calibrate_cpu_cost(sample);
        println!(
            "cluster simulation calibrated at {:.1} µs/record (measured on this machine)\n",
            cpu * 1e6
        );
        if want("table7") {
            print_sim(
                "Table 7 — NYTimes on the cluster, single-node block placement",
                tables::table7(cpu),
            );
        }
        if want("table8") {
            print_sim(
                "Table 8a — same job with partitioned (spread) placement",
                tables::table8_sim(cpu),
            );
            print_table8_local(max_records.min(200_000));
        }
    }

    if dedup {
        print_dedup_comparison(scales.last().expect("scales checked non-empty"));
    }

    // The machine-readable counterpart of the tables above: one scale
    // run serialized as the same RunReport struct `typefuse infer
    // --metrics-json` emits.
    if let Some(path) = metrics_json {
        let records = scales.last().expect("scales checked non-empty").records;
        let mut config =
            typefuse_bench::ScaleConfig::new(Profile::Twitter, records).measure_bytes();
        config.dedup = dedup;
        let result = typefuse_bench::run_scale(&config);
        let mut report = result.run_report();
        report
            .meta
            .insert("profile".to_string(), Profile::Twitter.to_string());
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            die(&format!("cannot write {path}: {e}"));
        }
        println!(
            "wrote run report ({} records, Twitter profile) to {path}",
            records
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("tables: {msg}");
    std::process::exit(2)
}

fn print_table1(scales: &[Scale]) {
    println!("Table 1 — (sub-)dataset sizes (synthetic profiles, serialized NDJSON)");
    let mut t = TextTable::new(
        std::iter::once("Dataset".to_string())
            .chain(scales.iter().map(|s| s.label.to_string()))
            .collect(),
    );
    let rows = tables::table1(scales);
    for profile in Profile::ALL {
        let mut cells = vec![profile.to_string()];
        for (p, _, bytes) in rows.iter().filter(|(p, _, _)| *p == profile) {
            debug_assert_eq!(*p, profile);
            cells.push(typefuse_datagen::stats::human_bytes(*bytes));
        }
        t.row(cells);
    }
    println!("{}", t.render());
}

fn print_table_types(title: &str, profile: Profile, scales: &[Scale]) {
    println!("{title} — inferred vs fused type sizes");
    let mut t = TextTable::new(vec![
        "scale",
        "# types",
        "min",
        "max",
        "avg",
        "fused size",
        "ratio",
    ]);
    for (scale, r) in tables::table_types(profile, scales) {
        t.row(vec![
            scale.label.to_string(),
            human_count(r.distinct_types as u64),
            r.min_size.to_string(),
            r.max_size.to_string(),
            format!("{:.1}", r.avg_size),
            human_count(r.fused_size as u64),
            format!("{:.2}", r.compaction_ratio()),
        ]);
    }
    println!("{}", t.render());
}

fn print_table6(scales: &[Scale]) {
    println!("Table 6 — typing execution times (this machine, all cores)");
    let mut t = TextTable::new(vec![
        "dataset",
        "scale",
        "infer (cpu)",
        "fuse (cpu)",
        "wall",
    ]);
    for (profile, scale, infer, fuse, wall) in tables::table6(scales) {
        t.row(vec![
            profile.to_string(),
            scale.label.to_string(),
            human_duration(infer),
            human_duration(fuse),
            human_duration(wall),
        ]);
    }
    println!("{}", t.render());
}

fn print_sim(title: &str, report: SimReport) {
    println!("{title}");
    println!(
        "  makespan {}   busy nodes {} of {}   local tasks {} / remote {}   utilization {:.0}%",
        human_duration(std::time::Duration::from_secs_f64(report.makespan)),
        report.busy_nodes(),
        report.node_busy.len(),
        report.local_tasks(),
        report.remote_tasks(),
        report.utilization() * 100.0,
    );
    for (node, busy) in report.node_busy.iter().enumerate() {
        let width = if report.max_node_busy() > 0.0 {
            ((busy / report.max_node_busy()) * 32.0).round() as usize
        } else {
            0
        };
        println!(
            "    node {node}  {:>9.1} core-s  {}",
            busy,
            "#".repeat(width)
        );
    }
    println!();
}

/// `--dedup`: fuse CPU time per profile, plain fold vs shape-dedup
/// reduce, with an agreement guard (the schemas must match before the
/// speedup means anything).
fn print_dedup_comparison(scale: &Scale) {
    use typefuse_bench::{run_scale, ScaleConfig};
    println!(
        "Shape-dedup reduce — fuse CPU time at {} records, plain vs dedup",
        human_count(scale.records)
    );
    let mut t = TextTable::new(vec!["dataset", "fuse plain", "fuse dedup", "speedup"]);
    for profile in Profile::ALL {
        let plain = run_scale(&ScaleConfig::new(profile, scale.records));
        let deduped = run_scale(&ScaleConfig::new(profile, scale.records).dedup());
        assert_eq!(
            deduped.schema, plain.schema,
            "{profile}: dedup reduce diverged from the plain fold"
        );
        let speedup = plain.fuse_cpu.as_secs_f64() / deduped.fuse_cpu.as_secs_f64().max(1e-9);
        t.row(vec![
            profile.to_string(),
            human_duration(plain.fuse_cpu),
            human_duration(deduped.fuse_cpu),
            format!("{speedup:.1}x"),
        ]);
    }
    println!("{}", t.render());
}

fn print_table8_local(records: u64) {
    println!(
        "Table 8b — partition-at-a-time processing measured locally ({} NYTimes records, 4 partitions)",
        human_count(records)
    );
    let (rows, _residual) = tables::table8_local(records);
    let mut t = TextTable::new(vec!["partition", "objects", "types", "time"]);
    for (i, (objects, types, time)) in rows.iter().enumerate() {
        t.row(vec![
            format!("partition {}", i + 1),
            human_count(*objects),
            human_count(*types as u64),
            human_duration(*time),
        ]);
    }
    println!("{}", t.render());
}
