//! One function per table of the paper's evaluation. Each returns
//! structured rows; the `tables` binary formats them and EXPERIMENTS.md
//! records them.

use crate::runner::{run_scale, ScaleConfig, ScaleResult};
use std::time::Duration;
use typefuse_datagen::Profile;
use typefuse_engine::sim::{simulate, ClusterSpec, Placement, SimReport, Workload};

/// A record-count scale with its paper-style label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Paper label (`1K`, `10K`, `100K`, `1M`).
    pub label: &'static str,
    /// Number of records.
    pub records: u64,
}

/// The paper's four sub-dataset scales.
pub const DEFAULT_SCALES: [Scale; 4] = [
    Scale {
        label: "1K",
        records: 1_000,
    },
    Scale {
        label: "10K",
        records: 10_000,
    },
    Scale {
        label: "100K",
        records: 100_000,
    },
    Scale {
        label: "1M",
        records: 1_000_000,
    },
];

/// Pick the scales up to `max_records` (so the harness can run scaled
/// down on small machines).
pub fn scales_up_to(max_records: u64) -> Vec<Scale> {
    DEFAULT_SCALES
        .iter()
        .copied()
        .filter(|s| s.records <= max_records)
        .collect()
}

/// Table 1: serialized sub-dataset sizes for every profile and scale.
pub fn table1(scales: &[Scale]) -> Vec<(Profile, Scale, u64)> {
    let mut rows = Vec::new();
    for profile in Profile::ALL {
        for &scale in scales {
            let r = run_scale(&ScaleConfig::new(profile, scale.records).measure_bytes());
            rows.push((profile, scale, r.bytes));
        }
    }
    rows
}

/// Tables 2–5: distinct/min/max/avg/fused columns for one profile across
/// the scales. (Table 2 = GitHub, 3 = Twitter, 4 = Wikidata, 5 = NYTimes.)
pub fn table_types(profile: Profile, scales: &[Scale]) -> Vec<(Scale, ScaleResult)> {
    scales
        .iter()
        .map(|&scale| (scale, run_scale(&ScaleConfig::new(profile, scale.records))))
        .collect()
}

/// Table 6: inference + fusion wall-clock times for GitHub, Twitter and
/// Wikidata across the scales, single machine.
pub fn table6(scales: &[Scale]) -> Vec<(Profile, Scale, Duration, Duration, Duration)> {
    let mut rows = Vec::new();
    for profile in [Profile::GitHub, Profile::Twitter, Profile::Wikidata] {
        for &scale in scales {
            let r = run_scale(&ScaleConfig::new(profile, scale.records));
            rows.push((profile, scale, r.infer_cpu, r.fuse_cpu, r.wall));
        }
    }
    rows
}

/// The simulated NYTimes-at-22GB workload shared by Tables 7 and 8.
///
/// `cpu_secs_per_record` should come from [`calibrate_cpu_cost`] so the
/// simulated seconds reflect this machine's real inference speed.
fn nytimes_cluster_workload(placement: Placement, cpu_secs_per_record: f64) -> Workload {
    // 1.2M records / 22 GB in 128 MB blocks ⇒ 172 blocks of ~7k records.
    let blocks = 172;
    let payloads = vec![(128_000_000u64, 1_200_000 / blocks as u64); blocks];
    Workload {
        blocks: placement.place(&payloads, ClusterSpec::default().nodes),
        cpu_secs_per_record,
    }
}

/// Measure this machine's single-core cost of generate+infer+fuse per
/// NYTimes record, for honest simulated seconds.
pub fn calibrate_cpu_cost(sample: u64) -> f64 {
    let r = run_scale(
        &ScaleConfig::new(Profile::NYTimes, sample)
            .workers(1)
            .partitions(1),
    );
    (r.infer_cpu + r.fuse_cpu).as_secs_f64() / sample.max(1) as f64
}

/// Table 7: the naive single-node block placement on the 6-node cluster —
/// reproduces "the computation was performed on two nodes while the
/// remaining four were idle".
pub fn table7(cpu_secs_per_record: f64) -> SimReport {
    let spec = ClusterSpec::default();
    simulate(
        &spec,
        &nytimes_cluster_workload(
            Placement::SingleNode {
                node: 0,
                replication: 2,
            },
            cpu_secs_per_record,
        ),
    )
}

/// Table 8, simulated leg: the same job with explicitly partitioned
/// (spread) data — every node works, makespan drops.
pub fn table8_sim(cpu_secs_per_record: f64) -> SimReport {
    let spec = ClusterSpec::default();
    simulate(
        &spec,
        &nytimes_cluster_workload(
            Placement::RoundRobin { replication: 2 },
            cpu_secs_per_record,
        ),
    )
}

/// Table 8, measured leg: process an NYTimes dataset in four isolated
/// partitions on this machine (objects / distinct types / time per
/// partition, like the paper's rows), then fuse the four schemas.
pub fn table8_local(records: u64) -> (Vec<(u64, usize, Duration)>, Duration) {
    let r = run_scale(&ScaleConfig::new(Profile::NYTimes, records).partitions(4));
    // Final fusion of per-partition schemas is inside the runner; report
    // the rows and the (tiny) residual wall overhead.
    let partial: Duration = r.partition_rows.iter().map(|(_, _, d)| *d).sum();
    let residual = r.wall.saturating_sub(partial / 4);
    (r.partition_rows, residual.min(r.wall))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: [Scale; 2] = [
        Scale {
            label: "100",
            records: 100,
        },
        Scale {
            label: "300",
            records: 300,
        },
    ];

    #[test]
    fn table1_bytes_grow_with_scale() {
        let rows = table1(&SMALL);
        assert_eq!(rows.len(), 8);
        for pair in rows.chunks(2) {
            let (p, _, small) = pair[0];
            let (_, _, large) = pair[1];
            assert!(large > small * 2, "{p}: {small} → {large}");
        }
    }

    #[test]
    fn table_types_columns_are_consistent() {
        for profile in Profile::ALL {
            for (scale, r) in table_types(profile, &SMALL) {
                assert_eq!(r.records, scale.records);
                assert!(r.min_size <= r.max_size);
                assert!(r.avg_size >= r.min_size as f64);
                assert!(r.avg_size <= r.max_size as f64);
                assert!(r.distinct_types >= 1);
                assert!(r.fused_size >= 1);
            }
        }
    }

    #[test]
    fn table6_reports_three_profiles() {
        let rows = table6(&SMALL[..1]);
        assert_eq!(rows.len(), 3);
        for (_, _, infer, fuse, wall) in rows {
            assert!(wall >= Duration::ZERO);
            assert!(infer > Duration::ZERO);
            assert!(fuse > Duration::ZERO);
        }
    }

    #[test]
    fn table7_reproduces_idle_nodes() {
        let report = table7(25e-6);
        assert_eq!(report.busy_nodes(), 2);
        assert_eq!(report.idle_nodes(), 4);
    }

    #[test]
    fn table8_sim_uses_whole_cluster_and_is_faster() {
        let naive = table7(25e-6);
        let spread = table8_sim(25e-6);
        assert_eq!(spread.idle_nodes(), 0);
        assert!(spread.makespan < naive.makespan);
    }

    #[test]
    fn table8_local_rows() {
        let (rows, _residual) = table8_local(400);
        assert_eq!(rows.len(), 4);
        let total: u64 = rows.iter().map(|(n, _, _)| n).sum();
        assert_eq!(total, 400);
        for (n, distinct, _) in rows {
            assert!(distinct <= n as usize);
        }
    }

    #[test]
    fn scales_up_to_filters() {
        assert_eq!(scales_up_to(10_000).len(), 2);
        assert_eq!(scales_up_to(1_000_000).len(), 4);
        assert_eq!(scales_up_to(10).len(), 0);
    }

    #[test]
    fn calibration_is_positive() {
        assert!(calibrate_cpu_cost(200) > 0.0);
    }
}
