//! The perf-trajectory contract: `BENCH_*.json` round-trips
//! byte-for-byte, results are deterministic across the whole execution
//! matrix, the comparator classifies every verdict correctly, and the
//! per-worker utilization accounting is consistent with the wall-clock
//! makespan on real thread-pool runs (property-tested).

use proptest::prelude::*;
use typefuse::pipeline::MapPath;
use typefuse_bench::alloc::AllocSnapshot;
use typefuse_bench::{
    compare, run_scale, BenchReport, BenchRun, ScaleConfig, Verdict, BENCH_SCHEMA_VERSION,
};
use typefuse_datagen::Profile;

fn bench_run(profile: Profile, records: u64, workers: usize, dedup: bool) -> BenchRun {
    let mut config = ScaleConfig::new(profile, records)
        .workers(workers)
        .partitions(workers * 2)
        .measure_bytes();
    if dedup {
        config = config.dedup();
    }
    let result = run_scale(&config);
    BenchRun::from_scale(&config, &result, AllocSnapshot::default())
}

fn small_report() -> BenchReport {
    let mut report = BenchReport::new("deadbee", "1700000000");
    report.runs.push(bench_run(Profile::GitHub, 120, 2, false));
    report.runs.push(bench_run(Profile::Twitter, 80, 1, true));
    report
}

// ---- BENCH JSON round-trip ------------------------------------------------

#[test]
fn bench_json_round_trips_byte_for_byte() {
    let report = small_report();
    let json = report.to_json();
    let parsed = BenchReport::from_json(&json).expect("own output parses");
    assert_eq!(parsed, report, "struct round-trip");
    assert_eq!(
        parsed.to_json(),
        json,
        "byte-deterministic re-serialization"
    );
}

#[test]
fn bench_json_preserves_every_measured_field() {
    let report = small_report();
    let parsed = BenchReport::from_json(&report.to_json()).unwrap();
    let (orig, back) = (&report.runs[0], &parsed.runs[0]);
    assert_eq!(back.key(), orig.key());
    assert_eq!(back.wall_ns, orig.wall_ns);
    assert_eq!(back.infer_cpu_ns, orig.infer_cpu_ns);
    assert_eq!(back.stage_histograms, orig.stage_histograms);
    assert_eq!(back.utilization, orig.utilization);
    assert_eq!(
        back.utilization.total_busy_ns(),
        orig.utilization.total_busy_ns()
    );
}

#[test]
fn bench_json_rejects_unknown_schema_versions() {
    let mut report = small_report();
    report.schema_version = BENCH_SCHEMA_VERSION + 1;
    let err = BenchReport::from_json(&report.to_json()).unwrap_err();
    assert!(err.contains("unsupported schema_version"), "{err}");
}

#[test]
fn bench_json_rejects_malformed_documents() {
    assert!(BenchReport::from_json("not json").is_err());
    assert!(BenchReport::from_json("{}").is_err());
    assert!(BenchReport::from_json(r#"{"schema_version":1}"#).is_err());
    // A valid envelope of the wrong kind is rejected too.
    let err = BenchReport::from_json(r#"{"schema_version":1,"kind":"metrics","payload":{}}"#)
        .unwrap_err();
    assert!(err.contains("unexpected envelope kind"), "{err}");
}

// ---- Determinism across the execution matrix ------------------------------

/// The measured *results* (schema size, distinct shapes, record and
/// byte counts) must not depend on how the run was executed: any
/// worker count, map route or reduce strategy observes the same
/// dataset. Only timings may differ.
#[test]
fn results_are_deterministic_across_workers_map_path_and_dedup() {
    let baseline = bench_run(Profile::Wikidata, 150, 1, false);
    for workers in [2, 4] {
        for map_path in [MapPath::Values, MapPath::Events] {
            for dedup in [false, true] {
                let mut config = ScaleConfig::new(Profile::Wikidata, 150)
                    .workers(workers)
                    .partitions(workers * 2)
                    .map_path(map_path)
                    .measure_bytes();
                if dedup {
                    config = config.dedup();
                }
                let result = run_scale(&config);
                let run = BenchRun::from_scale(&config, &result, AllocSnapshot::default());
                let cell = run.key();
                assert_eq!(run.records, baseline.records, "{cell}");
                assert_eq!(run.bytes, baseline.bytes, "{cell}");
                assert_eq!(run.fused_size, baseline.fused_size, "{cell}");
                assert_eq!(run.distinct_types, baseline.distinct_types, "{cell}");
            }
        }
    }
}

// ---- Compare verdict matrix -----------------------------------------------

fn synthetic_run(key_suffix: u64, rps: f64) -> BenchRun {
    let mut run = bench_run(Profile::GitHub, 40 + key_suffix, 1, false);
    run.records_per_sec = rps;
    run
}

#[test]
fn compare_classifies_improvement_within_regression_and_new() {
    let mut baseline = BenchReport::new("base", "");
    baseline.runs.push(synthetic_run(0, 1000.0));
    baseline.runs.push(synthetic_run(1, 1000.0));
    baseline.runs.push(synthetic_run(2, 1000.0));

    let mut current = BenchReport::new("head", "");
    current.runs.push(synthetic_run(0, 1500.0)); // +50% → improvement
    current.runs.push(synthetic_run(1, 950.0)); // -5%  → within ±10%
    current.runs.push(synthetic_run(2, 500.0)); // -50% → regression
    current.runs.push(synthetic_run(3, 800.0)); // not in baseline → new

    let diff = compare(&current, &baseline, 10.0);
    let verdicts: Vec<Verdict> = diff.runs.iter().map(|r| r.verdict).collect();
    assert_eq!(
        verdicts,
        vec![
            Verdict::Improvement,
            Verdict::Within,
            Verdict::Regression,
            Verdict::New
        ]
    );
    assert!(diff.has_regressions());
    assert_eq!(diff.regressions().count(), 1);
    assert!((diff.runs[2].delta_pct - -50.0).abs() < 1e-9);
    let text = diff.to_text();
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("IMPROVED"), "{text}");
    assert!(text.contains("(no baseline)"), "{text}");
}

#[test]
fn compare_reports_baseline_runs_missing_from_current() {
    let mut baseline = BenchReport::new("base", "");
    baseline.runs.push(synthetic_run(0, 1000.0));
    baseline.runs.push(synthetic_run(1, 1000.0));
    let mut current = BenchReport::new("head", "");
    current.runs.push(synthetic_run(0, 1000.0));

    let diff = compare(&current, &baseline, 10.0);
    assert!(!diff.has_regressions(), "missing is not a regression");
    assert_eq!(diff.missing, vec![synthetic_run(1, 0.0).key()]);
    assert!(diff.to_text().contains("MISSING"), "{}", diff.to_text());
}

#[test]
fn compare_against_identical_report_is_all_within() {
    let report = small_report();
    let diff = compare(&report, &report, 0.0);
    assert!(!diff.has_regressions());
    assert!(diff.runs.iter().all(|r| r.verdict == Verdict::Within));
    assert!(diff.missing.is_empty());
}

#[test]
fn compare_flags_a_2x_slowdown_but_passes_the_rerun() {
    let baseline = small_report();
    // Identical re-run: same measured numbers, different timestamp.
    let mut rerun = baseline.clone();
    rerun.created_at = "1700000001".to_string();
    assert!(!compare(&rerun, &baseline, 10.0).has_regressions());

    // Injected 2x slowdown on one cell.
    let mut slow = baseline.clone();
    slow.runs[0].records_per_sec /= 2.0;
    let diff = compare(&slow, &baseline, 10.0);
    assert_eq!(diff.regressions().count(), 1);
    assert_eq!(diff.runs[0].verdict, Verdict::Regression);
}

// ---- Utilization consistency (property-tested) ----------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a real thread-pool run of any matrix shape, the per-worker
    /// busy sums must be consistent with the wall-clock makespan: each
    /// worker's busy intervals are disjoint (so its sum is bounded by
    /// the stage wall), total busy is bounded by `wall x workers`, and
    /// every task lands on exactly one in-pool worker.
    #[test]
    fn worker_busy_sums_are_consistent_with_makespan(
        records in 50u64..300,
        workers in 1usize..5,
        partitions in 1usize..9,
        dedup in any::<bool>(),
        events in any::<bool>(),
    ) {
        let mut config = ScaleConfig::new(Profile::GitHub, records)
            .workers(workers)
            .partitions(partitions)
            .map_path(if events { MapPath::Events } else { MapPath::Values });
        if dedup {
            config = config.dedup();
        }
        let result = run_scale(&config);
        let u = result.utilization();

        // One slice per configured worker; a tiny measurement slack
        // (1µs) absorbs clock-edge effects at the stage boundary.
        let slack = 1_000u64;
        prop_assert_eq!(u.workers.len(), workers);
        prop_assert_eq!(
            u.workers.iter().map(|w| w.tasks).sum::<u64>(),
            partitions as u64
        );
        for w in &u.workers {
            prop_assert!(
                w.busy_ns <= u.wall_ns + slack,
                "worker {} busy {}ns exceeds wall {}ns",
                w.worker, w.busy_ns, u.wall_ns
            );
        }
        prop_assert!(
            u.total_busy_ns() <= (u.wall_ns + slack) * workers as u64,
            "total busy {} exceeds wall x workers {}",
            u.total_busy_ns(), u.wall_ns * workers as u64
        );
        let util = u.utilization();
        prop_assert!((0.0..=1.001).contains(&util), "utilization {util}");
        for task in &result.stage.tasks {
            prop_assert!(task.worker < workers);
        }
    }
}
