//! The type AST and its invariant-preserving constructors.

use crate::kind::TypeKind;
use std::fmt;

/// Errors raised by the checked type constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A record type listed the same key twice.
    DuplicateField(String),
    /// A union contained two distinct addends of the same kind, violating
    /// the normality invariant of Section 5.2.
    KindClash(TypeKind),
    /// A union contained a nested union (unions must be flat).
    NestedUnion,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DuplicateField(k) => write!(f, "duplicate record field {k:?}"),
            TypeError::KindClash(k) => {
                write!(f, "union has two distinct addends of kind {k}")
            }
            TypeError::NestedUnion => write!(f, "nested union in union addends"),
        }
    }
}

impl std::error::Error for TypeError {}

/// A record field: a key, the type of its values, and whether the field is
/// optional (the `?` decoration of the paper).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Field {
    /// The key.
    pub name: String,
    /// The type of the field's values.
    pub ty: Type,
    /// `true` for `l : T ?` (cardinality `?`), `false` for mandatory
    /// fields (cardinality `1`).
    pub optional: bool,
}

impl Field {
    /// A mandatory field.
    pub fn required(name: impl Into<String>, ty: Type) -> Self {
        Field {
            name: name.into(),
            ty,
            optional: false,
        }
    }

    /// An optional field.
    pub fn optional(name: impl Into<String>, ty: Type) -> Self {
        Field {
            name: name.into(),
            ty,
            optional: true,
        }
    }
}

/// A record type: fields sorted by key, keys unique.
///
/// The sorted order is a canonical form — two record types that differ only
/// in field order compare equal because both are stored sorted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RecordType {
    fields: Vec<Field>,
}

impl RecordType {
    /// The empty record type (`ERecT`).
    pub fn empty() -> Self {
        RecordType { fields: Vec::new() }
    }

    /// Build from fields, sorting by key; duplicate keys are an error.
    pub fn new(mut fields: Vec<Field>) -> Result<Self, TypeError> {
        fields.sort_by(|a, b| a.name.cmp(&b.name));
        for pair in fields.windows(2) {
            if pair[0].name == pair[1].name {
                return Err(TypeError::DuplicateField(pair[0].name.clone()));
            }
        }
        Ok(RecordType { fields })
    }

    /// Build from fields already strictly sorted by key.
    ///
    /// This is the fast path used by fusion, whose merge-join naturally
    /// produces sorted output; sortedness (which implies uniqueness) is
    /// verified in O(n).
    pub fn from_sorted(fields: Vec<Field>) -> Result<Self, TypeError> {
        for pair in fields.windows(2) {
            if pair[0].name >= pair[1].name {
                return Err(TypeError::DuplicateField(pair[1].name.clone()));
            }
        }
        Ok(RecordType { fields })
    }

    /// The fields in key order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether this is `ERecT`.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field lookup by key (binary search over the sorted fields).
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields
            .binary_search_by(|f| f.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.fields[i])
    }

    /// Consume the record type into its sorted field vector.
    pub fn into_fields(self) -> Vec<Field> {
        self.fields
    }

    /// Iterate over the mandatory fields.
    pub fn required_fields(&self) -> impl Iterator<Item = &Field> {
        self.fields.iter().filter(|f| !f.optional)
    }

    /// Iterate over the optional fields.
    pub fn optional_fields(&self) -> impl Iterator<Item = &Field> {
        self.fields.iter().filter(|f| f.optional)
    }
}

/// Incrementally build a [`RecordType`] in any field order.
///
/// ```
/// use typefuse_types::{RecordBuilder, Type};
///
/// let rt = RecordBuilder::new()
///     .required("b", Type::Num)
///     .optional("a", Type::Str)
///     .build()
///     .unwrap();
/// assert_eq!(rt.fields()[0].name, "a"); // stored sorted
/// ```
#[derive(Debug, Default)]
pub struct RecordBuilder {
    fields: Vec<Field>,
}

impl RecordBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a mandatory field.
    pub fn required(mut self, name: impl Into<String>, ty: Type) -> Self {
        self.fields.push(Field::required(name, ty));
        self
    }

    /// Add an optional field.
    pub fn optional(mut self, name: impl Into<String>, ty: Type) -> Self {
        self.fields.push(Field::optional(name, ty));
        self
    }

    /// Finish, checking key uniqueness.
    pub fn build(self) -> Result<RecordType, TypeError> {
        RecordType::new(self.fields)
    }

    /// Finish and wrap in [`Type::Record`]; panics on duplicate keys.
    /// Intended for tests and examples where keys are literals.
    pub fn into_type(self) -> Type {
        Type::Record(self.build().expect("duplicate field in RecordBuilder"))
    }
}

/// A positional array type `[T₁, …, Tₙ]` (`AT` in the paper).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ArrayType {
    elems: Vec<Type>,
}

impl ArrayType {
    /// The empty array type (`EArrT`).
    pub fn empty() -> Self {
        ArrayType { elems: Vec::new() }
    }

    /// Build from element types in positional order.
    pub fn new(elems: Vec<Type>) -> Self {
        ArrayType { elems }
    }

    /// The element types.
    pub fn elems(&self) -> &[Type] {
        &self.elems
    }

    /// Consume the array type into its element vector.
    pub fn into_elems(self) -> Vec<Type> {
        self.elems
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether this is `EArrT`.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }
}

/// A flat, kind-unique union of two or more non-union, non-`ε` types,
/// stored sorted by kind. Only constructible through [`Type::union`],
/// which establishes those invariants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Union {
    addends: Vec<Type>,
}

impl Union {
    /// The addends, sorted by kind. Always ≥ 2 of them and at most 6 (one
    /// per kind).
    pub fn addends(&self) -> &[Type] {
        &self.addends
    }

    /// The addend of the given kind, if present.
    pub fn addend_of_kind(&self, kind: TypeKind) -> Option<&Type> {
        self.addends
            .binary_search_by_key(&kind, |t| t.kind().expect("union addends have kinds"))
            .ok()
            .map(|i| &self.addends[i])
    }
}

/// A type of the paper's schema language. See the [crate docs](crate) for
/// the grammar and the normality invariant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// The empty type `ε`: no value inhabits it. It appears only as the
    /// body of a star produced by collapsing an empty array (footnote 1 of
    /// the paper) and as the neutral element of `Fuse`.
    Bottom,
    /// The type of `null`.
    Null,
    /// The type of booleans.
    Bool,
    /// The type of numbers.
    Num,
    /// The type of strings.
    Str,
    /// A record type.
    Record(RecordType),
    /// A positional array type `[T₁, …, Tₙ]`.
    Array(ArrayType),
    /// A simplified array type `[T*]`. `Star(Bottom)` is the collapse of
    /// the empty array type and denotes `{[]}`.
    Star(Box<Type>),
    /// A union of ≥2 kind-distinct types.
    Union(Union),
}

impl Type {
    /// The kind of a non-union type; `None` for `Bottom` and `Union`
    /// (which have no kind in the paper).
    pub fn kind(&self) -> Option<TypeKind> {
        match self {
            Type::Bottom | Type::Union(_) => None,
            Type::Null => Some(TypeKind::Null),
            Type::Bool => Some(TypeKind::Bool),
            Type::Num => Some(TypeKind::Num),
            Type::Str => Some(TypeKind::Str),
            Type::Record(_) => Some(TypeKind::Record),
            Type::Array(_) | Type::Star(_) => Some(TypeKind::Array),
        }
    }

    /// Convenience: an empty record type.
    pub fn empty_record() -> Type {
        Type::Record(RecordType::empty())
    }

    /// Convenience: an empty positional array type.
    pub fn empty_array() -> Type {
        Type::Array(ArrayType::empty())
    }

    /// Convenience: a starred array type `[body*]`.
    pub fn star(body: Type) -> Type {
        Type::Star(Box::new(body))
    }

    /// The paper's `∘(T)` operator: the list of non-union addends of a
    /// type. `∘(ε) = []`, `∘(T₁+…+Tₙ) = [T₁, …, Tₙ]`, `∘(T) = [T]`
    /// otherwise.
    pub fn addends(&self) -> &[Type] {
        match self {
            Type::Bottom => &[],
            Type::Union(u) => u.addends(),
            other => std::slice::from_ref(other),
        }
    }

    /// Consume the type into its list of non-union addends (the owning
    /// variant of [`Type::addends`]). `ε` yields an empty vector.
    pub fn into_addends(self) -> Vec<Type> {
        match self {
            Type::Bottom => Vec::new(),
            Type::Union(u) => u.addends,
            other => vec![other],
        }
    }

    /// The inverse of [`Type::addends`] — the paper's `⊕` operator — with
    /// normalisation: flattens nested unions, drops `ε`, deduplicates
    /// identical addends, sorts by kind.
    ///
    /// Returns [`TypeError::KindClash`] if two *distinct* addends share a
    /// kind: such a type is not normal, and this crate refuses to build
    /// it. (Fusion never attempts to: it fuses same-kind addends instead.)
    pub fn union(addends: impl IntoIterator<Item = Type>) -> Result<Type, TypeError> {
        let mut flat: Vec<Type> = Vec::new();
        for t in addends {
            match t {
                Type::Bottom => {}
                Type::Union(u) => flat.extend(u.addends.iter().cloned()),
                other => flat.push(other),
            }
        }
        flat.sort();
        flat.dedup();
        for pair in flat.windows(2) {
            if pair[0].kind() == pair[1].kind() {
                return Err(TypeError::KindClash(
                    pair[0].kind().expect("non-union addend"),
                ));
            }
        }
        Ok(match flat.len() {
            0 => Type::Bottom,
            1 => flat.pop().expect("len checked"),
            _ => Type::Union(Union { addends: flat }),
        })
    }

    /// `union` for the common infallible two-type case in tests/examples;
    /// panics on a kind clash.
    pub fn plus(self, other: Type) -> Type {
        Type::union([self, other]).expect("kind clash in Type::plus")
    }

    /// The size of the type: the number of nodes of its abstract syntax
    /// tree, the metric of Tables 2–5 ("the notion of size of a type is
    /// standard, and corresponds to the number of nodes of its AST").
    ///
    /// Convention (documented since the paper does not spell it out):
    /// every variant contributes one node; each record field contributes
    /// one node for the key plus the nodes of its type; the optionality
    /// flag does not add a node; a union contributes one node plus its
    /// addends.
    pub fn size(&self) -> usize {
        match self {
            Type::Bottom | Type::Null | Type::Bool | Type::Num | Type::Str => 1,
            Type::Record(rt) => 1 + rt.fields().iter().map(|f| 1 + f.ty.size()).sum::<usize>(),
            Type::Array(at) => 1 + at.elems().iter().map(Type::size).sum::<usize>(),
            Type::Star(body) => 1 + body.size(),
            Type::Union(u) => 1 + u.addends().iter().map(Type::size).sum::<usize>(),
        }
    }

    /// Maximum nesting depth of the type, mirroring
    /// `typefuse_json::Value::depth`.
    pub fn depth(&self) -> usize {
        match self {
            Type::Bottom | Type::Null | Type::Bool | Type::Num | Type::Str => 1,
            Type::Record(rt) => 1 + rt.fields().iter().map(|f| f.ty.depth()).max().unwrap_or(0),
            Type::Array(at) => 1 + at.elems().iter().map(Type::depth).max().unwrap_or(0),
            Type::Star(body) => 1 + body.depth(),
            Type::Union(u) => u.addends().iter().map(Type::depth).max().unwrap_or(1),
        }
    }

    /// Check the normality and well-formedness invariants of the whole
    /// tree. All constructors maintain them; this is the oracle used by
    /// property tests.
    pub fn check_invariants(&self) -> Result<(), TypeError> {
        match self {
            Type::Bottom | Type::Null | Type::Bool | Type::Num | Type::Str => Ok(()),
            Type::Record(rt) => {
                for pair in rt.fields().windows(2) {
                    if pair[0].name >= pair[1].name {
                        return Err(TypeError::DuplicateField(pair[1].name.clone()));
                    }
                }
                rt.fields().iter().try_for_each(|f| f.ty.check_invariants())
            }
            Type::Array(at) => at.elems().iter().try_for_each(Type::check_invariants),
            Type::Star(body) => body.check_invariants(),
            Type::Union(u) => {
                if u.addends().len() < 2 {
                    return Err(TypeError::NestedUnion);
                }
                for t in u.addends() {
                    match t.kind() {
                        None => return Err(TypeError::NestedUnion),
                        Some(_) => t.check_invariants()?,
                    }
                }
                for pair in u.addends().windows(2) {
                    match (pair[0].kind(), pair[1].kind()) {
                        (Some(a), Some(b)) if a == b => return Err(TypeError::KindClash(a)),
                        (Some(a), Some(b)) if a > b => return Err(TypeError::KindClash(a)),
                        _ => {}
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fields: Vec<Field>) -> Type {
        Type::Record(RecordType::new(fields).unwrap())
    }

    #[test]
    fn record_fields_are_sorted_and_unique() {
        let rt = RecordType::new(vec![
            Field::required("b", Type::Num),
            Field::optional("a", Type::Str),
        ])
        .unwrap();
        assert_eq!(rt.fields()[0].name, "a");
        assert_eq!(rt.fields()[1].name, "b");
        assert!(rt.field("a").unwrap().optional);
        assert!(rt.field("c").is_none());

        let dup = RecordType::new(vec![
            Field::required("a", Type::Num),
            Field::required("a", Type::Str),
        ]);
        assert_eq!(dup, Err(TypeError::DuplicateField("a".to_string())));
    }

    #[test]
    fn record_equality_is_order_insensitive() {
        let r1 = RecordType::new(vec![
            Field::required("x", Type::Num),
            Field::required("y", Type::Str),
        ])
        .unwrap();
        let r2 = RecordType::new(vec![
            Field::required("y", Type::Str),
            Field::required("x", Type::Num),
        ])
        .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn union_flattens_sorts_dedups() {
        let u = Type::union([
            Type::Str,
            Type::union([Type::Null, Type::Num]).unwrap(),
            Type::Str,
            Type::Bottom,
        ])
        .unwrap();
        match &u {
            Type::Union(inner) => {
                assert_eq!(inner.addends(), &[Type::Null, Type::Num, Type::Str]);
            }
            other => panic!("expected union, got {other:?}"),
        }
        u.check_invariants().unwrap();
    }

    #[test]
    fn union_of_zero_or_one_collapses() {
        assert_eq!(Type::union([]).unwrap(), Type::Bottom);
        assert_eq!(Type::union([Type::Num]).unwrap(), Type::Num);
        assert_eq!(Type::union([Type::Bottom, Type::Num]).unwrap(), Type::Num);
        assert_eq!(Type::union([Type::Num, Type::Num]).unwrap(), Type::Num);
    }

    #[test]
    fn union_rejects_kind_clash() {
        let r1 = rec(vec![Field::required("a", Type::Num)]);
        let r2 = rec(vec![Field::required("b", Type::Str)]);
        assert_eq!(
            Type::union([r1, r2]),
            Err(TypeError::KindClash(TypeKind::Record))
        );
        // Positional and starred arrays share kind 5.
        assert_eq!(
            Type::union([Type::empty_array(), Type::star(Type::Num)]),
            Err(TypeError::KindClash(TypeKind::Array))
        );
    }

    #[test]
    fn kind_assignment() {
        assert_eq!(Type::Null.kind(), Some(TypeKind::Null));
        assert_eq!(Type::empty_record().kind(), Some(TypeKind::Record));
        assert_eq!(Type::empty_array().kind(), Some(TypeKind::Array));
        assert_eq!(Type::star(Type::Num).kind(), Some(TypeKind::Array));
        assert_eq!(Type::Bottom.kind(), None);
        assert_eq!(Type::Num.plus(Type::Str).kind(), None);
    }

    #[test]
    fn addends_round_trip() {
        let u = Type::Num.plus(Type::Str);
        assert_eq!(u.addends().len(), 2);
        assert_eq!(Type::union(u.addends().to_vec()).unwrap(), u);
        assert_eq!(Type::Bottom.addends(), &[] as &[Type]);
        assert_eq!(Type::Num.addends(), &[Type::Num]);
    }

    #[test]
    fn size_counts_ast_nodes() {
        // {a: Num, b: Str} = record(1) + 2 keys + 2 basics = 5
        let t = rec(vec![
            Field::required("a", Type::Num),
            Field::required("b", Type::Str),
        ]);
        assert_eq!(t.size(), 5);
        // [Num, Str] = array(1) + 2 = 3
        assert_eq!(
            Type::Array(ArrayType::new(vec![Type::Num, Type::Str])).size(),
            3
        );
        // [Num*] = star(1) + 1 = 2
        assert_eq!(Type::star(Type::Num).size(), 2);
        // Num + Str = union(1) + 2 = 3
        assert_eq!(Type::Num.plus(Type::Str).size(), 3);
        assert_eq!(Type::Bottom.size(), 1);
        assert_eq!(Type::empty_record().size(), 1);
    }

    #[test]
    fn depth_examples() {
        assert_eq!(Type::Num.depth(), 1);
        let nested = rec(vec![Field::required(
            "a",
            rec(vec![Field::required("b", Type::star(Type::Num))]),
        )]);
        assert_eq!(nested.depth(), 4);
    }

    #[test]
    fn builder_api() {
        let t = RecordBuilder::new()
            .required("id", Type::Num)
            .optional("note", Type::Str.plus(Type::Null))
            .into_type();
        t.check_invariants().unwrap();
        assert_eq!(t.size(), 1 + (1 + 1) + (1 + 3));
    }

    #[test]
    fn union_addend_lookup_by_kind() {
        let u = match Type::Num.plus(Type::star(Type::Str)) {
            Type::Union(u) => u,
            _ => unreachable!(),
        };
        assert_eq!(u.addend_of_kind(TypeKind::Num), Some(&Type::Num));
        assert_eq!(
            u.addend_of_kind(TypeKind::Array),
            Some(&Type::star(Type::Str))
        );
        assert_eq!(u.addend_of_kind(TypeKind::Bool), None);
    }

    #[test]
    fn invariant_checker_catches_violations() {
        // A hand-built nested union cannot be constructed through the API,
        // so check_invariants on constructed types is always Ok; spot-check
        // the happy path over a non-trivial tree.
        let t = RecordBuilder::new()
            .required("a", Type::star(Type::Num.plus(Type::empty_record())))
            .optional("b", Type::Array(ArrayType::new(vec![Type::Null])))
            .into_type();
        t.check_invariants().unwrap();
    }
}
