//! Structural schema diffing — drift detection between two schemas.
//!
//! Section 3 of the paper discusses Scherzinger et al. \[21\], whose
//! NoSQL-mapping checker "is currently limited to only detect mismatches
//! between base types … a wider knowledge of schema information is needed
//! to enable the detection of other kinds of changes, like the removal or
//! renaming of attributes". With complete fused schemas those changes
//! *are* detectable: this module reports, path by path, what changed
//! between an old and a new schema — the operational tool behind
//! `typefuse diff`.

use crate::kind::TypeKind;
use crate::ty::Type;
use std::collections::BTreeSet;
use std::fmt;

/// One detected change at a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaChange {
    /// A field/path exists in the new schema but not the old.
    Added {
        /// The path, e.g. `$.user.avatar`.
        path: String,
    },
    /// A field/path existed in the old schema but not the new.
    Removed {
        /// The path.
        path: String,
    },
    /// The set of scalar/container kinds possible at the path changed.
    KindsChanged {
        /// The path.
        path: String,
        /// Kinds admitted by the old schema at this path.
        old: Vec<TypeKind>,
        /// Kinds admitted by the new schema at this path.
        new: Vec<TypeKind>,
    },
    /// A record field changed between mandatory and optional.
    OptionalityChanged {
        /// The path.
        path: String,
        /// Whether the field was optional in the old schema.
        was_optional: bool,
    },
}

impl SchemaChange {
    /// The path the change is anchored at.
    pub fn path(&self) -> &str {
        match self {
            SchemaChange::Added { path }
            | SchemaChange::Removed { path }
            | SchemaChange::KindsChanged { path, .. }
            | SchemaChange::OptionalityChanged { path, .. } => path,
        }
    }
}

impl fmt::Display for SchemaChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaChange::Added { path } => write!(f, "+ {path} (new)"),
            SchemaChange::Removed { path } => write!(f, "- {path} (removed)"),
            SchemaChange::KindsChanged { path, old, new } => {
                write!(f, "~ {path}: ")?;
                write_kinds(f, old)?;
                write!(f, " → ")?;
                write_kinds(f, new)
            }
            SchemaChange::OptionalityChanged { path, was_optional } => {
                if *was_optional {
                    write!(f, "! {path}: optional → mandatory")
                } else {
                    write!(f, "! {path}: mandatory → optional")
                }
            }
        }
    }
}

fn write_kinds(f: &mut fmt::Formatter<'_>, kinds: &[TypeKind]) -> fmt::Result {
    for (i, k) in kinds.iter().enumerate() {
        if i > 0 {
            write!(f, "+")?;
        }
        write!(f, "{k}")?;
    }
    Ok(())
}

/// Compare two schemas, reporting every added/removed path, every change
/// in the kinds possible at a shared path, and every optionality flip.
/// Changes are sorted by path.
pub fn diff(old: &Type, new: &Type) -> Vec<SchemaChange> {
    let mut changes = Vec::new();
    diff_at(old, new, "$", &mut changes);
    changes.sort_by(|a, b| {
        a.path()
            .cmp(b.path())
            .then_with(|| order_key(a).cmp(&order_key(b)))
    });
    changes
}

fn order_key(c: &SchemaChange) -> u8 {
    match c {
        SchemaChange::Removed { .. } => 0,
        SchemaChange::Added { .. } => 1,
        SchemaChange::KindsChanged { .. } => 2,
        SchemaChange::OptionalityChanged { .. } => 3,
    }
}

fn kinds_of(t: &Type) -> Vec<TypeKind> {
    t.addends().iter().filter_map(Type::kind).collect()
}

fn diff_at(old: &Type, new: &Type, path: &str, out: &mut Vec<SchemaChange>) {
    let (old_kinds, new_kinds) = (kinds_of(old), kinds_of(new));
    if old_kinds != new_kinds {
        out.push(SchemaChange::KindsChanged {
            path: path.to_string(),
            old: old_kinds.clone(),
            new: new_kinds.clone(),
        });
    }

    // Records: compare field sets on the record addend of each side.
    let old_rec = record_addend(old);
    let new_rec = record_addend(new);
    if let (Some(o), Some(n)) = (old_rec, new_rec) {
        let old_keys: BTreeSet<&str> = o.fields().iter().map(|f| f.name.as_str()).collect();
        let new_keys: BTreeSet<&str> = n.fields().iter().map(|f| f.name.as_str()).collect();
        for key in old_keys.difference(&new_keys) {
            let child = format!("{path}.{key}");
            out.push(SchemaChange::Removed {
                path: child.clone(),
            });
            collect_paths_as(&o.field(key).expect("present").ty, &child, false, out);
        }
        for key in new_keys.difference(&old_keys) {
            let child = format!("{path}.{key}");
            out.push(SchemaChange::Added {
                path: child.clone(),
            });
            collect_paths_as(&n.field(key).expect("present").ty, &child, true, out);
        }
        for key in old_keys.intersection(&new_keys) {
            let (fo, fn_) = (
                o.field(key).expect("present"),
                n.field(key).expect("present"),
            );
            let child_path = format!("{path}.{key}");
            if fo.optional != fn_.optional {
                out.push(SchemaChange::OptionalityChanged {
                    path: child_path.clone(),
                    was_optional: fo.optional,
                });
            }
            diff_at(&fo.ty, &fn_.ty, &child_path, out);
        }
    } else if let (None, Some(n)) = (old_rec, new_rec) {
        for f in n.fields() {
            out.push(SchemaChange::Added {
                path: format!("{path}.{}", f.name),
            });
        }
    } else if let (Some(o), None) = (old_rec, new_rec) {
        for f in o.fields() {
            out.push(SchemaChange::Removed {
                path: format!("{path}.{}", f.name),
            });
        }
    }

    // Arrays: recurse into the collapsed element views.
    match (array_body(old), array_body(new)) {
        (Some(o), Some(n)) => diff_at(&o, &n, &format!("{path}[]"), out),
        (None, Some(n)) => {
            // An array became possible here; its inner structure is new.
            if !matches!(n, Type::Bottom) {
                collect_paths_as(&n, &format!("{path}[]"), true, out);
            }
        }
        (Some(o), None) => {
            if !matches!(o, Type::Bottom) {
                collect_paths_as(&o, &format!("{path}[]"), false, out);
            }
        }
        (None, None) => {}
    }
}

fn record_addend(t: &Type) -> Option<&crate::ty::RecordType> {
    t.addends().iter().find_map(|a| match a {
        Type::Record(rt) => Some(rt),
        _ => None,
    })
}

/// A uniform element view of the array addend, if any: positional arrays
/// are viewed through the union of their element kinds' paths (without
/// fusing, to stay allocation-light we approximate with a collapsed
/// clone).
fn array_body(t: &Type) -> Option<Type> {
    t.addends().iter().find_map(|a| match a {
        Type::Star(body) => Some((**body).clone()),
        Type::Array(at) if !at.is_empty() => {
            // Build a best-effort union view: first element per kind.
            let mut by_kind: [Option<&Type>; 6] = Default::default();
            for elem in at.elems() {
                for addend in elem.addends() {
                    let k = addend.kind().expect("kinded") as usize;
                    by_kind[k].get_or_insert(addend);
                }
            }
            Type::union(by_kind.into_iter().flatten().cloned()).ok()
        }
        Type::Array(_) => Some(Type::Bottom),
        _ => None,
    })
}

/// Record all record paths under `t` as Added or Removed.
fn collect_paths_as(t: &Type, prefix: &str, added: bool, out: &mut Vec<SchemaChange>) {
    if let Some(rt) = record_addend(t) {
        for f in rt.fields() {
            let path = format!("{prefix}.{}", f.name);
            out.push(if added {
                SchemaChange::Added { path: path.clone() }
            } else {
                SchemaChange::Removed { path: path.clone() }
            });
            collect_paths_as(&f.ty, &path, added, out);
        }
    }
    if let Some(body) = array_body(t) {
        collect_paths_as(&body, &format!("{prefix}[]"), added, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_type;

    fn d(old: &str, new: &str) -> Vec<String> {
        diff(&parse_type(old).unwrap(), &parse_type(new).unwrap())
            .iter()
            .map(|c| c.to_string())
            .collect()
    }

    #[test]
    fn identical_schemas_have_no_diff() {
        assert!(d("{a: Num, b: Str?}", "{a: Num, b: Str?}").is_empty());
        assert!(d("Num + Str", "Num + Str").is_empty());
    }

    #[test]
    fn added_and_removed_fields() {
        assert_eq!(d("{a: Num}", "{a: Num, b: Str}"), vec!["+ $.b (new)"]);
        assert_eq!(d("{a: Num, b: Str}", "{a: Num}"), vec!["- $.b (removed)"]);
    }

    #[test]
    fn kind_changes() {
        assert_eq!(d("{a: Num}", "{a: Str}"), vec!["~ $.a: Num → Str"]);
        assert_eq!(
            d("{a: Num}", "{a: Null + Num}"),
            vec!["~ $.a: Num → Null+Num"]
        );
    }

    #[test]
    fn optionality_changes() {
        assert_eq!(
            d("{a: Num}", "{a: Num?}"),
            vec!["! $.a: mandatory → optional"]
        );
        assert_eq!(
            d("{a: Num?}", "{a: Num}"),
            vec!["! $.a: optional → mandatory"]
        );
    }

    #[test]
    fn nested_changes_carry_paths() {
        assert_eq!(
            d("{u: {id: Num, bio: Str}}", "{u: {id: Str, avatar: Str}}"),
            vec![
                "+ $.u.avatar (new)",
                "- $.u.bio (removed)",
                "~ $.u.id: Num → Str"
            ]
        );
    }

    #[test]
    fn array_element_changes() {
        assert_eq!(
            d("{ks: [{name: Str}*]}", "{ks: [{name: Str, rank: Num}*]}"),
            vec!["+ $.ks[].rank (new)"]
        );
        assert_eq!(d("[Num*]", "[Str*]"), vec!["~ $[]: Num → Str"]);
    }

    #[test]
    fn top_level_kind_change() {
        assert_eq!(d("Num", "Str"), vec!["~ $: Num → Str"]);
    }

    #[test]
    fn record_appears_in_a_union() {
        let changes = d("Str", "Str + {a: Num}");
        assert!(changes.contains(&"~ $: Str → Str+Record".to_string()));
        assert!(changes.contains(&"+ $.a (new)".to_string()));
    }

    #[test]
    fn array_appears_where_there_was_none() {
        let changes = d("{a: Num}", "{a: Num, b: [{c: Str}*]}");
        assert!(changes.contains(&"+ $.b (new)".to_string()));
        // Inner structure of the new array is reported too.
        assert!(changes.contains(&"+ $.b[].c (new)".to_string()));
    }

    #[test]
    fn diff_of_fused_schemas_detects_drift() {
        use typefuse_json::json;
        let old_batch = [json!({"id": 1, "name": "a"}), json!({"id": 2, "name": "b"})];
        let new_batch = [json!({"id": "3", "name": "c", "tags": ["x"]})];
        let fuse_all = |vals: &[typefuse_json::Value]| {
            vals.iter()
                .map(|v| {
                    // local inference to avoid a circular dev-dependency
                    fn infer(v: &typefuse_json::Value) -> Type {
                        match v {
                            typefuse_json::Value::Null => Type::Null,
                            typefuse_json::Value::Bool(_) => Type::Bool,
                            typefuse_json::Value::Number(_) => Type::Num,
                            typefuse_json::Value::String(_) => Type::Str,
                            typefuse_json::Value::Array(a) => Type::Array(
                                crate::ty::ArrayType::new(a.iter().map(infer).collect()),
                            ),
                            typefuse_json::Value::Object(m) => Type::Record(
                                crate::ty::RecordType::new(
                                    m.iter()
                                        .map(|(k, c)| crate::ty::Field::required(k, infer(c)))
                                        .collect(),
                                )
                                .unwrap(),
                            ),
                        }
                    }
                    infer(v)
                })
                .reduce(|_a, b| b) // single shapes here; last is fine
                .unwrap()
        };
        let changes = diff(&fuse_all(&old_batch), &fuse_all(&new_batch));
        let rendered: Vec<String> = changes.iter().map(|c| c.to_string()).collect();
        assert!(rendered.contains(&"+ $.tags (new)".to_string()));
        assert!(rendered.contains(&"~ $.id: Num → Str".to_string()));
    }
}
