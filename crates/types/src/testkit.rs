//! Proptest strategies for random *normal* types (feature `testkit`).
//!
//! The fusion laws (Theorems 5.2, 5.4, 5.5) are stated over normal types;
//! these strategies generate exactly those, so downstream property tests
//! can quantify over the full domain of the theorems — including starred
//! arrays, optional fields and kind-unique unions that plain inference
//! would only reach after several fusion steps.

use crate::ty::{ArrayType, Field, RecordType, Type};
use proptest::prelude::*;

pub use typefuse_json::testkit::{arb_key, arb_scalar, arb_value, arb_value_sized};

/// Strategy for basic types.
pub fn arb_basic_type() -> impl Strategy<Value = Type> {
    prop::sample::select(vec![Type::Null, Type::Bool, Type::Num, Type::Str])
}

/// Strategy for arbitrary normal types with bounded depth and width.
pub fn arb_type() -> impl Strategy<Value = Type> {
    arb_type_sized(3, 4)
}

/// Strategy with explicit recursion `depth` and container `width` bounds.
///
/// Every generated type satisfies [`Type::check_invariants`]; this is
/// itself asserted by a property test below.
pub fn arb_type_sized(depth: u32, width: usize) -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        8 => arb_basic_type(),
        1 => Just(Type::empty_record()),
        1 => Just(Type::empty_array()),
        1 => Just(Type::star(Type::Bottom)),
    ];
    leaf.prop_recursive(depth, 48, width as u32, move |inner| {
        let field = (arb_key(), inner.clone(), any::<bool>())
            .prop_map(|(name, ty, optional)| Field { name, ty, optional });
        let record = prop::collection::vec(field, 0..=width).prop_map(|fields| {
            // Deduplicate colliding keys, keeping the first occurrence.
            let mut seen = std::collections::HashSet::new();
            let unique: Vec<Field> = fields
                .into_iter()
                .filter(|f| seen.insert(f.name.clone()))
                .collect();
            Type::Record(RecordType::new(unique).expect("keys deduplicated"))
        });
        let array = prop::collection::vec(inner.clone(), 0..=width)
            .prop_map(|elems| Type::Array(ArrayType::new(elems)));
        let star = inner.clone().prop_map(Type::star);
        let union = prop::collection::vec(inner, 2..=4).prop_map(|addends| {
            // Keep at most one addend per kind to preserve normality.
            let mut by_kind: [Option<Type>; 6] = Default::default();
            for t in addends {
                for a in t.addends() {
                    let k = a.kind().expect("addends are kinded") as usize;
                    by_kind[k].get_or_insert_with(|| a.clone());
                }
            }
            Type::union(by_kind.into_iter().flatten()).expect("kinds unique")
        });
        prop_oneof![
            3 => record,
            2 => array,
            2 => star,
            2 => union,
        ]
    })
}

/// Strategy for a union-free, record-heavy type: the shape produced by the
/// Map phase (Figure 4), useful for tests that start "pre-fusion".
pub fn arb_inferred_shape(depth: u32, width: usize) -> impl Strategy<Value = Type> {
    arb_basic_type().prop_recursive(depth, 32, width as u32, move |inner| {
        let field = (arb_key(), inner.clone()).prop_map(|(name, ty)| Field {
            name,
            ty,
            optional: false,
        });
        let record = prop::collection::vec(field, 0..=width).prop_map(|fields| {
            let mut seen = std::collections::HashSet::new();
            let unique: Vec<Field> = fields
                .into_iter()
                .filter(|f| seen.insert(f.name.clone()))
                .collect();
            Type::Record(RecordType::new(unique).expect("keys deduplicated"))
        });
        let array = prop::collection::vec(inner, 0..=width)
            .prop_map(|elems| Type::Array(ArrayType::new(elems)));
        prop_oneof![2 => record, 1 => array]
    })
}

/// Strategy producing a value admitted by the given type, or `None` when
/// the type is empty (`ε` or `[…]` of an empty type).
///
/// This is a *sampler* for `⟦T⟧`, used to test that fusion only grows
/// value sets: sample `v ∈ ⟦T⟧`, then check `v ∈ ⟦Fuse(T, U)⟧`.
pub fn sample_member(t: &Type) -> BoxedStrategy<Option<typefuse_json::Value>> {
    use typefuse_json::{Map, Number, Value};
    match t {
        Type::Bottom => Just(None).boxed(),
        Type::Null => Just(Some(Value::Null)).boxed(),
        Type::Bool => any::<bool>().prop_map(|b| Some(Value::Bool(b))).boxed(),
        Type::Num => any::<i32>()
            .prop_map(|i| Some(Value::Number(Number::Int(i64::from(i)))))
            .boxed(),
        Type::Str => "[a-z]{0,6}".prop_map(|s| Some(Value::String(s))).boxed(),
        Type::Record(rt) => {
            let fields: Vec<_> = rt
                .fields()
                .iter()
                .map(|f| {
                    let name = f.name.clone();
                    let optional = f.optional;
                    (
                        Just(name),
                        sample_member(&f.ty),
                        any::<bool>().prop_map(move |skip| skip && optional),
                    )
                })
                .collect();
            fields
                .prop_map(|entries| {
                    let mut m = Map::new();
                    for (name, member, skip) in entries {
                        match member {
                            Some(v) if !skip => m.insert_unchecked(name, v),
                            Some(_) => {} // optional field omitted
                            // A mandatory field of an empty type: the whole
                            // record type is uninhabited.
                            None if !skip => return None,
                            None => {}
                        }
                    }
                    Some(Value::Object(m))
                })
                .boxed()
        }
        Type::Array(at) => {
            let elems: Vec<_> = at.elems().iter().map(sample_member).collect();
            elems
                .prop_map(|members| {
                    members
                        .into_iter()
                        .collect::<Option<Vec<_>>>()
                        .map(Value::Array)
                })
                .boxed()
        }
        Type::Star(body) => {
            let body = body.clone();
            prop::collection::vec(sample_member(&body), 0..3)
                .prop_map(|members| {
                    // Uninhabited bodies still admit the empty list.
                    Some(Value::Array(members.into_iter().flatten().collect()))
                })
                .boxed()
        }
        Type::Union(u) => {
            let samplers: Vec<_> = u.addends().iter().map(sample_member).collect();
            let n = samplers.len();
            (0..n, samplers)
                .prop_map(move |(pick, members)| {
                    members
                        .into_iter()
                        .cycle()
                        .skip(pick)
                        .take(n)
                        .flatten()
                        .next()
                })
                .boxed()
        }
    }
}

/// Check that a sampled member really is admitted — used as a sanity
/// property on the sampler itself.
pub fn assert_sampler_sound(t: &Type, v: &Option<typefuse_json::Value>) -> bool {
    match v {
        Some(v) => t.admits(v),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn generated_types_are_normal(t in arb_type()) {
            prop_assert!(t.check_invariants().is_ok(), "not normal: {}", t);
        }

        #[test]
        fn inferred_shapes_are_normal_and_union_free(t in arb_inferred_shape(3, 4)) {
            prop_assert!(t.check_invariants().is_ok());
            fn union_free(t: &Type) -> bool {
                match t {
                    Type::Union(_) => false,
                    Type::Record(rt) => rt.fields().iter().all(|f| union_free(&f.ty)),
                    Type::Array(at) => at.elems().iter().all(union_free),
                    Type::Star(b) => union_free(b),
                    _ => true,
                }
            }
            prop_assert!(union_free(&t));
        }

        #[test]
        fn notation_round_trips_on_random_types(t in arb_type()) {
            // print → parse → print is a fixpoint (the first parse may
            // canonicalise [ε*] to [], nothing else).
            let once = crate::parse_type(&t.to_string()).unwrap();
            let twice = crate::parse_type(&once.to_string()).unwrap();
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn sampler_is_sound((t, v) in arb_type().prop_flat_map(|t| {
            let s = sample_member(&t);
            (Just(t), s)
        })) {
            prop_assert!(assert_sampler_sound(&t, &v), "type {} rejected sample {:?}", t, v);
        }

        #[test]
        fn subtype_reflexive_on_random_types(t in arb_type()) {
            prop_assert!(crate::is_subtype(&t, &t));
        }

        // Soundness of the syntactic subtype check against the semantics:
        // if T <: U syntactically, every sampled member of T is admitted
        // by U.
        #[test]
        fn subtype_is_semantically_sound(
            (t, v) in arb_type().prop_flat_map(|t| {
                let s = sample_member(&t);
                (Just(t), s)
            }),
            u in arb_type(),
        ) {
            if crate::is_subtype(&t, &u) {
                if let Some(v) = v {
                    prop_assert!(u.admits(&v), "{} <: {} but member {} rejected", t, u, v);
                }
            }
        }

        // Subtyping is transitive on the types we generate.
        #[test]
        fn subtype_transitive_via_unions(t in arb_type(), u in arb_type()) {
            // t <: t+u <: t+u (trivial) and t <: t+u when kinds allow.
            if let Ok(joined) = crate::Type::union([t.clone(), u.clone()]) {
                prop_assert!(crate::is_subtype(&t, &joined));
                prop_assert!(crate::is_subtype(&u, &joined));
            }
        }

        #[test]
        fn size_and_depth_agree_with_parse(t in arb_type()) {
            let reparsed = crate::parse_type(&t.to_string()).unwrap();
            // Canonicalisation can only shrink ([ε*] → []).
            prop_assert!(reparsed.size() <= t.size());
        }
    }
}
