//! Hash-consed type interning: an arena of structurally shared type
//! shapes addressed by small integer [`TypeId`]s.
//!
//! Massive JSON datasets are structurally redundant — the paper's own
//! evaluation sees 1M GitHub values collapse to a few thousand distinct
//! inferred types — so representing every per-record type as an owned
//! [`Type`] tree wastes both memory and, worse, comparison time. The
//! [`TypeInterner`] stores each distinct shape exactly once: a shape's
//! children are `TypeId`s into the same arena, so structural equality of
//! whole trees is `u32` equality, and hashing a shape only touches one
//! node, not the subtree below it. Field-name strings are interned in a
//! parallel [`NameId`] pool shared across all record shapes.
//!
//! Interning is bottom-up ([`TypeInterner::intern`] interns children
//! before parents), which yields the arena ordering invariant exploited
//! throughout: **every shape's children have smaller ids than the shape
//! itself**. Merging two interners ([`TypeInterner::absorb`]) is therefore
//! a single linear walk of the other arena in id order, translating child
//! ids through an already-complete prefix of the translation table.

use crate::kind::TypeKind;
use crate::ty::{ArrayType, Field, RecordType, Type};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// A fast, non-cryptographic hasher in the FxHash family
/// (multiply-rotate-xor over word-sized chunks).
///
/// Interning hashes one small shape node per JSON value absorbed, so the
/// std `HashMap`'s SipHash is a measurable tax; this hasher is the usual
/// answer and is vendored here because the workspace takes no external
/// dependencies. Not DoS-resistant — use only for in-process tables whose
/// keys the process itself constructs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — the table flavour used by the
/// interner and by the fusion memo-cache in `typefuse-infer`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Handle to an interned type shape. Ids are dense indices into one
/// [`TypeInterner`]'s arena and are meaningless across interners (use
/// [`TypeInterner::absorb`] to translate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(u32);

impl TypeId {
    /// The empty type `ε` — pre-interned in every interner.
    pub const BOTTOM: TypeId = TypeId(0);
    /// `Null` — pre-interned in every interner.
    pub const NULL: TypeId = TypeId(1);
    /// `Bool` — pre-interned in every interner.
    pub const BOOL: TypeId = TypeId(2);
    /// `Num` — pre-interned in every interner.
    pub const NUM: TypeId = TypeId(3);
    /// `Str` — pre-interned in every interner.
    pub const STR: TypeId = TypeId(4);

    /// The arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to an interned field-name string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(u32);

impl NameId {
    /// The name-pool index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned record field: name, field type, optionality — the
/// id-level image of [`Field`].
pub type FieldShape = (NameId, TypeId, bool);

/// One arena node. Children are ids, so equality and hashing are shallow.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Shape {
    Bottom,
    Null,
    Bool,
    Num,
    Str,
    Record(Vec<FieldShape>),
    Array(Vec<TypeId>),
    Star(TypeId),
    Union(Vec<TypeId>),
}

/// A borrowed view of an interned shape, one level deep. Children are
/// [`TypeId`]s to be looked up in the same interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeRef<'a> {
    /// The empty type `ε`.
    Bottom,
    /// `Null`.
    Null,
    /// `Bool`.
    Bool,
    /// `Num`.
    Num,
    /// `Str`.
    Str,
    /// A record: fields sorted by (interned) key, keys unique.
    Record(&'a [FieldShape]),
    /// A positional array.
    Array(&'a [TypeId]),
    /// A starred array `[T*]`.
    Star(TypeId),
    /// A flat kind-unique union, sorted by kind, ≥ 2 addends.
    Union(&'a [TypeId]),
}

/// The hash-consing arena: each distinct type shape is stored once and
/// addressed by a [`TypeId`].
///
/// Cloning an interner clones the arena — accumulators that carry one per
/// partition rely on this (`Fuser::Acc: Clone`). An interner is not
/// shareable across threads while being mutated; per-worker interners are
/// merged with [`TypeInterner::absorb`] at combine time instead.
#[derive(Debug, Clone)]
pub struct TypeInterner {
    shapes: Vec<Shape>,
    hashes: Vec<u64>,
    shape_ids: FxHashMap<Shape, TypeId>,
    names: Vec<Arc<str>>,
    name_ids: FxHashMap<Arc<str>, NameId>,
}

impl Default for TypeInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeInterner {
    /// An interner with the five constant shapes (`ε` and the four basic
    /// types) pre-interned at their fixed [`TypeId`] constants.
    pub fn new() -> Self {
        let mut interner = TypeInterner {
            shapes: Vec::new(),
            hashes: Vec::new(),
            shape_ids: FxHashMap::default(),
            names: Vec::new(),
            name_ids: FxHashMap::default(),
        };
        for (shape, expect) in [
            (Shape::Bottom, TypeId::BOTTOM),
            (Shape::Null, TypeId::NULL),
            (Shape::Bool, TypeId::BOOL),
            (Shape::Num, TypeId::NUM),
            (Shape::Str, TypeId::STR),
        ] {
            let id = interner.intern_shape(shape);
            debug_assert_eq!(id, expect);
        }
        interner
    }

    /// Number of distinct shapes in the arena (including the five
    /// pre-interned constants).
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether the arena is empty. Never true: the constants are always
    /// present. Provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Number of distinct interned field names.
    pub fn names_len(&self) -> usize {
        self.names.len()
    }

    fn intern_shape(&mut self, shape: Shape) -> TypeId {
        if let Some(&id) = self.shape_ids.get(&shape) {
            return id;
        }
        let hash = {
            use std::hash::BuildHasher;
            self.shape_ids.hasher().hash_one(&shape)
        };
        let id = TypeId(u32::try_from(self.shapes.len()).expect("type arena overflow"));
        self.shapes.push(shape.clone());
        self.hashes.push(hash);
        self.shape_ids.insert(shape, id);
        id
    }

    /// Intern a field name, returning its pool id. Equal strings always
    /// map to equal ids within one interner.
    pub fn intern_name(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = NameId(u32::try_from(self.names.len()).expect("name pool overflow"));
        let arc: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&arc));
        self.name_ids.insert(arc, id);
        id
    }

    /// The string behind a [`NameId`].
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// Intern a full [`Type`] tree bottom-up, returning the id of its
    /// root shape. Structurally equal trees always yield the same id.
    pub fn intern(&mut self, ty: &Type) -> TypeId {
        match ty {
            Type::Bottom => TypeId::BOTTOM,
            Type::Null => TypeId::NULL,
            Type::Bool => TypeId::BOOL,
            Type::Num => TypeId::NUM,
            Type::Str => TypeId::STR,
            Type::Record(rt) => {
                let fields: Vec<FieldShape> = rt
                    .fields()
                    .iter()
                    .map(|f| (self.intern_name(&f.name), self.intern(&f.ty), f.optional))
                    .collect();
                self.intern_record(fields)
            }
            Type::Array(at) => {
                let elems: Vec<TypeId> = at.elems().iter().map(|e| self.intern(e)).collect();
                self.intern_array(elems)
            }
            Type::Star(body) => {
                let body = self.intern(body);
                self.intern_star(body)
            }
            Type::Union(u) => {
                let addends: Vec<TypeId> = u.addends().iter().map(|a| self.intern(a)).collect();
                self.intern_union(addends)
            }
        }
    }

    /// Intern a record shape from already-interned fields, which must be
    /// strictly sorted by field-name string (the merge-join in fusion
    /// produces exactly this order).
    pub fn intern_record(&mut self, fields: Vec<FieldShape>) -> TypeId {
        debug_assert!(
            fields
                .windows(2)
                .all(|w| self.name(w[0].0) < self.name(w[1].0)),
            "record fields must be strictly sorted by name"
        );
        debug_assert!(fields.iter().all(|f| f.1.index() < self.shapes.len()));
        self.intern_shape(Shape::Record(fields))
    }

    /// Intern a positional array shape from already-interned elements.
    pub fn intern_array(&mut self, elems: Vec<TypeId>) -> TypeId {
        debug_assert!(elems.iter().all(|e| e.index() < self.shapes.len()));
        self.intern_shape(Shape::Array(elems))
    }

    /// Intern a starred array shape `[body*]`.
    pub fn intern_star(&mut self, body: TypeId) -> TypeId {
        debug_assert!(body.index() < self.shapes.len());
        self.intern_shape(Shape::Star(body))
    }

    /// Intern a union of already-interned, kind-unique addends, applying
    /// the usual normalisation: `ε` addends are dropped, the rest sorted
    /// by kind; zero addends yield `ε`, one yields the addend itself.
    ///
    /// The caller must uphold kind-uniqueness (fusion does by
    /// construction: it fuses same-kind addends instead of listing them
    /// twice); that invariant is checked only in debug builds.
    pub fn intern_union(&mut self, addends: impl IntoIterator<Item = TypeId>) -> TypeId {
        let mut flat: Vec<TypeId> = addends
            .into_iter()
            .filter(|&a| a != TypeId::BOTTOM)
            .collect();
        flat.sort_by_key(|&a| {
            self.kind(a)
                .expect("union addends are non-union, non-ε shapes")
                .code()
        });
        flat.dedup();
        debug_assert!(
            flat.windows(2).all(|w| self.kind(w[0]) != self.kind(w[1])),
            "union addends must be kind-unique"
        );
        match flat.len() {
            0 => TypeId::BOTTOM,
            1 => flat[0],
            _ => self.intern_shape(Shape::Union(flat)),
        }
    }

    /// The kind of an interned shape; `None` for `ε` and unions, exactly
    /// as [`Type::kind`].
    pub fn kind(&self, id: TypeId) -> Option<TypeKind> {
        match &self.shapes[id.index()] {
            Shape::Bottom | Shape::Union(_) => None,
            Shape::Null => Some(TypeKind::Null),
            Shape::Bool => Some(TypeKind::Bool),
            Shape::Num => Some(TypeKind::Num),
            Shape::Str => Some(TypeKind::Str),
            Shape::Record(_) => Some(TypeKind::Record),
            Shape::Array(_) | Shape::Star(_) => Some(TypeKind::Array),
        }
    }

    /// A one-level view of an interned shape.
    pub fn shape(&self, id: TypeId) -> ShapeRef<'_> {
        match &self.shapes[id.index()] {
            Shape::Bottom => ShapeRef::Bottom,
            Shape::Null => ShapeRef::Null,
            Shape::Bool => ShapeRef::Bool,
            Shape::Num => ShapeRef::Num,
            Shape::Str => ShapeRef::Str,
            Shape::Record(fields) => ShapeRef::Record(fields),
            Shape::Array(elems) => ShapeRef::Array(elems),
            Shape::Star(body) => ShapeRef::Star(*body),
            Shape::Union(addends) => ShapeRef::Union(addends),
        }
    }

    /// The precomputed structural hash of an interned shape. Because
    /// children are hashed as ids, this is a hash of the whole subtree
    /// modulo hash-consing — equal trees share ids and therefore hashes.
    pub fn structural_hash(&self, id: TypeId) -> u64 {
        self.hashes[id.index()]
    }

    /// Reconstruct the owned [`Type`] tree behind an id. The result is
    /// normal by the same invariants the interning constructors maintain.
    pub fn resolve(&self, id: TypeId) -> Type {
        match &self.shapes[id.index()] {
            Shape::Bottom => Type::Bottom,
            Shape::Null => Type::Null,
            Shape::Bool => Type::Bool,
            Shape::Num => Type::Num,
            Shape::Str => Type::Str,
            Shape::Record(fields) => {
                let fields = fields
                    .iter()
                    .map(|&(name, ty, optional)| Field {
                        name: self.name(name).to_string(),
                        ty: self.resolve(ty),
                        optional,
                    })
                    .collect();
                Type::Record(
                    RecordType::from_sorted(fields).expect("interned record fields are sorted"),
                )
            }
            Shape::Array(elems) => Type::Array(ArrayType::new(
                elems.iter().map(|&e| self.resolve(e)).collect(),
            )),
            Shape::Star(body) => Type::star(self.resolve(*body)),
            Shape::Union(addends) => Type::union(addends.iter().map(|&a| self.resolve(a)))
                .expect("interned unions are normal"),
        }
    }

    /// Merge another interner's arena into this one, returning the
    /// translation table `map` with `map[other_id.index()]` = the
    /// corresponding id in `self`.
    ///
    /// Runs in one linear pass over `other`'s arena: bottom-up interning
    /// guarantees each shape's children precede it, so their translations
    /// are already in `map` when the shape itself is reached.
    pub fn absorb(&mut self, other: &TypeInterner) -> Vec<TypeId> {
        let name_map: Vec<NameId> = other
            .names
            .iter()
            .map(|name| self.intern_name(name))
            .collect();
        let mut map: Vec<TypeId> = Vec::with_capacity(other.shapes.len());
        for shape in &other.shapes {
            let translated = match shape {
                Shape::Bottom => Shape::Bottom,
                Shape::Null => Shape::Null,
                Shape::Bool => Shape::Bool,
                Shape::Num => Shape::Num,
                Shape::Str => Shape::Str,
                Shape::Record(fields) => Shape::Record(
                    fields
                        .iter()
                        .map(|&(name, ty, optional)| {
                            (name_map[name.index()], map[ty.index()], optional)
                        })
                        .collect(),
                ),
                Shape::Array(elems) => Shape::Array(elems.iter().map(|e| map[e.index()]).collect()),
                Shape::Star(body) => Shape::Star(map[body.index()]),
                Shape::Union(addends) => {
                    Shape::Union(addends.iter().map(|a| map[a.index()]).collect())
                }
            };
            map.push(self.intern_shape(translated));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::RecordBuilder;

    fn sample() -> Type {
        RecordBuilder::new()
            .required("id", Type::Num)
            .optional("tags", Type::star(Type::Str.plus(Type::Null)))
            .required(
                "actor",
                RecordBuilder::new()
                    .required("id", Type::Num)
                    .required("login", Type::Str)
                    .into_type(),
            )
            .into_type()
    }

    #[test]
    fn constants_are_fixed() {
        let mut interner = TypeInterner::new();
        assert_eq!(interner.intern(&Type::Bottom), TypeId::BOTTOM);
        assert_eq!(interner.intern(&Type::Null), TypeId::NULL);
        assert_eq!(interner.intern(&Type::Bool), TypeId::BOOL);
        assert_eq!(interner.intern(&Type::Num), TypeId::NUM);
        assert_eq!(interner.intern(&Type::Str), TypeId::STR);
        assert_eq!(interner.len(), 5);
    }

    #[test]
    fn intern_resolve_round_trip() {
        let mut interner = TypeInterner::new();
        let ty = sample();
        let id = interner.intern(&ty);
        assert_eq!(interner.resolve(id), ty);
        assert_eq!(interner.kind(id), ty.kind());
    }

    #[test]
    fn equal_trees_share_ids() {
        let mut interner = TypeInterner::new();
        let a = interner.intern(&sample());
        let before = interner.len();
        let b = interner.intern(&sample());
        assert_eq!(a, b);
        assert_eq!(interner.len(), before, "re-interning allocates nothing");
    }

    #[test]
    fn shared_subtrees_are_stored_once() {
        let mut interner = TypeInterner::new();
        let inner = RecordBuilder::new().required("x", Type::Num).into_type();
        let t1 = RecordBuilder::new()
            .required("a", inner.clone())
            .into_type();
        let t2 = RecordBuilder::new()
            .required("b", inner.clone())
            .into_type();
        interner.intern(&t1);
        let before = interner.len();
        interner.intern(&t2);
        // Only t2's root is new; the shared inner record is reused.
        assert_eq!(interner.len(), before + 1);
    }

    #[test]
    fn structural_hash_is_stable_across_interners() {
        let mut a = TypeInterner::new();
        let mut b = TypeInterner::new();
        // Interleave unrelated shapes into b so ids diverge.
        b.intern(&Type::star(Type::Bool));
        let ia = a.intern(&sample());
        let ib = b.intern(&sample());
        assert_ne!(ia, ib);
        // Hashes differ (children hashed as ids), but resolution agrees.
        assert_eq!(a.resolve(ia), b.resolve(ib));
    }

    #[test]
    fn union_constructor_normalises() {
        let mut interner = TypeInterner::new();
        assert_eq!(interner.intern_union([]), TypeId::BOTTOM);
        assert_eq!(interner.intern_union([TypeId::NUM]), TypeId::NUM);
        assert_eq!(
            interner.intern_union([TypeId::BOTTOM, TypeId::NUM]),
            TypeId::NUM
        );
        let u1 = interner.intern_union([TypeId::STR, TypeId::NUM]);
        let u2 = interner.intern_union([TypeId::NUM, TypeId::STR]);
        assert_eq!(u1, u2, "addend order does not matter");
        assert_eq!(interner.resolve(u1), Type::Num.plus(Type::Str));
    }

    #[test]
    fn absorb_translates_ids() {
        let mut left = TypeInterner::new();
        let mut right = TypeInterner::new();
        left.intern(&Type::star(Type::Num));
        let r1 = right.intern(&sample());
        let r2 = right.intern(&Type::star(Type::Num));
        let map = left.absorb(&right);
        assert_eq!(left.resolve(map[r1.index()]), sample());
        assert_eq!(left.resolve(map[r2.index()]), Type::star(Type::Num));
        // Shapes already present in `left` translate to their existing ids.
        let mut probe = left.clone();
        assert_eq!(probe.intern(&Type::star(Type::Num)), map[r2.index()]);
    }

    #[test]
    fn absorb_into_empty_is_identity() {
        let mut right = TypeInterner::new();
        right.intern(&sample());
        let mut left = TypeInterner::new();
        let map = left.absorb(&right);
        assert_eq!(map.len(), right.len());
        for (i, &id) in map.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn name_interning_dedups() {
        let mut interner = TypeInterner::new();
        let a = interner.intern_name("login");
        let b = interner.intern_name("login");
        let c = interner.intern_name("id");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(interner.name(a), "login");
        assert_eq!(interner.names_len(), 2);
    }

    #[test]
    fn fx_hasher_smoke() {
        use std::hash::{BuildHasher, Hash};
        let build = FxBuildHasher::default();
        let hash = |v: &dyn Fn(&mut FxHasher)| {
            let mut h = build.build_hasher();
            v(&mut h);
            h.finish()
        };
        assert_eq!(
            hash(&|h| 42u64.hash(h)),
            hash(&|h| 42u64.hash(h)),
            "deterministic"
        );
        assert_ne!(hash(&|h| 1u64.hash(h)), hash(&|h| 2u64.hash(h)));
        assert_ne!(hash(&|h| "ab".hash(h)), hash(&|h| "ba".hash(h)));
    }
}
