//! # typefuse-types
//!
//! The JSON type language of *Schema Inference for Massive JSON Datasets*
//! (EDBT 2017), Figure 3:
//!
//! ```text
//! T   ::= BT | RT | AT | SAT | ε | T + T          top-level types
//! BT  ::= Null | Bool | Num | Str                  basic types
//! RT  ::= {l₁: T₁ [?], …, lₙ: Tₙ [?]}              record types (opt. fields)
//! AT  ::= [T₁, …, Tₙ]                              positional array types
//! SAT ::= [T*]                                     simplified array types
//! ```
//!
//! The central invariant is *normality* (Section 5.2): in every union, each
//! [`TypeKind`] occurs **at most once** — so a union has at most six
//! addends, and fusing two normal types always yields a normal type. The
//! [`Type`] constructors in this crate enforce normality, record-key
//! uniqueness and sortedness, union flatness and minimality (no nested, no
//! unary, no `ε` addends), so that every reachable `Type` value is normal
//! by construction.
//!
//! The crate also provides the paper's companion notions:
//!
//! * [`Type::size`] — the AST-node count used by Tables 2–5,
//! * [`Type::admits`] — the semantics `V ∈ ⟦T⟧` (Section 4),
//! * [`subtype::is_subtype`] — a sound syntactic subtype check backing
//!   Definition 4.1 / Theorem 5.2,
//! * a [printer](mod@print) and [parser](notation) for the paper's schema
//!   notation,
//! * a [hash-consing interner](intern) that deduplicates structurally
//!   equal types into integer [`TypeId`]s — the substrate
//!   of the shape-dedup reduce, and
//! * a [JSON Schema exporter](export) for ecosystem interop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admits;
pub mod diff;
pub mod export;
pub mod intern;
pub mod kind;
pub mod notation;
pub mod paths;
pub mod print;
pub mod subtype;
pub mod summary;
#[cfg(any(feature = "testkit", test))]
pub mod testkit;
mod ty;
pub mod wire;

pub use intern::{NameId, TypeId, TypeInterner};
pub use kind::TypeKind;
pub use notation::parse_type;
pub use subtype::is_subtype;
pub use ty::{ArrayType, Field, RecordBuilder, RecordType, Type, TypeError, Union};
