//! Aggregate structural measurements of a schema.
//!
//! Beyond the paper's single `size` metric, a user inspecting a fused
//! schema wants to know *where* the size comes from: how many fields, how
//! many of them optional, how many unions and starred arrays, how deep.
//! The `typefuse infer --stats` output and EXPERIMENTS.md use these
//! figures to explain the per-dataset compaction behaviour (e.g.
//! Wikidata's fused size is almost entirely optional record fields from
//! ids-as-keys).

use crate::ty::Type;

/// Structural counters for one schema.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeSummary {
    /// Total AST nodes ([`Type::size`]).
    pub size: usize,
    /// Record-type nodes.
    pub records: usize,
    /// Record fields, total.
    pub fields: usize,
    /// Record fields marked optional.
    pub optional_fields: usize,
    /// Union nodes.
    pub unions: usize,
    /// Union addends, total.
    pub union_addends: usize,
    /// Starred array types.
    pub stars: usize,
    /// Positional array types.
    pub positional_arrays: usize,
    /// Basic-type leaves (`Null`/`Bool`/`Num`/`Str`).
    pub basic_leaves: usize,
    /// Maximum nesting depth ([`Type::depth`]).
    pub depth: usize,
}

impl TypeSummary {
    /// Measure a schema.
    pub fn of(t: &Type) -> TypeSummary {
        let mut s = TypeSummary {
            size: t.size(),
            depth: t.depth(),
            ..Default::default()
        };
        walk(t, &mut s);
        s
    }

    /// Fraction of fields that are optional, in `[0, 1]`.
    pub fn optional_ratio(&self) -> f64 {
        if self.fields == 0 {
            0.0
        } else {
            self.optional_fields as f64 / self.fields as f64
        }
    }
}

fn walk(t: &Type, s: &mut TypeSummary) {
    match t {
        Type::Bottom => {}
        Type::Null | Type::Bool | Type::Num | Type::Str => s.basic_leaves += 1,
        Type::Record(rt) => {
            s.records += 1;
            s.fields += rt.len();
            s.optional_fields += rt.optional_fields().count();
            for f in rt.fields() {
                walk(&f.ty, s);
            }
        }
        Type::Array(at) => {
            s.positional_arrays += 1;
            for e in at.elems() {
                walk(e, s);
            }
        }
        Type::Star(body) => {
            s.stars += 1;
            walk(body, s);
        }
        Type::Union(u) => {
            s.unions += 1;
            s.union_addends += u.addends().len();
            for a in u.addends() {
                walk(a, s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_type;

    fn summary(text: &str) -> TypeSummary {
        TypeSummary::of(&parse_type(text).unwrap())
    }

    #[test]
    fn scalar_summary() {
        let s = summary("Num");
        assert_eq!(s.basic_leaves, 1);
        assert_eq!(s.size, 1);
        assert_eq!(s.depth, 1);
        assert_eq!(s.fields, 0);
        assert_eq!(s.optional_ratio(), 0.0);
    }

    #[test]
    fn record_summary() {
        let s = summary("{a: Num, b: Str?, c: {d: Bool?}}");
        assert_eq!(s.records, 2);
        assert_eq!(s.fields, 4);
        assert_eq!(s.optional_fields, 2);
        assert_eq!(s.optional_ratio(), 0.5);
        assert_eq!(s.basic_leaves, 3);
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn union_and_array_summary() {
        let s = summary("[(Num + Str + {x: Null})*] + Bool");
        // outer union (2 addends) + inner union (3 addends)
        assert_eq!(s.unions, 2);
        assert_eq!(s.union_addends, 5);
        assert_eq!(s.stars, 1);
        assert_eq!(s.positional_arrays, 0);
        assert_eq!(s.records, 1);
    }

    #[test]
    fn positional_arrays_counted() {
        let s = summary("[Num, [Str, Bool]]");
        assert_eq!(s.positional_arrays, 2);
        assert_eq!(s.basic_leaves, 3);
    }

    #[test]
    fn size_and_depth_match_type_methods() {
        let t = parse_type("{a: [(Num + {b: Str?})*]?}").unwrap();
        let s = TypeSummary::of(&t);
        assert_eq!(s.size, t.size());
        assert_eq!(s.depth, t.depth());
    }
}
