//! Pretty-printing types in the paper's notation.
//!
//! ```text
//! {a: Str?, b: Num + Bool, c: [(Str + {d: Num})*]}
//! ```
//!
//! * optional fields get a trailing `?`;
//! * unions are printed with ` + `;
//! * positional arrays as `[T1, T2]`, starred arrays as `[T*]` with the
//!   body parenthesised when it is a union;
//! * `ε` prints as `ε`; `[ε*]` prints as `[]` (the paper's footnote:
//!   the two have the same semantics as the empty array type).
//!
//! [`Display`](std::fmt::Display) gives the compact one-line form;
//! [`pretty`] gives an indented multi-line form for large schemas (the CLI
//! uses it so that the 800-node Wikidata-like fused types stay readable).

use crate::ty::Type;
use std::fmt;

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_type(f, self)
    }
}

fn write_type<W: fmt::Write>(w: &mut W, t: &Type) -> fmt::Result {
    match t {
        Type::Bottom => w.write_str("ε"),
        Type::Null => w.write_str("Null"),
        Type::Bool => w.write_str("Bool"),
        Type::Num => w.write_str("Num"),
        Type::Str => w.write_str("Str"),
        Type::Record(rt) => {
            w.write_char('{')?;
            for (i, field) in rt.fields().iter().enumerate() {
                if i > 0 {
                    w.write_str(", ")?;
                }
                write_key(w, &field.name)?;
                w.write_str(": ")?;
                write_type(w, &field.ty)?;
                if field.optional {
                    w.write_char('?')?;
                }
            }
            w.write_char('}')
        }
        Type::Array(at) => {
            w.write_char('[')?;
            for (i, elem) in at.elems().iter().enumerate() {
                if i > 0 {
                    w.write_str(", ")?;
                }
                write_type(w, elem)?;
            }
            w.write_char(']')
        }
        Type::Star(body) => match body.as_ref() {
            // [ε*] ≡ the empty array type; print the simpler form.
            Type::Bottom => w.write_str("[]"),
            Type::Union(_) => {
                w.write_str("[(")?;
                write_type(w, body)?;
                w.write_str(")*]")
            }
            other => {
                w.write_char('[')?;
                write_type(w, other)?;
                w.write_str("*]")
            }
        },
        Type::Union(u) => {
            for (i, addend) in u.addends().iter().enumerate() {
                if i > 0 {
                    w.write_str(" + ")?;
                }
                write_type(w, addend)?;
            }
            Ok(())
        }
    }
}

/// Keys that read as identifiers are printed bare (the paper's
/// convention); anything else is quoted with JSON escaping.
fn write_key<W: fmt::Write>(w: &mut W, key: &str) -> fmt::Result {
    if is_identifier(key) {
        w.write_str(key)
    } else {
        write!(w, "{:?}", key)
    }
}

pub(crate) fn is_identifier(key: &str) -> bool {
    let mut chars = key.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '$' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '-')
}

/// Indented, multi-line rendering of a type. Records and starred arrays
/// with more than `inline_limit` AST nodes are broken over lines.
pub fn pretty(t: &Type) -> String {
    let mut out = String::new();
    let _ = write_pretty(&mut out, t, 0, 24);
    out
}

fn write_pretty<W: fmt::Write>(
    w: &mut W,
    t: &Type,
    indent: usize,
    inline_limit: usize,
) -> fmt::Result {
    const STEP: usize = 2;
    if t.size() <= inline_limit {
        return write_type(w, t);
    }
    match t {
        Type::Record(rt) => {
            w.write_str("{\n")?;
            for (i, field) in rt.fields().iter().enumerate() {
                if i > 0 {
                    w.write_str(",\n")?;
                }
                write_spaces(w, indent + STEP)?;
                write_key(w, &field.name)?;
                w.write_str(": ")?;
                write_pretty(w, &field.ty, indent + STEP, inline_limit)?;
                if field.optional {
                    w.write_char('?')?;
                }
            }
            w.write_char('\n')?;
            write_spaces(w, indent)?;
            w.write_char('}')
        }
        Type::Array(at) => {
            w.write_str("[\n")?;
            for (i, elem) in at.elems().iter().enumerate() {
                if i > 0 {
                    w.write_str(",\n")?;
                }
                write_spaces(w, indent + STEP)?;
                write_pretty(w, elem, indent + STEP, inline_limit)?;
            }
            w.write_char('\n')?;
            write_spaces(w, indent)?;
            w.write_char(']')
        }
        Type::Star(body) => match body.as_ref() {
            Type::Union(_) => {
                w.write_str("[(")?;
                write_pretty(w, body, indent, inline_limit)?;
                w.write_str(")*]")
            }
            other => {
                w.write_char('[')?;
                write_pretty(w, other, indent, inline_limit)?;
                w.write_str("*]")
            }
        },
        Type::Union(u) => {
            for (i, addend) in u.addends().iter().enumerate() {
                if i > 0 {
                    w.write_str(" + ")?;
                }
                write_pretty(w, addend, indent, inline_limit)?;
            }
            Ok(())
        }
        scalar => write_type(w, scalar),
    }
}

fn write_spaces<W: fmt::Write>(w: &mut W, n: usize) -> fmt::Result {
    for _ in 0..n {
        w.write_char(' ')?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{ArrayType, RecordBuilder, Type};

    #[test]
    fn paper_running_example() {
        // T₁₂₃ from Section 2:
        // {A: Str + Null?, B: Num + Bool, C: Str?}
        let t = RecordBuilder::new()
            .optional("A", Type::Str.plus(Type::Null))
            .required("B", Type::Num.plus(Type::Bool))
            .optional("C", Type::Str)
            .into_type();
        assert_eq!(t.to_string(), "{A: Null + Str?, B: Bool + Num, C: Str?}");
    }

    #[test]
    fn basic_forms() {
        assert_eq!(Type::Null.to_string(), "Null");
        assert_eq!(Type::Bottom.to_string(), "ε");
        assert_eq!(Type::empty_record().to_string(), "{}");
        assert_eq!(Type::empty_array().to_string(), "[]");
        assert_eq!(Type::star(Type::Bottom).to_string(), "[]");
        assert_eq!(Type::star(Type::Num).to_string(), "[Num*]");
    }

    #[test]
    fn star_union_body_is_parenthesised() {
        let t = Type::star(Type::Str.plus(Type::empty_record()));
        assert_eq!(t.to_string(), "[(Str + {})*]");
    }

    #[test]
    fn positional_arrays() {
        let t = Type::Array(ArrayType::new(vec![Type::Str, Type::Num]));
        assert_eq!(t.to_string(), "[Str, Num]");
    }

    #[test]
    fn non_identifier_keys_are_quoted() {
        let t = RecordBuilder::new()
            .required("P31", Type::Num)
            .required("has space", Type::Str)
            .required("", Type::Bool)
            .into_type();
        assert_eq!(t.to_string(), "{\"\": Bool, P31: Num, \"has space\": Str}");
    }

    #[test]
    fn identifier_detection() {
        assert!(is_identifier("abc_1"));
        assert!(is_identifier("$ref"));
        assert!(is_identifier("kebab-case"));
        assert!(!is_identifier("1abc"));
        assert!(!is_identifier("a b"));
        assert!(!is_identifier(""));
        assert!(!is_identifier("café"));
    }

    #[test]
    fn pretty_small_types_stay_inline() {
        let t = RecordBuilder::new().required("a", Type::Num).into_type();
        assert_eq!(pretty(&t), "{a: Num}");
    }

    #[test]
    fn pretty_large_types_break_lines() {
        let mut b = RecordBuilder::new();
        for i in 0..20 {
            b = b.required(format!("field_{i:02}"), Type::Str);
        }
        let p = pretty(&b.into_type());
        assert!(p.starts_with("{\n  field_00: Str,\n"));
        assert!(p.ends_with("\n}"));
    }
}
