//! Syntactic sub-typing (Definition 4.1: `T <: U ⟺ ⟦T⟧ ⊆ ⟦U⟧`).
//!
//! The paper uses sub-typing only to *state* correctness of fusion
//! (Theorem 5.2), not inside any algorithm. This module provides a
//! syntax-directed checker that is **sound** (`is_subtype(t, u)` implies
//! `⟦t⟧ ⊆ ⟦u⟧`) and complete enough to verify all of Theorem 5.2's
//! instances on normal types: because a normal union has at most one
//! addend per kind, the only completeness gaps left are pathological
//! (e.g. distributing a positional array over a union) and never arise
//! from inference or fusion.

use crate::ty::Type;

/// Sound syntactic check of `⟦sub⟧ ⊆ ⟦sup⟧`.
pub fn is_subtype(sub: &Type, sup: &Type) -> bool {
    // ∘(sub) decomposition: each addend must be included in `sup`.
    sub.addends().iter().all(|t| addend_subtype(t, sup))
}

/// `t` is a non-union type; `sup` may be a union.
fn addend_subtype(t: &Type, sup: &Type) -> bool {
    sup.addends().iter().any(|u| simple_subtype(t, u))
}

/// Both sides are non-union types.
fn simple_subtype(t: &Type, u: &Type) -> bool {
    match (t, u) {
        (Type::Null, Type::Null)
        | (Type::Bool, Type::Bool)
        | (Type::Num, Type::Num)
        | (Type::Str, Type::Str) => true,

        (Type::Record(r1), Type::Record(r2)) => {
            // Every possible key of r1 must be declared in r2 with a
            // super-type; every mandatory key of r2 must be guaranteed
            // (mandatory) in r1.
            r1.fields().iter().all(|f1| {
                r2.field(&f1.name)
                    .is_some_and(|f2| is_subtype(&f1.ty, &f2.ty))
            }) && r2
                .required_fields()
                .all(|f2| r1.field(&f2.name).is_some_and(|f1| !f1.optional))
        }

        (Type::Array(a1), Type::Array(a2)) => {
            a1.len() == a2.len()
                && a1
                    .elems()
                    .iter()
                    .zip(a2.elems())
                    .all(|(x, y)| is_subtype(x, y))
        }

        // [T₁,…,Tₙ] <: [U*] iff every Tᵢ <: U (n = 0 trivially holds).
        (Type::Array(a), Type::Star(body)) => a.elems().iter().all(|x| is_subtype(x, body)),

        (Type::Star(b1), Type::Star(b2)) => is_subtype(b1, b2),

        // ⟦[ε*]⟧ = {[]} = ⟦EArrT⟧.
        (Type::Star(body), Type::Array(a)) => a.is_empty() && matches!(body.as_ref(), Type::Bottom),

        _ => false,
    }
}

/// Semantic equivalence up to mutual inclusion: `t ≡ u ⟺ t <: u ∧ u <: t`.
pub fn is_equivalent(t: &Type, u: &Type) -> bool {
    is_subtype(t, u) && is_subtype(u, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{ArrayType, RecordBuilder, Type};

    fn sub(a: &str, b: &str) -> bool {
        is_subtype(
            &crate::parse_type(a).unwrap(),
            &crate::parse_type(b).unwrap(),
        )
    }

    #[test]
    fn reflexivity_on_samples() {
        for text in [
            "Null",
            "{a: Str?, b: Bool + Num}",
            "[Str, Num]",
            "[(Str + {})*]",
            "ε",
        ] {
            assert!(sub(text, text), "{text} <: {text}");
        }
    }

    #[test]
    fn bottom_is_least() {
        for text in ["Null", "{}", "[Num*]", "Num + Str"] {
            assert!(sub("ε", text));
            assert!(!sub(text, "ε"));
        }
    }

    #[test]
    fn union_inclusion() {
        assert!(sub("Num", "Num + Str"));
        assert!(sub("Num + Str", "Null + Num + Str"));
        assert!(!sub("Num + Bool", "Num + Str"));
        assert!(!sub("Num + Str", "Num"));
    }

    #[test]
    fn record_width_and_optionality() {
        // Adding an optional field is widening.
        assert!(sub("{a: Num}", "{a: Num, b: Str?}"));
        // Making a mandatory field optional is widening.
        assert!(sub("{a: Num}", "{a: Num?}"));
        // The reverse directions shrink.
        assert!(!sub("{a: Num, b: Str?}", "{a: Num}"));
        assert!(!sub("{a: Num?}", "{a: Num}"));
        // A missing mandatory field breaks inclusion.
        assert!(!sub("{a: Num}", "{a: Num, b: Str}"));
        // Records are closed: extra keys are not allowed.
        assert!(!sub("{a: Num, x: Bool}", "{a: Num}"));
    }

    #[test]
    fn record_depth() {
        assert!(sub("{a: {b: Num}}", "{a: {b: Num + Str, c: Bool?}}"));
        assert!(!sub("{a: {b: Num}}", "{a: {b: Str}}"));
    }

    #[test]
    fn positional_array_inclusion() {
        assert!(sub("[Num, Str]", "[Num + Bool, Str]"));
        assert!(!sub("[Num, Str]", "[Str, Num]"));
        assert!(!sub("[Num]", "[Num, Num]"));
    }

    #[test]
    fn array_into_star() {
        assert!(sub("[Num, Num]", "[Num*]"));
        assert!(sub("[Num, Str]", "[(Num + Str)*]"));
        assert!(sub("[]", "[Num*]"));
        assert!(!sub("[Num, Bool]", "[Num*]"));
        // Star into positional only for the empty cases.
        assert!(!sub("[Num*]", "[Num]"));
        assert!(sub("[Num*]", "[Num*]"));
    }

    #[test]
    fn star_bottom_equals_empty_array() {
        let star_bottom = Type::star(Type::Bottom);
        let empty = Type::empty_array();
        assert!(is_equivalent(&star_bottom, &empty));
    }

    #[test]
    fn star_body_covariance() {
        assert!(sub("[Num*]", "[(Num + Str)*]"));
        assert!(!sub("[(Num + Str)*]", "[Num*]"));
    }

    #[test]
    fn kind_mismatches_fail() {
        assert!(!sub("Num", "Str"));
        assert!(!sub("{}", "[]"));
        assert!(!sub("[]", "{}"));
        assert!(!sub("Null", "Bool"));
    }

    #[test]
    fn transitivity_spot_checks() {
        let a = "{m: Num}";
        let b = "{m: Num, o: Str?}";
        let c = "{m: Num + Null, o: Str + Bool?}";
        assert!(sub(a, b) && sub(b, c) && sub(a, c));
    }

    #[test]
    fn equivalence_detects_field_order() {
        let t1 = RecordBuilder::new()
            .required("a", Type::Num)
            .required("b", Type::Str)
            .into_type();
        let t2 = RecordBuilder::new()
            .required("b", Type::Str)
            .required("a", Type::Num)
            .into_type();
        assert!(is_equivalent(&t1, &t2));
        assert_eq!(t1, t2, "canonical sorting makes them identical too");
    }

    #[test]
    fn mixed_positional_array_vs_star_union() {
        let at = Type::Array(ArrayType::new(vec![
            Type::Str,
            Type::Str,
            RecordBuilder::new()
                .required("E", Type::Str)
                .required("F", Type::Num)
                .into_type(),
        ]));
        let simplified = crate::parse_type("[(Str + {E: Str, F: Num})*]").unwrap();
        // The Section 2 simplification is a widening.
        assert!(is_subtype(&at, &simplified));
        assert!(!is_subtype(&simplified, &at));
    }
}
