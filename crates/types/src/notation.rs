//! A parser for the schema notation printed by [`crate::print`].
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! type    := term ('+' term)*
//! term    := 'Null' | 'Bool' | 'Num' | 'Str' | 'ε' | 'Empty'
//!          | record | array | '(' type ')'
//! record  := '{' (field (',' field)*)? '}'
//! field   := key ':' type '?'?
//! key     := identifier | json-string
//! array   := '[' ']'                      empty positional array
//!          | '[' type '*' ']'             starred array
//!          | '[' '(' type ')' '*' ']'     starred array, union body
//!          | '[' type (',' type)* ']'     positional array
//! ```
//!
//! `parse_type ∘ to_string` is the identity on normal types, except that
//! `[ε*]` prints as `[]` and therefore re-parses as the (semantically
//! equal) empty positional array type — tested in the crate's round-trip
//! suite. Unions are normalised through [`Type::union`], so a kind clash
//! in the input (e.g. `Str + Str` is fine, but `{} + {a: Num}` is not) is
//! reported as an error.

use crate::ty::{Field, RecordType, Type, TypeError};
use std::fmt;

/// Errors from the notation parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotationError {
    /// Unexpected character or end of input, with byte offset.
    Syntax {
        /// Byte offset of the problem.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// The parsed union or record violates the type invariants.
    Invalid(TypeError),
}

impl fmt::Display for NotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotationError::Syntax { offset, message } => {
                write!(f, "{message} at byte {offset}")
            }
            NotationError::Invalid(e) => write!(f, "invalid type: {e}"),
        }
    }
}

impl std::error::Error for NotationError {}

impl From<TypeError> for NotationError {
    fn from(e: TypeError) -> Self {
        NotationError::Invalid(e)
    }
}

/// Parse a type from the paper's notation.
///
/// ```
/// use typefuse_types::parse_type;
/// let t = parse_type("{a: Str?, b: Num + Bool}").unwrap();
/// assert_eq!(t.to_string(), "{a: Str?, b: Bool + Num}");
/// ```
pub fn parse_type(input: &str) -> Result<Type, NotationError> {
    let mut p = Cursor { input, pos: 0 };
    let t = p.parse_union()?;
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(t)
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: &str) -> NotationError {
        NotationError::Syntax {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), NotationError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(word) {
            // The next char must not extend the identifier.
            let after = self.rest()[word.len()..].chars().next();
            if !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.pos += word.len();
                return true;
            }
        }
        false
    }

    fn parse_union(&mut self) -> Result<Type, NotationError> {
        let mut addends = vec![self.parse_term()?];
        while self.eat('+') {
            addends.push(self.parse_term()?);
        }
        if addends.len() == 1 {
            Ok(addends.pop().expect("one addend"))
        } else {
            Ok(Type::union(addends)?)
        }
    }

    fn parse_term(&mut self) -> Result<Type, NotationError> {
        self.skip_ws();
        if self.eat_word("Null") {
            return Ok(Type::Null);
        }
        if self.eat_word("Bool") || self.eat_word("Boolean") {
            return Ok(Type::Bool);
        }
        if self.eat_word("Num") || self.eat_word("Number") {
            return Ok(Type::Num);
        }
        if self.eat_word("Str") || self.eat_word("String") {
            return Ok(Type::Str);
        }
        if self.eat_word("Empty") || self.eat('ε') {
            return Ok(Type::Bottom);
        }
        match self.peek() {
            Some('{') => self.parse_record(),
            Some('[') => self.parse_array(),
            Some('(') => {
                self.expect('(')?;
                let t = self.parse_union()?;
                self.expect(')')?;
                Ok(t)
            }
            Some(_) => Err(self.err("expected a type")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_record(&mut self) -> Result<Type, NotationError> {
        self.expect('{')?;
        let mut fields = Vec::new();
        if self.eat('}') {
            return Ok(Type::Record(RecordType::empty()));
        }
        loop {
            let name = self.parse_key()?;
            self.expect(':')?;
            let ty = self.parse_union()?;
            let optional = self.eat('?');
            fields.push(Field { name, ty, optional });
            if self.eat(',') {
                continue;
            }
            self.expect('}')?;
            break;
        }
        Ok(Type::Record(RecordType::new(fields)?))
    }

    fn parse_key(&mut self) -> Result<String, NotationError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => self.parse_quoted_key(),
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '-'
                ) {
                    self.pos += 1;
                }
                Ok(self.input[start..self.pos].to_string())
            }
            _ => Err(self.err("expected a field key")),
        }
    }

    fn parse_quoted_key(&mut self) -> Result<String, NotationError> {
        // Delegate to the JSON string parser for full escape support.
        let rest = self.rest();
        let mut parser = typefuse_json::Parser::new(rest.as_bytes());
        match parser.parse_one() {
            Ok(typefuse_json::Value::String(s)) => {
                self.pos += parser.position().offset;
                Ok(s)
            }
            _ => Err(self.err("invalid quoted key")),
        }
    }

    fn parse_array(&mut self) -> Result<Type, NotationError> {
        self.expect('[')?;
        if self.eat(']') {
            return Ok(Type::empty_array());
        }
        let first = self.parse_union()?;
        if self.eat('*') {
            self.expect(']')?;
            return Ok(Type::star(first));
        }
        let mut elems = vec![first];
        while self.eat(',') {
            elems.push(self.parse_union()?);
        }
        self.expect(']')?;
        Ok(Type::Array(crate::ty::ArrayType::new(elems)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{ArrayType, RecordBuilder};

    fn round_trip(text: &str) {
        let t = parse_type(text).unwrap();
        assert_eq!(t.to_string(), text, "print(parse({text:?}))");
        // And idempotent: parse(print(t)) == t.
        assert_eq!(parse_type(&t.to_string()).unwrap(), t);
    }

    #[test]
    fn scalars_and_aliases() {
        assert_eq!(parse_type("Null").unwrap(), Type::Null);
        assert_eq!(parse_type("Boolean").unwrap(), Type::Bool);
        assert_eq!(parse_type("Number").unwrap(), Type::Num);
        assert_eq!(parse_type("String").unwrap(), Type::Str);
        assert_eq!(parse_type("ε").unwrap(), Type::Bottom);
        assert_eq!(parse_type("Empty").unwrap(), Type::Bottom);
    }

    #[test]
    fn records() {
        let t = parse_type("{a: Str?, b: Num + Bool}").unwrap();
        let expected = RecordBuilder::new()
            .optional("a", Type::Str)
            .required("b", Type::Num.plus(Type::Bool))
            .into_type();
        assert_eq!(t, expected);
    }

    #[test]
    fn arrays() {
        assert_eq!(parse_type("[]").unwrap(), Type::empty_array());
        assert_eq!(parse_type("[Num*]").unwrap(), Type::star(Type::Num));
        assert_eq!(
            parse_type("[Str, Num]").unwrap(),
            Type::Array(ArrayType::new(vec![Type::Str, Type::Num]))
        );
        assert_eq!(
            parse_type("[(Str + Num)*]").unwrap(),
            Type::star(Type::Str.plus(Type::Num))
        );
    }

    #[test]
    fn quoted_keys() {
        let t = parse_type(r#"{"has space": Num, "é": Str}"#).unwrap();
        match t {
            Type::Record(rt) => {
                assert!(rt.field("has space").is_some());
                assert!(rt.field("é").is_some());
            }
            other => panic!("expected record, got {other}"),
        }
    }

    #[test]
    fn round_trips() {
        for text in [
            "Null",
            "{}",
            "[]",
            "[Num*]",
            "{a: Str?, b: Bool + Num, c: {d: [Null*]}?}",
            "[Str, Num, {x: Bool}]",
            "[(Null + Bool + Num + Str + {} + [])*]",
            "{\"1\": Num}",
        ] {
            round_trip(text);
        }
    }

    #[test]
    fn union_normalisation_on_parse() {
        // Printed sorted by kind regardless of input order; duplicates fold.
        assert_eq!(
            parse_type("Str + Null + Str").unwrap().to_string(),
            "Null + Str"
        );
    }

    #[test]
    fn errors() {
        assert!(matches!(parse_type(""), Err(NotationError::Syntax { .. })));
        assert!(matches!(
            parse_type("{a Num}"),
            Err(NotationError::Syntax { .. })
        ));
        assert!(matches!(
            parse_type("{a: Num"),
            Err(NotationError::Syntax { .. })
        ));
        assert!(matches!(
            parse_type("Num Str"),
            Err(NotationError::Syntax { .. })
        ));
        assert!(matches!(
            parse_type("[Num*"),
            Err(NotationError::Syntax { .. })
        ));
        assert!(matches!(
            parse_type("{a: Num, a: Str}"),
            Err(NotationError::Invalid(TypeError::DuplicateField(_)))
        ));
        assert!(matches!(
            parse_type("{} + {a: Num}"),
            Err(NotationError::Invalid(TypeError::KindClash(_)))
        ));
    }

    #[test]
    fn keyword_prefix_keys_parse() {
        // `Null`-prefixed identifiers must not be eaten as the keyword.
        let t = parse_type("{Nullable: Num}").unwrap();
        assert_eq!(t.to_string(), "{Nullable: Num}");
    }
}
