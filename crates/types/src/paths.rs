//! Path enumeration — the paper's *completeness* property made checkable.
//!
//! Section 1: "each path that can be traversed in the tree-structure of
//! each input JSON value can be traversed in the inferred schema as
//! well. This property is crucial to enable a series of query
//! optimization tasks" (wildcard expansion, projection pushdown, …).
//!
//! A path is a sequence of steps from the root: a record field name or an
//! array descent. Rendered like `$.headline.main` and `$.keywords[].rank`
//! (the same notation as the counting fuser in `typefuse-infer`).

use crate::ty::Type;
use std::collections::BTreeSet;
use typefuse_json::Value;

/// One navigation step.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathStep {
    /// Descend into a record field.
    Field(String),
    /// Descend into any array element.
    Item,
}

/// Render a step sequence as `$.a.b[].c`.
pub fn render_path(steps: &[PathStep]) -> String {
    let mut s = String::from("$");
    for step in steps {
        match step {
            PathStep::Field(name) => {
                s.push('.');
                s.push_str(name);
            }
            PathStep::Item => s.push_str("[]"),
        }
    }
    s
}

/// Parse a rendered path (`$`, `$.a.b[].c`) back into steps.
///
/// The inverse of [`render_path`] for the paths the inference pipeline
/// emits; field names are taken verbatim between separators, so names
/// containing `.` or `[]` — which the rendering cannot distinguish
/// anyway — parse as nested steps. A leading `$` is optional, so
/// `.user.url` works as CLI shorthand. Returns `None` for syntactically
/// empty segments (`$..a`, a trailing `.`).
pub fn parse_path(text: &str) -> Option<Vec<PathStep>> {
    let mut rest = text.strip_prefix('$').unwrap_or(text);
    let mut steps = Vec::new();
    while !rest.is_empty() {
        if let Some(r) = rest.strip_prefix("[]") {
            steps.push(PathStep::Item);
            rest = r;
        } else if let Some(r) = rest.strip_prefix('.') {
            let end = r
                .char_indices()
                .find(|&(i, c)| c == '.' || r[i..].starts_with("[]"))
                .map(|(i, _)| i)
                .unwrap_or(r.len());
            if end == 0 {
                return None;
            }
            steps.push(PathStep::Field(r[..end].to_string()));
            rest = &r[end..];
        } else {
            return None;
        }
    }
    Some(steps)
}

/// All subtrees of `t` reachable by following `steps`.
///
/// Unions are transparent: a [`PathStep::Field`] descends through the
/// record addend, a [`PathStep::Item`] through the array or star
/// addend(s) — mirroring how [`type_paths`] accumulates union paths.
/// Positional arrays contribute every element type, so the result is a
/// list; an unreachable path yields an empty one. The caller decides
/// how to combine multiple candidates (e.g. fuse them).
pub fn types_at_path<'a>(t: &'a Type, steps: &[PathStep]) -> Vec<&'a Type> {
    let mut frontier = vec![t];
    for step in steps {
        let mut next: Vec<&Type> = Vec::new();
        for t in frontier {
            descend(t, step, &mut next);
        }
        // Dedup structurally, keeping first-seen order (kind-unique
        // unions make real fan-out small, so the quadratic scan is
        // irrelevant; pointer-based orderings would not be
        // deterministic).
        let mut deduped: Vec<&Type> = Vec::with_capacity(next.len());
        for t in next {
            if !deduped.contains(&t) {
                deduped.push(t);
            }
        }
        frontier = deduped;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

fn descend<'a>(t: &'a Type, step: &PathStep, out: &mut Vec<&'a Type>) {
    match (t, step) {
        (Type::Record(rt), PathStep::Field(name)) => {
            if let Some(f) = rt.field(name) {
                out.push(&f.ty);
            }
        }
        (Type::Array(at), PathStep::Item) => out.extend(at.elems()),
        (Type::Star(body), PathStep::Item) if !matches!(body.as_ref(), Type::Bottom) => {
            out.push(body);
        }
        (Type::Union(u), step) => {
            for addend in u.addends() {
                descend(addend, step, out);
            }
        }
        _ => {}
    }
}

/// All paths traversable in a type (rendered). Unions contribute the
/// paths of all their addends; optionality does not restrict
/// traversability.
pub fn type_paths(t: &Type) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut prefix = Vec::new();
    walk_type(t, &mut prefix, &mut out);
    out
}

fn walk_type(t: &Type, prefix: &mut Vec<PathStep>, out: &mut BTreeSet<String>) {
    match t {
        Type::Bottom | Type::Null | Type::Bool | Type::Num | Type::Str => {}
        Type::Record(rt) => {
            for f in rt.fields() {
                prefix.push(PathStep::Field(f.name.clone()));
                out.insert(render_path(prefix));
                walk_type(&f.ty, prefix, out);
                prefix.pop();
            }
        }
        Type::Array(at) if !at.is_empty() => {
            prefix.push(PathStep::Item);
            out.insert(render_path(prefix));
            for elem in at.elems() {
                walk_type(elem, prefix, out);
            }
            prefix.pop();
        }
        Type::Array(_) => {}
        Type::Star(body) if !matches!(body.as_ref(), Type::Bottom) => {
            prefix.push(PathStep::Item);
            out.insert(render_path(prefix));
            walk_type(body, prefix, out);
            prefix.pop();
        }
        Type::Star(_) => {}
        Type::Union(u) => {
            for addend in u.addends() {
                walk_type(addend, prefix, out);
            }
        }
    }
}

/// All paths traversable in a concrete value (rendered).
pub fn value_paths(v: &Value) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut prefix = Vec::new();
    walk_value(v, &mut prefix, &mut out);
    out
}

fn walk_value(v: &Value, prefix: &mut Vec<PathStep>, out: &mut BTreeSet<String>) {
    match v {
        Value::Object(map) => {
            for (key, child) in map.iter() {
                prefix.push(PathStep::Field(key.to_string()));
                out.insert(render_path(prefix));
                walk_value(child, prefix, out);
                prefix.pop();
            }
        }
        Value::Array(elems) if !elems.is_empty() => {
            prefix.push(PathStep::Item);
            out.insert(render_path(prefix));
            for child in elems {
                walk_value(child, prefix, out);
            }
            prefix.pop();
        }
        _ => {}
    }
}

/// The completeness check of Section 1: every path of `v` is a path of
/// `t`. Holds whenever `t.admits(v)` — property-tested in the infer
/// crate against inference + fusion.
pub fn covers_value_paths(t: &Type, v: &Value) -> bool {
    let tp = type_paths(t);
    value_paths(v).is_subset(&tp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_type;
    use typefuse_json::json;

    fn paths_of(text: &str) -> Vec<String> {
        type_paths(&parse_type(text).unwrap()).into_iter().collect()
    }

    #[test]
    fn scalar_types_have_no_paths() {
        assert!(paths_of("Num").is_empty());
        assert!(paths_of("ε").is_empty());
        assert!(paths_of("{}").is_empty());
        assert!(paths_of("[]").is_empty());
    }

    #[test]
    fn record_paths() {
        assert_eq!(
            paths_of("{a: Num, b: {c: Str}}"),
            vec!["$.a", "$.b", "$.b.c"]
        );
    }

    #[test]
    fn optional_fields_are_still_traversable() {
        assert_eq!(paths_of("{a: Num?}"), vec!["$.a"]);
    }

    #[test]
    fn array_paths() {
        assert_eq!(paths_of("[{a: Num}*]"), vec!["$[]", "$[].a"]);
        assert_eq!(paths_of("[Num, {b: Str}]"), vec!["$[]", "$[].b"]);
    }

    #[test]
    fn union_paths_accumulate() {
        assert_eq!(
            paths_of("Num + {a: Str} + [{b: Bool}*]"),
            vec!["$.a", "$[]", "$[].b"]
        );
    }

    #[test]
    fn value_paths_match_rendering() {
        let v = json!({"a": {"b": 1}, "c": [{"d": 2}, 3]});
        let paths: Vec<String> = value_paths(&v).into_iter().collect();
        assert_eq!(paths, vec!["$.a", "$.a.b", "$.c", "$.c[]", "$.c[].d"]);
    }

    #[test]
    fn empty_array_contributes_no_item_path() {
        assert!(value_paths(&json!({"a": []})).contains("$.a"));
        assert!(!value_paths(&json!({"a": []})).contains("$.a[]"));
        assert!(paths_of("{a: []}").contains(&"$.a".to_string()));
    }

    #[test]
    fn completeness_on_a_fused_like_type() {
        let t = parse_type("{a: Null + Num, b: Str?, c: [(Num + {d: Bool})*]?}").unwrap();
        for v in [
            json!({"a": 1}),
            json!({"a": null, "b": "x"}),
            json!({"a": 1, "c": [1, {"d": true}]}),
        ] {
            assert!(t.admits(&v));
            assert!(covers_value_paths(&t, &v), "paths of {v} not covered");
        }
    }

    #[test]
    fn non_covering_detected() {
        let t = parse_type("{a: Num}").unwrap();
        assert!(!covers_value_paths(&t, &json!({"z": 1})));
    }

    #[test]
    fn parse_path_round_trips_rendered_paths() {
        for text in ["$", "$.a", "$.a.b", "$.kw[].rank", "$[]", "$[][].x"] {
            let steps = parse_path(text).unwrap();
            assert_eq!(render_path(&steps), text, "round trip of {text}");
        }
        // CLI shorthand: the leading `$` may be dropped.
        assert_eq!(
            parse_path(".user.url").unwrap(),
            parse_path("$.user.url").unwrap()
        );
        assert!(parse_path("$..a").is_none());
        assert!(parse_path("$.").is_none());
        assert!(parse_path("a").is_none());
    }

    #[test]
    fn types_at_path_navigates_records_arrays_and_unions() {
        let t = parse_type("{a: Null + Num, b: {c: [Str*]}, d: [Num, Bool]}").unwrap();
        let at = |p: &str| {
            types_at_path(&t, &parse_path(p).unwrap())
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(at("$.a"), ["Null + Num"]);
        assert_eq!(at("$.b.c"), ["[Str*]"]);
        assert_eq!(at("$.b.c[]"), ["Str"]);
        assert_eq!(at("$.d[]"), ["Num", "Bool"], "positional arrays fan out");
        assert!(at("$.missing").is_empty());
        assert_eq!(at("$"), [t.to_string()]);

        // Field access through a union's record addend.
        let u = parse_type("Num + {x: Str?}").unwrap();
        assert_eq!(
            types_at_path(&u, &parse_path("$.x").unwrap())
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>(),
            ["Str"]
        );
    }
}
