//! Type kinds, numbered exactly as in the paper (Section 4):
//!
//! ```text
//! kind(Null) = 0   kind(Bool) = 1   kind(Num) = 2   kind(Str) = 3
//! kind(RT)   = 4   kind(AT) = kind(SAT) = 5
//! ```
//!
//! Positional and simplified (starred) array types share kind 5: that is
//! what lets `LFuse` match an un-simplified array type against an already
//! fused `[T*]` (Figure 6, lines 4–7).

use std::fmt;

/// The kind of a non-union, non-empty type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TypeKind {
    /// `Null` — kind 0.
    Null = 0,
    /// `Bool` — kind 1.
    Bool = 1,
    /// `Num` — kind 2.
    Num = 2,
    /// `Str` — kind 3.
    Str = 3,
    /// Record types — kind 4.
    Record = 4,
    /// Array types, positional or starred — kind 5.
    Array = 5,
}

impl TypeKind {
    /// All six kinds, in paper order.
    pub const ALL: [TypeKind; 6] = [
        TypeKind::Null,
        TypeKind::Bool,
        TypeKind::Num,
        TypeKind::Str,
        TypeKind::Record,
        TypeKind::Array,
    ];

    /// The paper's numeric code for this kind.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The inverse of [`TypeKind::code`]; `None` for codes ≥ 6.
    pub fn from_code(code: u8) -> Option<TypeKind> {
        TypeKind::ALL.get(code as usize).copied()
    }

    /// Whether this is one of the four basic kinds (`kind < 4` in the
    /// side-condition of `LFuse` line 2).
    pub fn is_basic(self) -> bool {
        self.code() < 4
    }
}

impl fmt::Display for TypeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TypeKind::Null => "Null",
            TypeKind::Bool => "Bool",
            TypeKind::Num => "Num",
            TypeKind::Str => "Str",
            TypeKind::Record => "Record",
            TypeKind::Array => "Array",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_the_paper() {
        assert_eq!(TypeKind::Null.code(), 0);
        assert_eq!(TypeKind::Bool.code(), 1);
        assert_eq!(TypeKind::Num.code(), 2);
        assert_eq!(TypeKind::Str.code(), 3);
        assert_eq!(TypeKind::Record.code(), 4);
        assert_eq!(TypeKind::Array.code(), 5);
    }

    #[test]
    fn basic_kinds_are_below_four() {
        for k in TypeKind::ALL {
            assert_eq!(k.is_basic(), k.code() < 4);
        }
    }

    #[test]
    fn ordering_follows_codes() {
        let mut all = TypeKind::ALL;
        all.sort();
        assert_eq!(all, TypeKind::ALL);
    }
}
