//! Export a [`Type`] as a JSON Schema document.
//!
//! The paper (Section 3) positions its language as "a core part of the
//! JSON Schema language" of Pezoa et al. \[20\]; this module realises the
//! embedding so inferred schemas can be consumed by standard validators.
//!
//! Mapping:
//!
//! | typefuse                 | JSON Schema                                           |
//! |--------------------------|-------------------------------------------------------|
//! | `Null/Bool/Num/Str`      | `{"type": "null"/"boolean"/"number"/"string"}`        |
//! | `{l: T, m: U?}`          | `object` + `properties` + `required` + closed         |
//! | `[T₁,…,Tₙ]`              | `array` + `prefixItems` + `items: false` + exact size |
//! | `[T*]`                   | `array` + `items`                                     |
//! | `T + U`                  | `anyOf`                                               |
//! | `ε`                      | `false` (the unsatisfiable schema)                    |

use crate::ty::Type;
use typefuse_json::{Map, Value};

/// Convert a type to a JSON Schema document (as a JSON value).
pub fn to_json_schema(t: &Type) -> Value {
    match t {
        Type::Bottom => Value::Bool(false),
        Type::Null => type_object("null"),
        Type::Bool => type_object("boolean"),
        Type::Num => type_object("number"),
        Type::Str => type_object("string"),
        Type::Record(rt) => {
            let mut schema = Map::new();
            schema.insert("type", "object");
            let mut props = Map::new();
            let mut required: Vec<Value> = Vec::new();
            for f in rt.fields() {
                props.insert(f.name.clone(), to_json_schema(&f.ty));
                if !f.optional {
                    required.push(Value::String(f.name.clone()));
                }
            }
            schema.insert("properties", Value::Object(props));
            if !required.is_empty() {
                schema.insert("required", Value::Array(required));
            }
            // The paper's record types are closed (complete descriptions).
            schema.insert("additionalProperties", false);
            Value::Object(schema)
        }
        Type::Array(at) => {
            let mut schema = Map::new();
            schema.insert("type", "array");
            schema.insert(
                "prefixItems",
                Value::Array(at.elems().iter().map(to_json_schema).collect()),
            );
            schema.insert("items", false);
            schema.insert("minItems", at.len() as i64);
            schema.insert("maxItems", at.len() as i64);
            Value::Object(schema)
        }
        Type::Star(body) => {
            let mut schema = Map::new();
            schema.insert("type", "array");
            match body.as_ref() {
                // [ε*] admits only []: express as maxItems 0.
                Type::Bottom => {
                    schema.insert("maxItems", 0i64);
                }
                other => {
                    schema.insert("items", to_json_schema(other));
                }
            }
            Value::Object(schema)
        }
        Type::Union(u) => {
            let mut schema = Map::new();
            schema.insert(
                "anyOf",
                Value::Array(u.addends().iter().map(to_json_schema).collect()),
            );
            Value::Object(schema)
        }
    }
}

/// Wrap with the `$schema` preamble for a standalone document.
pub fn to_json_schema_document(t: &Type) -> Value {
    let mut doc = Map::new();
    doc.insert("$schema", "https://json-schema.org/draft/2020-12/schema");
    match to_json_schema(t) {
        Value::Object(m) => {
            for (k, v) in m {
                doc.insert(k, v);
            }
        }
        Value::Bool(false) => {
            doc.insert("not", Value::Object(Map::new()));
        }
        other => {
            doc.insert("allOf", Value::Array(vec![other]));
        }
    }
    Value::Object(doc)
}

fn type_object(name: &str) -> Value {
    let mut m = Map::new();
    m.insert("type", name);
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_type;
    use typefuse_json::json;

    fn export(text: &str) -> Value {
        to_json_schema(&parse_type(text).unwrap())
    }

    #[test]
    fn basics() {
        assert_eq!(export("Null"), json!({"type": "null"}));
        assert_eq!(export("Bool"), json!({"type": "boolean"}));
        assert_eq!(export("Num"), json!({"type": "number"}));
        assert_eq!(export("Str"), json!({"type": "string"}));
        assert_eq!(export("ε"), json!(false));
    }

    #[test]
    fn record_with_optional() {
        let s = export("{a: Num, b: Str?}");
        assert_eq!(
            s,
            json!({
                "type": "object",
                "properties": {
                    "a": {"type": "number"},
                    "b": {"type": "string"}
                },
                "required": ["a"],
                "additionalProperties": false
            })
        );
    }

    #[test]
    fn all_optional_record_omits_required() {
        let s = export("{a: Num?}");
        assert!(s.get("required").is_none());
    }

    #[test]
    fn star_array() {
        assert_eq!(
            export("[Num*]"),
            json!({"type": "array", "items": {"type": "number"}})
        );
    }

    #[test]
    fn empty_star_is_zero_length() {
        let s = to_json_schema(&Type::star(Type::Bottom));
        assert_eq!(s, json!({"type": "array", "maxItems": 0}));
    }

    #[test]
    fn positional_array_uses_prefix_items() {
        let s = export("[Str, Num]");
        assert_eq!(
            s,
            json!({
                "type": "array",
                "prefixItems": [{"type": "string"}, {"type": "number"}],
                "items": false,
                "minItems": 2,
                "maxItems": 2
            })
        );
    }

    #[test]
    fn union_is_any_of() {
        let s = export("Num + Str");
        assert_eq!(
            s,
            json!({"anyOf": [{"type": "number"}, {"type": "string"}]})
        );
    }

    #[test]
    fn document_preamble() {
        let d = to_json_schema_document(&parse_type("{a: Num}").unwrap());
        assert_eq!(
            d.get("$schema").and_then(|v| v.as_str()),
            Some("https://json-schema.org/draft/2020-12/schema")
        );
        assert!(d.get("properties").is_some());
    }

    #[test]
    fn bottom_document_is_unsatisfiable() {
        let d = to_json_schema_document(&Type::Bottom);
        assert_eq!(d.get("not"), Some(&json!({})));
    }
}
