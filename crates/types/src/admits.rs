//! The semantics of types: value membership `V ∈ ⟦T⟧` (Section 4).
//!
//! The paper defines `⟦·⟧` denotationally; membership of a concrete value
//! is decidable by structural recursion, implemented here as
//! [`Type::admits`]. This is the ground truth against which the
//! correctness theorems (5.1, 5.2) are property-tested: fusion may only
//! ever *grow* the set of admitted values.

use crate::ty::{RecordType, Type};
use typefuse_json::Value;

impl Type {
    /// Decide whether `value ∈ ⟦self⟧`.
    pub fn admits(&self, value: &Value) -> bool {
        match self {
            // ⟦ε⟧ = ∅.
            Type::Bottom => false,
            Type::Null => matches!(value, Value::Null),
            Type::Bool => matches!(value, Value::Bool(_)),
            Type::Num => matches!(value, Value::Number(_)),
            Type::Str => matches!(value, Value::String(_)),
            Type::Record(rt) => match value {
                Value::Object(map) => record_admits(rt, map),
                _ => false,
            },
            Type::Array(at) => match value {
                Value::Array(elems) => {
                    elems.len() == at.len()
                        && at.elems().iter().zip(elems).all(|(t, v)| t.admits(v))
                }
                _ => false,
            },
            // ⟦[T*]⟧ = lists of values from ⟦T⟧ — including the empty
            // list, which is why ⟦[ε*]⟧ = {[]}.
            Type::Star(body) => match value {
                Value::Array(elems) => elems.iter().all(|v| body.admits(v)),
                _ => false,
            },
            Type::Union(u) => u.addends().iter().any(|t| t.admits(value)),
        }
    }
}

/// Record semantics: the value must have *exactly* the keys listed in the
/// type (optional ones may be absent), each with an admitted value. Record
/// types are "closed" — this is what makes the inferred schema a *complete*
/// structural description (Section 1: every path in the data is a path in
/// the schema, and vice versa nothing is hidden).
fn record_admits(rt: &RecordType, map: &typefuse_json::Map) -> bool {
    // Every field of the value must be declared and admitted.
    for (key, value) in map.iter() {
        match rt.field(key) {
            Some(f) if f.ty.admits(value) => {}
            _ => return false,
        }
    }
    // Every mandatory field must be present.
    rt.required_fields().all(|f| map.contains_key(&f.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{ArrayType, RecordBuilder};
    use typefuse_json::json;

    #[test]
    fn basic_membership() {
        assert!(Type::Null.admits(&json!(null)));
        assert!(Type::Bool.admits(&json!(true)));
        assert!(Type::Num.admits(&json!(1.5)));
        assert!(Type::Str.admits(&json!("s")));
        assert!(!Type::Num.admits(&json!("1")));
        assert!(!Type::Bottom.admits(&json!(null)));
    }

    #[test]
    fn union_membership() {
        let t = Type::Num.plus(Type::Str);
        assert!(t.admits(&json!(1)));
        assert!(t.admits(&json!("x")));
        assert!(!t.admits(&json!(true)));
    }

    #[test]
    fn record_mandatory_and_optional() {
        let t = RecordBuilder::new()
            .required("m", Type::Num)
            .optional("o", Type::Str)
            .into_type();
        assert!(t.admits(&json!({"m": 1})));
        assert!(t.admits(&json!({"m": 1, "o": "x"})));
        assert!(!t.admits(&json!({"o": "x"})), "missing mandatory field");
        assert!(
            !t.admits(&json!({"m": 1, "extra": 2})),
            "records are closed"
        );
        assert!(!t.admits(&json!({"m": "wrong"})));
        assert!(!t.admits(&json!([1])), "not a record");
    }

    #[test]
    fn empty_record_admits_only_empty_object() {
        let t = Type::empty_record();
        assert!(t.admits(&json!({})));
        assert!(!t.admits(&json!({"a": 1})));
    }

    #[test]
    fn positional_arrays_are_length_exact() {
        let t = Type::Array(ArrayType::new(vec![Type::Str, Type::Num]));
        assert!(t.admits(&json!(["a", 1])));
        assert!(!t.admits(&json!(["a"])));
        assert!(!t.admits(&json!(["a", 1, 2])));
        assert!(!t.admits(&json!([1, "a"])), "order matters");
    }

    #[test]
    fn star_arrays_admit_any_length() {
        let t = Type::star(Type::Num);
        assert!(t.admits(&json!([])));
        assert!(t.admits(&json!([1])));
        assert!(t.admits(&json!([1, 2, 3])));
        assert!(!t.admits(&json!([1, "x"])));
    }

    #[test]
    fn star_bottom_admits_exactly_the_empty_array() {
        let t = Type::star(Type::Bottom);
        assert!(t.admits(&json!([])));
        assert!(!t.admits(&json!([1])));
        assert!(!t.admits(&json!(null)));
        // Semantically equal to the empty positional array type.
        assert!(Type::empty_array().admits(&json!([])));
        assert!(!Type::empty_array().admits(&json!([1])));
    }

    #[test]
    fn nested_structures() {
        // {l: Bool + Str + {A: Num + Str}, (B: Num)?} — the Section 2
        // nested-record fusion example's result type.
        let t = RecordBuilder::new()
            .required(
                "l",
                Type::union([
                    Type::Bool,
                    Type::Str,
                    RecordBuilder::new()
                        .required("A", Type::Num.plus(Type::Str))
                        .optional("B", Type::Num)
                        .into_type(),
                ])
                .unwrap(),
            )
            .into_type();
        assert!(t.admits(&json!({"l": true})));
        assert!(t.admits(&json!({"l": "s"})));
        assert!(t.admits(&json!({"l": {"A": 1}})));
        assert!(t.admits(&json!({"l": {"A": "s", "B": 2}})));
        assert!(!t.admits(&json!({"l": {"B": 2}})));
        assert!(!t.admits(&json!({"l": null})));
    }

    #[test]
    fn mixed_content_array_example() {
        // (Str + {E: Str, F: Num})* from Section 2.
        let body = Type::union([
            Type::Str,
            RecordBuilder::new()
                .required("E", Type::Str)
                .required("F", Type::Num)
                .into_type(),
        ])
        .unwrap();
        let t = Type::star(body);
        assert!(t.admits(&json!(["abc", "cde", {"E": "fr", "F": 12}])));
        assert!(
            t.admits(&json!([{"E": "fr", "F": 12}, "abc", "cde"])),
            "order-insensitive"
        );
        assert!(!t.admits(&json!([42])));
    }
}
