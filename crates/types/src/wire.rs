//! Exact, self-delimiting wire encoding for [`Type`].
//!
//! The human notation ([`crate::notation`]) is *canonical up to
//! semantic equivalence*, not injective: `[ε*]` (the collapse of the
//! empty array) and `[]` (the empty positional array type) both print
//! as `[]`. A batch report never cares, but a crash-safe service does —
//! a checkpointed running schema must reload as the *same
//! representation*, or the next fusion steps could diverge from the
//! uninterrupted run. This module is the lossless twin of the notation:
//! every constructor gets its own production, so
//! `from_wire(to_wire(t)) == t` structurally, for every `t` (property
//! tested).
//!
//! Grammar (byte-oriented, no whitespace, field names length-prefixed
//! so no escaping is ever needed):
//!
//! ```text
//! type   := '_'                    ε (Bottom)
//!         | 'n' | 'b' | 'm' | 's'  Null, Bool, Num, Str
//!         | '{' field* '}'         record, fields in stored (sorted) order
//!         | '[' type* ']'          positional array
//!         | '*' type               simplified array [T*]
//!         | '(' type type+ ')'     union, addends in stored (kind) order
//! field  := ('!' | '?') len '=' name-bytes type      ! mandatory, ? optional
//! len    := decimal byte length of name
//! ```

use crate::ty::{ArrayType, Field, RecordType, Type};

/// Serialize a type losslessly. See the [module docs](self) for the
/// grammar.
pub fn to_wire(ty: &Type) -> String {
    let mut out = String::new();
    write_type(ty, &mut out);
    out
}

fn write_type(ty: &Type, out: &mut String) {
    match ty {
        Type::Bottom => out.push('_'),
        Type::Null => out.push('n'),
        Type::Bool => out.push('b'),
        Type::Num => out.push('m'),
        Type::Str => out.push('s'),
        Type::Record(rt) => {
            out.push('{');
            for field in rt.fields() {
                out.push(if field.optional { '?' } else { '!' });
                out.push_str(&field.name.len().to_string());
                out.push('=');
                out.push_str(&field.name);
                write_type(&field.ty, out);
            }
            out.push('}');
        }
        Type::Array(at) => {
            out.push('[');
            for elem in at.elems() {
                write_type(elem, out);
            }
            out.push(']');
        }
        Type::Star(body) => {
            out.push('*');
            write_type(body, out);
        }
        Type::Union(u) => {
            out.push('(');
            for addend in u.addends() {
                write_type(addend, out);
            }
            out.push(')');
        }
    }
}

/// Parse a wire-encoded type back to the exact [`Type`] it came from.
pub fn from_wire(text: &str) -> Result<Type, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let ty = parse_type_at(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(ty)
}

fn parse_type_at(bytes: &[u8], pos: &mut usize) -> Result<Type, String> {
    let lead = *bytes
        .get(*pos)
        .ok_or_else(|| format!("unexpected end of wire type at offset {pos}", pos = *pos))?;
    *pos += 1;
    match lead {
        b'_' => Ok(Type::Bottom),
        b'n' => Ok(Type::Null),
        b'b' => Ok(Type::Bool),
        b'm' => Ok(Type::Num),
        b's' => Ok(Type::Str),
        b'{' => {
            let mut fields = Vec::new();
            loop {
                match bytes.get(*pos) {
                    Some(b'}') => {
                        *pos += 1;
                        break;
                    }
                    Some(&card @ (b'!' | b'?')) => {
                        *pos += 1;
                        let name = parse_name(bytes, pos)?;
                        let ty = parse_type_at(bytes, pos)?;
                        fields.push(if card == b'?' {
                            Field::optional(name, ty)
                        } else {
                            Field::required(name, ty)
                        });
                    }
                    Some(other) => {
                        return Err(format!("bad field lead byte 0x{other:02x} at {}", *pos))
                    }
                    None => return Err("unterminated record".to_string()),
                }
            }
            // Fields were written in stored order, which is strictly
            // sorted; `from_sorted` re-verifies in O(n).
            RecordType::from_sorted(fields)
                .map(Type::Record)
                .map_err(|e| format!("bad record: {e}"))
        }
        b'[' => {
            let mut elems = Vec::new();
            loop {
                match bytes.get(*pos) {
                    Some(b']') => {
                        *pos += 1;
                        break;
                    }
                    Some(_) => elems.push(parse_type_at(bytes, pos)?),
                    None => return Err("unterminated array".to_string()),
                }
            }
            Ok(Type::Array(ArrayType::new(elems)))
        }
        b'*' => Ok(Type::star(parse_type_at(bytes, pos)?)),
        b'(' => {
            let mut addends = Vec::new();
            loop {
                match bytes.get(*pos) {
                    Some(b')') => {
                        *pos += 1;
                        break;
                    }
                    Some(_) => addends.push(parse_type_at(bytes, pos)?),
                    None => return Err("unterminated union".to_string()),
                }
            }
            // `Type::union` re-establishes the flat/kind-unique/sorted
            // invariants; a valid encoding reconstructs identically.
            Type::union(addends).map_err(|e| format!("bad union: {e}"))
        }
        other => Err(format!(
            "bad type lead byte 0x{other:02x} at offset {}",
            *pos - 1
        )),
    }
}

fn parse_name(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    let len: usize = std::str::from_utf8(&bytes[start..*pos])
        .expect("digits are UTF-8")
        .parse()
        .map_err(|_| format!("missing field-name length at offset {start}"))?;
    if bytes.get(*pos) != Some(&b'=') {
        return Err(format!("expected `=` after name length at offset {}", *pos));
    }
    *pos += 1;
    let end = *pos + len;
    if end > bytes.len() {
        return Err("field name runs past end of input".to_string());
    }
    let name = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| "field name is not valid UTF-8".to_string())?
        .to_string();
    *pos = end;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordBuilder;

    #[test]
    fn scalars_round_trip() {
        for ty in [Type::Bottom, Type::Null, Type::Bool, Type::Num, Type::Str] {
            assert_eq!(from_wire(&to_wire(&ty)).unwrap(), ty);
        }
    }

    #[test]
    fn star_bottom_and_empty_array_stay_distinct() {
        let star = Type::star(Type::Bottom);
        let empty = Type::Array(ArrayType::empty());
        // The human notation collapses these to the same "[]" —
        // precisely why the wire codec exists.
        assert_eq!(star.to_string(), empty.to_string());
        assert_ne!(to_wire(&star), to_wire(&empty));
        assert_eq!(from_wire(&to_wire(&star)).unwrap(), star);
        assert_eq!(from_wire(&to_wire(&empty)).unwrap(), empty);
    }

    #[test]
    fn records_unions_and_nesting_round_trip() {
        let ty = RecordBuilder::new()
            .required("id", Type::Num)
            .optional("tags", Type::star(Type::Str))
            .required(
                "meta",
                RecordBuilder::new()
                    .optional("深い", Type::union([Type::Null, Type::Num]).unwrap())
                    .into_type(),
            )
            .into_type();
        let wire = to_wire(&ty);
        assert_eq!(from_wire(&wire).unwrap(), ty);
    }

    #[test]
    fn field_names_with_grammar_bytes_round_trip() {
        // Length-prefixing means names never need escaping, even when
        // they contain the grammar's own bytes.
        let ty = RecordBuilder::new()
            .required("a{]}=*!?(3=x", Type::Bool)
            .into_type();
        assert_eq!(from_wire(&to_wire(&ty)).unwrap(), ty);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in ["", "z", "{", "{!3=abn", "[", "(", "*", "{x", "nn", "{!9=a}"] {
            assert!(from_wire(bad).is_err(), "{bad:?} should fail");
        }
    }

    mod props {
        use super::*;
        use crate::testkit::arb_type;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn wire_round_trip_is_exact(ty in arb_type()) {
                let wire = to_wire(&ty);
                prop_assert_eq!(from_wire(&wire).unwrap(), ty);
            }
        }
    }
}
