//! A generic random-JSON generator for stress tests and scalability
//! experiments that are not tied to one of the four paper datasets.

use crate::{record_rng, text, DatasetProfile};
use rand::Rng;
use typefuse_json::{Map, Value};

/// A configurable random-document generator.
///
/// Unlike the dataset profiles this makes no attempt at realism; it is a
/// dial for structural experiments: depth, fan-out, key-space size and
/// the scalar/array/record mix are all explicit.
#[derive(Debug, Clone)]
pub struct GenericProfile {
    /// Maximum nesting depth of generated records.
    pub max_depth: usize,
    /// Maximum fields per record / elements per array.
    pub max_width: usize,
    /// Number of distinct keys to draw from; smaller = more overlap
    /// between records = better fusion.
    pub key_space: usize,
    /// Probability that a nested position is a record (vs array).
    pub record_bias: f64,
    /// Probability that a position nests at all (vs scalar).
    pub nest_prob: f64,
}

impl Default for GenericProfile {
    fn default() -> Self {
        GenericProfile {
            max_depth: 4,
            max_width: 6,
            key_space: 40,
            record_bias: 0.7,
            nest_prob: 0.35,
        }
    }
}

impl DatasetProfile for GenericProfile {
    fn name(&self) -> &'static str {
        "generic"
    }

    fn record(&self, seed: u64, index: u64) -> Value {
        let mut rng = record_rng(seed ^ 0x67656e6572696321, index);
        self.gen_record(&mut rng, self.max_depth)
    }
}

impl GenericProfile {
    fn key<R: Rng>(&self, r: &mut R) -> String {
        format!("k{:03}", r.gen_range(0..self.key_space.max(1)))
    }

    fn gen_record<R: Rng>(&self, r: &mut R, depth: usize) -> Value {
        let n = r.gen_range(1..=self.max_width.max(1));
        let mut m = Map::with_capacity(n);
        for _ in 0..n {
            let key = self.key(r);
            if !m.contains_key(&key) {
                m.insert_unchecked(key, self.gen_value(r, depth.saturating_sub(1)));
            }
        }
        Value::Object(m)
    }

    fn gen_value<R: Rng>(&self, r: &mut R, depth: usize) -> Value {
        if depth > 0 && r.gen_bool(self.nest_prob) {
            if r.gen_bool(self.record_bias) {
                return self.gen_record(r, depth);
            }
            let n = r.gen_range(0..=self.max_width.max(1));
            return Value::Array(
                (0..n)
                    .map(|_| self.gen_value(r, depth.saturating_sub(1)))
                    .collect(),
            );
        }
        match r.gen_range(0..5) {
            0 => Value::Null,
            1 => Value::Bool(r.gen()),
            2 => Value::from(r.gen_range(-1_000_000..1_000_000i64)),
            3 => Value::from(r.gen_range(-1.0e6..1.0e6)),
            _ => {
                let n = r.gen_range(1..4);
                Value::String(text::words(r, n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_depth_bound() {
        let p = GenericProfile {
            max_depth: 3,
            ..Default::default()
        };
        for v in p.generate(1, 200) {
            assert!(v.depth() <= 4, "depth {} exceeds bound", v.depth());
        }
    }

    #[test]
    fn key_space_controls_overlap() {
        let narrow = GenericProfile {
            key_space: 3,
            ..Default::default()
        };
        let keys: std::collections::HashSet<String> = narrow
            .generate(2, 50)
            .flat_map(|v| {
                v.as_object()
                    .unwrap()
                    .keys()
                    .map(str::to_owned)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(keys.len() <= 3);
    }

    #[test]
    fn deterministic() {
        let p = GenericProfile::default();
        let a: Vec<Value> = p.generate(9, 10).collect();
        let b: Vec<Value> = p.generate(9, 10).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn produces_mixed_scalars() {
        let p = GenericProfile {
            nest_prob: 0.0,
            ..Default::default()
        };
        let values: Vec<Value> = p.generate(3, 100).collect();
        let mut saw_null = false;
        let mut saw_num = false;
        let mut saw_str = false;
        for v in &values {
            for (_, child) in v.as_object().unwrap().iter() {
                saw_null |= child.is_null();
                saw_num |= child.as_f64().is_some();
                saw_str |= child.as_str().is_some();
            }
        }
        assert!(saw_null && saw_num && saw_str);
    }
}
