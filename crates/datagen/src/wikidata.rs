//! The Wikidata profile: entity records with identifiers used as keys.
//!
//! Paper signature (§6.1): facts "structured following a fixed schema,
//! but suffering from a poor design … user identifiers are directly
//! encoded as keys, whereas a clean design would suggest encoding this
//! information as a value … several records reach a nesting level of 6."
//!
//! Here the poor design is reproduced through three key spaces:
//!
//! * `labels` / `descriptions` are keyed by **language codes** (dozens),
//! * `claims` are keyed by **property ids** (`P12`, zipf-like heavy tail),
//! * `sitelinks` are keyed by **site names** (`enwiki`, `frwiki`, …).
//!
//! Because each record draws a random subset of each space, almost every
//! record has a distinct type, and the fused type keeps absorbing new
//! optional keys as the dataset grows — the Table 4 shape, where the
//! fused size grows with N instead of stabilising.

use crate::{record_rng, text, DatasetProfile};
use rand::Rng;
use typefuse_json::{Map, Value};

/// Language codes used as `labels`/`descriptions` keys.
const LANGS: &[&str] = &[
    "en", "fr", "de", "es", "it", "pt", "nl", "ru", "ja", "zh", "ar", "sv", "pl", "tr", "ko", "he",
    "cs", "fi", "da", "no", "hu", "el", "th", "uk", "vi", "id", "fa", "ro", "bg", "ca", "sr", "hr",
    "sk", "lt", "lv", "et",
];

/// Wikipedia site names used as `sitelinks` keys.
const SITES: &[&str] = &[
    "enwiki",
    "frwiki",
    "dewiki",
    "eswiki",
    "itwiki",
    "ptwiki",
    "ruwiki",
    "jawiki",
    "zhwiki",
    "arwiki",
    "svwiki",
    "plwiki",
    "commonswiki",
];

/// Tunable generator for Wikidata-like entity records.
#[derive(Debug, Clone)]
pub struct WikidataProfile {
    /// Size of the property-id space (`P1..=P<n>`).
    pub property_space: u64,
    /// Expected number of languages per record.
    pub langs_per_record: usize,
    /// Expected number of claims per record.
    pub claims_per_record: usize,
    /// Expected number of sitelinks per record.
    pub sitelinks_per_record: usize,
}

impl Default for WikidataProfile {
    fn default() -> Self {
        WikidataProfile {
            property_space: 800,
            langs_per_record: 4,
            claims_per_record: 6,
            sitelinks_per_record: 3,
        }
    }
}

impl DatasetProfile for WikidataProfile {
    fn name(&self) -> &'static str {
        "wikidata"
    }

    fn record(&self, seed: u64, index: u64) -> Value {
        let mut rng = record_rng(seed ^ 0x7769_6b69_6461_7461, index);
        let r = &mut rng;
        let qid = format!("Q{}", 1 + index);

        let mut e = Map::with_capacity(8);
        e.insert_unchecked("type", "item");
        e.insert_unchecked("id", qid.clone());
        e.insert_unchecked(
            "labels",
            self.lang_map(r, |r| Value::String(text::words(r, 2))),
        );
        e.insert_unchecked(
            "descriptions",
            self.lang_map(r, |r| Value::String(text::sentence(r, 3, 8))),
        );
        e.insert_unchecked("aliases", self.aliases(r));
        e.insert_unchecked("claims", self.claims(r, &qid));
        e.insert_unchecked("sitelinks", self.sitelinks(r));
        e.insert_unchecked("lastrevid", r.gen_range(1..400_000_000i64));
        Value::Object(e)
    }
}

impl WikidataProfile {
    /// A record keyed by a random subset of language codes:
    /// `{en: {language: "en", value: …}, fr: …}`.
    fn lang_map<R: Rng>(&self, r: &mut R, mut value: impl FnMut(&mut R) -> Value) -> Value {
        let n = sample_count(r, self.langs_per_record, LANGS.len());
        let langs = sample_subset(r, LANGS, n);
        let mut m = Map::with_capacity(n);
        for lang in langs {
            let mut entry = Map::with_capacity(2);
            entry.insert_unchecked("language", lang);
            entry.insert_unchecked("value", value(r));
            m.insert_unchecked(lang, Value::Object(entry));
        }
        Value::Object(m)
    }

    fn aliases<R: Rng>(&self, r: &mut R) -> Value {
        let n = sample_count(r, self.langs_per_record / 2, LANGS.len());
        let langs = sample_subset(r, LANGS, n);
        let mut m = Map::with_capacity(n);
        for lang in langs {
            let count = r.gen_range(1..=3);
            let list: Vec<Value> = (0..count)
                .map(|_| {
                    let mut a = Map::with_capacity(2);
                    a.insert_unchecked("language", lang);
                    a.insert_unchecked("value", text::words(r, 2));
                    Value::Object(a)
                })
                .collect();
            m.insert_unchecked(lang, Value::Array(list));
        }
        Value::Object(m)
    }

    /// `claims` keyed by property id; values are arrays of statement
    /// records nested 4 deep (total entity nesting reaches 6–7).
    fn claims<R: Rng>(&self, r: &mut R, qid: &str) -> Value {
        let n = sample_count(r, self.claims_per_record, 32);
        let mut m = Map::with_capacity(n);
        for _ in 0..n {
            let pid = format!("P{}", zipf_property(r, self.property_space));
            if m.contains_key(&pid) {
                continue;
            }
            let statements = r.gen_range(1..=2);
            let list: Vec<Value> = (0..statements)
                .map(|k| self.statement(r, qid, &pid, k))
                .collect();
            m.insert_unchecked(pid, Value::Array(list));
        }
        Value::Object(m)
    }

    fn statement<R: Rng>(&self, r: &mut R, qid: &str, pid: &str, k: usize) -> Value {
        let kind = snak_datavalue_kind(r);
        let mut snak = Map::with_capacity(4);
        snak.insert_unchecked("snaktype", "value");
        snak.insert_unchecked("property", pid.to_string());
        snak.insert_unchecked("datatype", kind.datatype_name());
        snak.insert_unchecked("datavalue", self.datavalue(r, kind));
        let mut s = Map::with_capacity(4);
        s.insert_unchecked("mainsnak", Value::Object(snak));
        s.insert_unchecked("type", "statement");
        s.insert_unchecked("id", format!("{qid}${pid}-{k}"));
        s.insert_unchecked(
            "rank",
            ["normal", "preferred", "deprecated"][r.gen_range(0..3)],
        );
        Value::Object(s)
    }

    /// The polymorphic `datavalue`: kind decides both the `datatype`
    /// string and the shape of the nested value — another source of
    /// per-record type variation.
    fn datavalue<R: Rng>(&self, r: &mut R, kind: DatavalueKind) -> Value {
        match kind {
            DatavalueKind::Item => {
                let mut dv = Map::with_capacity(2);
                let mut inner = Map::with_capacity(2);
                inner.insert_unchecked("entity-type", "item");
                inner.insert_unchecked("numeric-id", r.gen_range(1..1_000_000i64));
                dv.insert_unchecked("value", Value::Object(inner));
                dv.insert_unchecked("type", "wikibase-entityid");
                Value::Object(dv)
            }
            DatavalueKind::Time => {
                let mut dv = Map::with_capacity(2);
                let mut inner = Map::with_capacity(3);
                inner.insert_unchecked("time", format!("+{}", text::iso_date(r)));
                inner.insert_unchecked("precision", r.gen_range(9..=11i64));
                inner.insert_unchecked("calendarmodel", "Q1985727");
                dv.insert_unchecked("value", Value::Object(inner));
                dv.insert_unchecked("type", "time");
                Value::Object(dv)
            }
            DatavalueKind::Text => {
                let mut dv = Map::with_capacity(2);
                dv.insert_unchecked("value", text::words(r, 2));
                dv.insert_unchecked("type", "string");
                Value::Object(dv)
            }
            DatavalueKind::Quantity => {
                let mut dv = Map::with_capacity(2);
                let mut inner = Map::with_capacity(3);
                inner.insert_unchecked("amount", format!("+{}", r.gen_range(1..10_000)));
                inner.insert_unchecked("unit", "1");
                inner.insert_unchecked("upperBound", Value::Null);
                dv.insert_unchecked("value", Value::Object(inner));
                dv.insert_unchecked("type", "quantity");
                Value::Object(dv)
            }
        }
    }

    fn sitelinks<R: Rng>(&self, r: &mut R) -> Value {
        let n = sample_count(r, self.sitelinks_per_record, SITES.len());
        let sites = sample_subset(r, SITES, n);
        let mut m = Map::with_capacity(n);
        for site in sites {
            let mut link = Map::with_capacity(3);
            link.insert_unchecked("site", site);
            link.insert_unchecked("title", text::words(r, 2));
            link.insert_unchecked(
                "badges",
                Value::Array(
                    (0..r.gen_range(0..2))
                        .map(|_| Value::from(format!("Q{}", r.gen_range(1..100))))
                        .collect(),
                ),
            );
            m.insert_unchecked(site, Value::Object(link));
        }
        Value::Object(m)
    }
}

enum DatavalueKind {
    Item,
    Time,
    Text,
    Quantity,
}

impl DatavalueKind {
    fn datatype_name(&self) -> &'static str {
        match self {
            DatavalueKind::Item => "wikibase-item",
            DatavalueKind::Time => "time",
            DatavalueKind::Text => "string",
            DatavalueKind::Quantity => "quantity",
        }
    }
}

fn snak_datavalue_kind<R: Rng>(r: &mut R) -> DatavalueKind {
    match r.gen_range(0..4) {
        0 => DatavalueKind::Item,
        1 => DatavalueKind::Time,
        2 => DatavalueKind::Text,
        _ => DatavalueKind::Quantity,
    }
}

/// Poisson-ish count around `mean`, clamped to `[1, max]`.
fn sample_count<R: Rng>(r: &mut R, mean: usize, max: usize) -> usize {
    let spread = (mean / 2).max(1);
    let lo = mean.saturating_sub(spread).max(1);
    let hi = (mean + spread).min(max.max(1));
    r.gen_range(lo..=hi)
}

/// Random subset of `pool` of size `n`, preserving pool order.
fn sample_subset<'a, R: Rng>(r: &mut R, pool: &[&'a str], n: usize) -> Vec<&'a str> {
    let mut picked: Vec<usize> = Vec::with_capacity(n);
    while picked.len() < n.min(pool.len()) {
        let i = r.gen_range(0..pool.len());
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    picked.sort_unstable();
    picked.into_iter().map(|i| pool[i]).collect()
}

/// Zipf-like property id in `1..=space`: low ids are much more common,
/// matching how P31/P17/P18 dominate real Wikidata.
fn zipf_property<R: Rng>(r: &mut R, space: u64) -> u64 {
    let u: f64 = r.gen_range(0.0f64..1.0);
    // Inverse-CDF of a power law with exponent ≈ 1.3.
    let x = (space as f64).powf(u.powf(1.6));
    (x as u64).clamp(1, space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn sample(n: usize) -> Vec<Value> {
        WikidataProfile::default().generate(11, n).collect()
    }

    #[test]
    fn ids_as_keys_vary_per_record() {
        let records = sample(50);
        let mut claim_key_sets = HashSet::new();
        for v in &records {
            let keys: Vec<String> = v
                .get("claims")
                .unwrap()
                .as_object()
                .unwrap()
                .keys()
                .map(str::to_owned)
                .collect();
            claim_key_sets.insert(keys);
        }
        assert!(
            claim_key_sets.len() > 40,
            "claim key sets should be nearly all distinct ({})",
            claim_key_sets.len()
        );
    }

    #[test]
    fn property_distribution_is_heavy_tailed() {
        let records = sample(300);
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for v in &records {
            for (k, _) in v.get("claims").unwrap().as_object().unwrap().iter() {
                *counts.entry(k.to_string()).or_default() += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let distinct = counts.len();
        assert!(max > 20, "a head property should dominate (max {max})");
        assert!(
            distinct > 100,
            "the tail should be wide (distinct {distinct})"
        );
    }

    #[test]
    fn nesting_reaches_six() {
        let deepest = sample(100).iter().map(Value::depth).max().unwrap();
        assert!(deepest >= 6, "deepest {deepest} < 6");
        assert!(deepest <= 8, "deepest {deepest} > 8");
    }

    #[test]
    fn fixed_skeleton_keys() {
        for v in sample(20) {
            for key in [
                "type",
                "id",
                "labels",
                "descriptions",
                "claims",
                "sitelinks",
            ] {
                assert!(v.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn label_entries_carry_language() {
        let v = &sample(1)[0];
        let labels = v.get("labels").unwrap().as_object().unwrap();
        assert!(!labels.is_empty());
        for (lang, entry) in labels.iter() {
            assert_eq!(entry.get("language").unwrap().as_str(), Some(lang));
        }
    }

    #[test]
    fn qids_are_sequential() {
        let records = sample(3);
        assert_eq!(records[0].get("id").unwrap().as_str(), Some("Q1"));
        assert_eq!(records[2].get("id").unwrap().as_str(), Some("Q3"));
    }
}
