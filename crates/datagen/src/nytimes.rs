//! The NYTimes profile: article metadata.
//!
//! Paper signature (§6.1): "records feature both nested records and
//! arrays and are nested up to 7 levels. Most of the fields … are
//! associated to text data … the content of fields is not fixed and
//! varies from one record to another. … the content of the headline
//! field is associated, in some records, to subfields labeled main,
//! content, kicker … while in other records it is associated to
//! subfields labeled main and print_headline. Another common pattern …
//! is the use of Num and Str types for the same field."
//!
//! The first level is fixed (every record has the same top-level keys);
//! all variation happens below it. This is why NYTimes fuses *better*
//! than the others in Table 5: the top level collapses perfectly and
//! only leaf unions accumulate.

use crate::{record_rng, text, DatasetProfile};
use rand::Rng;
use typefuse_json::{Map, Value};

/// Tunable generator for NYTimes-like article records.
#[derive(Debug, Clone)]
pub struct NYTimesProfile {
    /// Probability that a numeric-ish field is emitted as `Str` instead
    /// of `Num` (the paper's Num/Str mixing).
    pub str_num_mix: f64,
    /// Probability that `headline` uses the kicker variant rather than
    /// the print variant.
    pub kicker_variant_prob: f64,
    /// Maximum keywords per article.
    pub max_keywords: usize,
    /// Maximum multimedia entries per article.
    pub max_multimedia: usize,
}

impl Default for NYTimesProfile {
    fn default() -> Self {
        NYTimesProfile {
            str_num_mix: 0.3,
            kicker_variant_prob: 0.5,
            max_keywords: 5,
            max_multimedia: 3,
        }
    }
}

impl DatasetProfile for NYTimesProfile {
    fn name(&self) -> &'static str {
        "nytimes"
    }

    fn record(&self, seed: u64, index: u64) -> Value {
        let mut rng = record_rng(seed ^ 0x6e79_7469_6d65_7321, index);
        let r = &mut rng;

        let mut a = Map::with_capacity(20);
        a.insert_unchecked("web_url", text::url(r, "www.nytimes.com", 4));
        a.insert_unchecked("snippet", text::sentence(r, 8, 25));
        a.insert_unchecked("lead_paragraph", text::sentence(r, 20, 60));
        a.insert_unchecked("abstract", self.nullable_sentence(r, 0.4, 6, 20));
        a.insert_unchecked("print_page", self.num_or_str(r, 1..=40));
        a.insert_unchecked("blog", Value::Array(vec![]));
        a.insert_unchecked("source", "The New York Times");
        a.insert_unchecked("multimedia", self.multimedia(r));
        a.insert_unchecked("headline", self.headline(r));
        a.insert_unchecked("keywords", self.keywords(r));
        a.insert_unchecked("pub_date", text::iso_date(r));
        a.insert_unchecked("document_type", "article");
        a.insert_unchecked("news_desk", self.nullable_word(r, 0.3));
        a.insert_unchecked("section_name", self.nullable_word(r, 0.2));
        a.insert_unchecked("subsection_name", self.nullable_word(r, 0.7));
        a.insert_unchecked("byline", self.byline(r));
        a.insert_unchecked("type_of_material", "News");
        a.insert_unchecked("_id", text::sha(r)[..24].to_string());
        a.insert_unchecked("word_count", self.num_or_str(r, 50..=3000));
        a.insert_unchecked("slideshow_credits", Value::Null);
        Value::Object(a)
    }
}

impl NYTimesProfile {
    /// The paper's Num/Str mixing on the same field.
    fn num_or_str<R: Rng>(&self, r: &mut R, range: std::ops::RangeInclusive<i64>) -> Value {
        let n = r.gen_range(range);
        if r.gen_bool(self.str_num_mix) {
            Value::String(n.to_string())
        } else {
            Value::from(n)
        }
    }

    fn nullable_sentence<R: Rng>(&self, r: &mut R, p_null: f64, min: usize, max: usize) -> Value {
        if r.gen_bool(p_null) {
            Value::Null
        } else {
            Value::String(text::sentence(r, min, max))
        }
    }

    fn nullable_word<R: Rng>(&self, r: &mut R, p_null: f64) -> Value {
        if r.gen_bool(p_null) {
            Value::Null
        } else {
            Value::String(text::word(r).to_string())
        }
    }

    /// The two headline variants called out by the paper.
    fn headline<R: Rng>(&self, r: &mut R) -> Value {
        let mut h = Map::with_capacity(4);
        h.insert_unchecked("main", text::sentence(r, 4, 10));
        if r.gen_bool(self.kicker_variant_prob) {
            h.insert_unchecked("content_kicker", text::words(r, 2));
            h.insert_unchecked("kicker", text::word(r).to_string());
        } else {
            h.insert_unchecked("print_headline", text::sentence(r, 4, 10));
        }
        Value::Object(h)
    }

    fn keywords<R: Rng>(&self, r: &mut R) -> Value {
        let n = r.gen_range(0..=self.max_keywords);
        let list: Vec<Value> = (0..n)
            .map(|i| {
                let mut k = Map::with_capacity(4);
                k.insert_unchecked(
                    "name",
                    ["subject", "persons", "glocations", "organizations"][r.gen_range(0..4)],
                );
                k.insert_unchecked("value", text::words(r, 2));
                // rank is sometimes Num, sometimes Str — per the paper.
                k.insert_unchecked("rank", self.num_or_str(r, 1..=9));
                if r.gen_bool(0.5) {
                    k.insert_unchecked("is_major", if r.gen_bool(0.5) { "Y" } else { "N" });
                }
                let _ = i;
                Value::Object(k)
            })
            .collect();
        Value::Array(list)
    }

    /// `multimedia[].legacy` nests to level 4; with the array and the top
    /// record the article reaches 5–7 total depth.
    fn multimedia<R: Rng>(&self, r: &mut R) -> Value {
        let n = r.gen_range(0..=self.max_multimedia);
        let list: Vec<Value> = (0..n)
            .map(|_| {
                let mut m = Map::with_capacity(6);
                m.insert_unchecked("url", text::url(r, "static01.nyt.com", 3));
                m.insert_unchecked("format", ["thumbnail", "wide", "xlarge"][r.gen_range(0..3)]);
                m.insert_unchecked("height", r.gen_range(50..=800i64));
                m.insert_unchecked("width", r.gen_range(50..=800i64));
                m.insert_unchecked("type", "image");
                m.insert_unchecked("legacy", self.legacy(r));
                Value::Object(m)
            })
            .collect();
        Value::Array(list)
    }

    fn legacy<R: Rng>(&self, r: &mut R) -> Value {
        let mut l = Map::with_capacity(3);
        // Variant subfields, lower-level variation again.
        if r.gen_bool(0.5) {
            l.insert_unchecked("xlarge", text::url(r, "static01.nyt.com", 2));
            l.insert_unchecked("xlargewidth", r.gen_range(100..=800i64));
            l.insert_unchecked("xlargeheight", r.gen_range(100..=800i64));
        } else {
            l.insert_unchecked("thumbnail", text::url(r, "static01.nyt.com", 2));
            l.insert_unchecked("thumbnailwidth", r.gen_range(50..=150i64));
        }
        Value::Object(l)
    }

    fn byline<R: Rng>(&self, r: &mut R) -> Value {
        if r.gen_bool(0.15) {
            return Value::Null;
        }
        let mut b = Map::with_capacity(3);
        let n = r.gen_range(1..=2);
        let people: Vec<Value> = (0..n)
            .map(|rank| {
                let mut p = Map::with_capacity(5);
                p.insert_unchecked("firstname", text::username(r));
                p.insert_unchecked(
                    "middlename",
                    if r.gen_bool(0.7) {
                        Value::Null
                    } else {
                        Value::from(text::word(r))
                    },
                );
                p.insert_unchecked("lastname", text::username(r));
                p.insert_unchecked("rank", rank as i64 + 1);
                p.insert_unchecked("role", "reported");
                Value::Object(p)
            })
            .collect();
        b.insert_unchecked("person", Value::Array(people));
        if r.gen_bool(0.1) {
            b.insert_unchecked("organization", "The New York Times");
        }
        b.insert_unchecked("original", format!("By {}", text::username(r)));
        Value::Object(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Value> {
        NYTimesProfile::default().generate(5, n).collect()
    }

    #[test]
    fn top_level_keys_are_fixed() {
        let records = sample(50);
        let first: Vec<&str> = records[0].as_object().unwrap().keys().collect();
        for v in &records {
            let keys: Vec<&str> = v.as_object().unwrap().keys().collect();
            assert_eq!(keys, first);
        }
    }

    #[test]
    fn headline_has_two_variants() {
        let records = sample(100);
        let kicker = records
            .iter()
            .filter(|v| v.get("headline").unwrap().get("kicker").is_some())
            .count();
        let print = records
            .iter()
            .filter(|v| v.get("headline").unwrap().get("print_headline").is_some())
            .count();
        assert!(kicker > 0 && print > 0);
        assert_eq!(kicker + print, 100, "exactly one variant per record");
    }

    #[test]
    fn num_str_mixing_on_word_count() {
        let records = sample(200);
        let strings = records
            .iter()
            .filter(|v| v.get("word_count").unwrap().as_str().is_some())
            .count();
        assert!(strings > 20, "some word_count are strings ({strings})");
        assert!(strings < 180, "some word_count are numbers");
    }

    #[test]
    fn depth_reaches_five_or_more() {
        let deepest = sample(100).iter().map(Value::depth).max().unwrap();
        assert!(deepest >= 5, "deepest {deepest}");
    }

    #[test]
    fn records_are_text_heavy() {
        // NYTimes records should serialize much larger than their node
        // count would suggest (the paper: 22 GB for 1.2 M records).
        let v = &sample(1)[0];
        let bytes = typefuse_json::to_string(v).len();
        assert!(bytes > 500, "record only {bytes} bytes");
    }

    #[test]
    fn keyword_records_vary_in_shape() {
        let records = sample(200);
        let with_major = records.iter().any(|v| {
            v.get("keywords")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .any(|k| k.get("is_major").is_some())
        });
        let without_major = records.iter().any(|v| {
            v.get("keywords")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .any(|k| k.get("is_major").is_none())
        });
        assert!(with_major && without_major);
    }
}
