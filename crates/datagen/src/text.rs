//! Small deterministic text generators shared by the dataset profiles:
//! words, sentences, identifiers, hashes, URLs, ISO dates.

use rand::Rng;

/// A compact word list; realistic enough for byte-size measurements and
/// guaranteed ASCII so serialized sizes are predictable.
pub const WORDS: &[&str] = &[
    "data", "schema", "record", "query", "index", "merge", "stream", "node", "array", "field",
    "value", "type", "union", "parse", "store", "batch", "shard", "block", "plan", "scan", "fuse",
    "map", "reduce", "spark", "table", "graph", "cache", "page", "lake", "json", "tree", "path",
    "city", "river", "house", "light", "paper", "world", "music", "green",
];

/// First names for user-ish fields.
pub const NAMES: &[&str] = &[
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy", "mallory",
    "oscar", "peggy", "trent", "victor", "wendy",
];

/// A random word.
pub fn word<R: Rng>(rng: &mut R) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

/// `n` random words joined by spaces.
pub fn words<R: Rng>(rng: &mut R, n: usize) -> String {
    let mut s = String::with_capacity(n * 6);
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(word(rng));
    }
    s
}

/// A sentence of `min..=max` words with a capital letter and period.
pub fn sentence<R: Rng>(rng: &mut R, min: usize, max: usize) -> String {
    let n = rng.gen_range(min..=max.max(min));
    let mut s = words(rng, n);
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    s.push('.');
    s
}

/// A user name like `grace_42`.
pub fn username<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}_{}",
        NAMES[rng.gen_range(0..NAMES.len())],
        rng.gen_range(0..1000)
    )
}

/// A 40-hex-character SHA-like string.
pub fn sha<R: Rng>(rng: &mut R) -> String {
    const HEX: &[u8] = b"0123456789abcdef";
    (0..40).map(|_| HEX[rng.gen_range(0..16)] as char).collect()
}

/// An `https://…` URL with `segments` path segments.
pub fn url<R: Rng>(rng: &mut R, host: &str, segments: usize) -> String {
    let mut s = format!("https://{host}");
    for _ in 0..segments {
        s.push('/');
        s.push_str(word(rng));
    }
    s
}

/// An ISO-8601 timestamp in 2016 (the paper's datasets are 2016 crawls).
pub fn iso_date<R: Rng>(rng: &mut R) -> String {
    format!(
        "2016-{:02}-{:02}T{:02}:{:02}:{:02}Z",
        rng.gen_range(1..=12),
        rng.gen_range(1..=28),
        rng.gen_range(0..24),
        rng.gen_range(0..60),
        rng.gen_range(0..60),
    )
}

/// A numeric id as a decimal string (Twitter's `id_str` convention).
pub fn id_str<R: Rng>(rng: &mut R) -> (i64, String) {
    let id: i64 = rng.gen_range(1_000_000_000..=999_999_999_999);
    (id, id.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_rng;

    #[test]
    fn words_are_space_joined() {
        let mut rng = record_rng(1, 1);
        let s = words(&mut rng, 4);
        assert_eq!(s.split(' ').count(), 4);
    }

    #[test]
    fn sentence_is_capitalised_and_terminated() {
        let mut rng = record_rng(1, 2);
        let s = sentence(&mut rng, 3, 8);
        assert!(s.chars().next().unwrap().is_ascii_uppercase());
        assert!(s.ends_with('.'));
    }

    #[test]
    fn sha_is_40_hex() {
        let mut rng = record_rng(1, 3);
        let s = sha(&mut rng);
        assert_eq!(s.len(), 40);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn url_shape() {
        let mut rng = record_rng(1, 4);
        let u = url(&mut rng, "api.example.com", 2);
        assert!(u.starts_with("https://api.example.com/"));
        assert_eq!(u.matches('/').count(), 4);
    }

    #[test]
    fn iso_date_shape() {
        let mut rng = record_rng(1, 5);
        let d = iso_date(&mut rng);
        assert_eq!(d.len(), 20);
        assert!(d.starts_with("2016-"));
        assert!(d.ends_with('Z'));
    }

    #[test]
    fn id_str_matches_id() {
        let mut rng = record_rng(1, 6);
        let (id, s) = id_str(&mut rng);
        assert_eq!(s.parse::<i64>().unwrap(), id);
    }

    #[test]
    fn empty_words() {
        let mut rng = record_rng(1, 7);
        assert_eq!(words(&mut rng, 0), "");
    }
}
