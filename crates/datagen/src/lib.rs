//! # typefuse-datagen
//!
//! Seeded synthetic generators for the four datasets of the paper's
//! evaluation (Section 6.1). The real datasets (GitHub and Twitter crawls
//! borrowed from DiScala & Abadi, a Wikidata snapshot, an NYTimes API
//! crawl — up to 75 GB) are not redistributable, so each generator is
//! engineered to reproduce the *structural signature* the paper reports,
//! which is what the evaluation actually measures:
//!
//! | profile   | signature |
//! |-----------|-----------|
//! | [`github`]   | one homogeneous top-level record kind, nesting ≤ 4, **no arrays**; variation only through nullable and rare optional fields |
//! | [`twitter`]  | five top-level kinds sharing structure; tiny `delete` records (min type size ≈ 7); arrays of records; nesting ≤ 3 |
//! | [`wikidata`] | identifiers (property ids, language codes, site names) used **as record keys**, so nearly every record has a distinct type and the fused type keeps growing |
//! | [`nytimes`]  | fixed first-level schema, varying lower levels: two `headline` variants, fields oscillating between `Num` and `Str`, nullable text fields, heterogeneous keyword arrays; nesting ≤ 7, text-heavy |
//!
//! All generators are deterministic functions of `(seed, index)` — records
//! are generated from a per-record RNG, so dataset prefixes are stable and
//! generation parallelises trivially.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generic;
pub mod github;
pub mod nytimes;
pub mod stats;
pub mod text;
pub mod twitter;
pub mod wikidata;

use typefuse_json::Value;

/// The common interface of dataset generators.
pub trait DatasetProfile {
    /// Short machine-readable name (`github`, `twitter`, …).
    fn name(&self) -> &'static str;

    /// Generate the record at `index` for the dataset identified by
    /// `seed`. Deterministic: the same `(seed, index)` always produces
    /// the same record.
    fn record(&self, seed: u64, index: u64) -> Value;

    /// Iterator over records `0..n`.
    fn generate(&self, seed: u64, n: usize) -> ProfileIter<'_, Self>
    where
        Self: Sized,
    {
        ProfileIter {
            profile: self,
            seed,
            next: 0,
            end: n as u64,
        }
    }
}

/// Iterator returned by [`DatasetProfile::generate`].
pub struct ProfileIter<'a, P: DatasetProfile> {
    profile: &'a P,
    seed: u64,
    next: u64,
    end: u64,
}

impl<P: DatasetProfile> Iterator for ProfileIter<'_, P> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        if self.next >= self.end {
            return None;
        }
        let v = self.profile.record(self.seed, self.next);
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.next) as usize;
        (rem, Some(rem))
    }
}

impl<P: DatasetProfile> ExactSizeIterator for ProfileIter<'_, P> {}

/// The four evaluation datasets, as one dispatchable enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// GitHub pull-request metadata.
    GitHub,
    /// Twitter statuses and deletes.
    Twitter,
    /// Wikidata entities.
    Wikidata,
    /// NYTimes article metadata.
    NYTimes,
}

impl Profile {
    /// All four profiles in the paper's order.
    pub const ALL: [Profile; 4] = [
        Profile::GitHub,
        Profile::Twitter,
        Profile::Wikidata,
        Profile::NYTimes,
    ];

    /// Parse from the CLI-facing name.
    pub fn from_name(name: &str) -> Option<Profile> {
        match name.to_ascii_lowercase().as_str() {
            "github" => Some(Profile::GitHub),
            "twitter" => Some(Profile::Twitter),
            "wikidata" => Some(Profile::Wikidata),
            "nytimes" => Some(Profile::NYTimes),
            _ => None,
        }
    }
}

impl DatasetProfile for Profile {
    fn name(&self) -> &'static str {
        match self {
            Profile::GitHub => "github",
            Profile::Twitter => "twitter",
            Profile::Wikidata => "wikidata",
            Profile::NYTimes => "nytimes",
        }
    }

    fn record(&self, seed: u64, index: u64) -> Value {
        match self {
            Profile::GitHub => github::GitHubProfile::default().record(seed, index),
            Profile::Twitter => twitter::TwitterProfile::default().record(seed, index),
            Profile::Wikidata => wikidata::WikidataProfile::default().record(seed, index),
            Profile::NYTimes => nytimes::NYTimesProfile::default().record(seed, index),
        }
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Derive the per-record RNG for `(seed, index)`: a SplitMix64 scramble
/// feeding a seeded `StdRng`-free small PRNG (xoshiro-style via `rand`'s
/// `SeedableRng` on `rand::rngs::StdRng`).
pub(crate) fn record_rng(seed: u64, index: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    // SplitMix64 over (seed, index) to decorrelate consecutive records.
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    rand::rngs::StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_deterministic() {
        for p in Profile::ALL {
            let a: Vec<Value> = p.generate(42, 5).collect();
            let b: Vec<Value> = p.generate(42, 5).collect();
            assert_eq!(a, b, "{p} not deterministic");
            let c: Vec<Value> = p.generate(43, 5).collect();
            assert_ne!(a, c, "{p} ignores the seed");
        }
    }

    #[test]
    fn prefixes_are_stable() {
        for p in Profile::ALL {
            let long: Vec<Value> = p.generate(7, 10).collect();
            let short: Vec<Value> = p.generate(7, 4).collect();
            assert_eq!(&long[..4], &short[..], "{p} prefix unstable");
        }
    }

    #[test]
    fn names_round_trip() {
        for p in Profile::ALL {
            assert_eq!(Profile::from_name(p.name()), Some(p));
        }
        assert_eq!(Profile::from_name("GitHub"), Some(Profile::GitHub));
        assert_eq!(Profile::from_name("nope"), None);
    }

    #[test]
    fn iterator_len_is_exact() {
        let it = Profile::GitHub.generate(1, 17);
        assert_eq!(it.len(), 17);
        assert_eq!(it.count(), 17);
    }

    #[test]
    fn every_record_is_an_object() {
        for p in Profile::ALL {
            for v in p.generate(3, 20) {
                assert!(v.as_object().is_some(), "{p} produced a non-record");
            }
        }
    }
}
