//! The GitHub profile: pull-request metadata.
//!
//! Paper signature (§6.1): "1 million JSON objects sharing the same
//! top-level schema and only varying in their lower-level schema. All
//! objects … consist exclusively of records, sometimes nested, with a
//! nesting depth never greater than four. Arrays are not used at all."
//!
//! Variation comes from two mechanisms, both *below* the top level:
//!
//! * nullable leaves (`closed_at`, `merged_at`, `body`, …) that are
//!   sometimes `Null` and sometimes typed — these fuse into `T + Null`
//!   without growing the schema;
//! * rare optional sub-records (`milestone`, `assignee`, repo
//!   `license`) whose independent presence combinations make the number
//!   of *distinct* per-record types grow steadily with the dataset while
//!   the *fused* type stays near-constant — the Table 2 shape.

use crate::{record_rng, text, DatasetProfile};
use rand::Rng;
use typefuse_json::{Map, Value};

/// Tunable generator for GitHub-like pull-request records.
#[derive(Debug, Clone)]
pub struct GitHubProfile {
    /// Probability that a nullable timestamp/text field is `null`.
    pub null_prob: f64,
    /// Probability that the `milestone` sub-record is present (vs null).
    pub milestone_prob: f64,
    /// Probability that the `assignee` sub-record is present (vs null).
    pub assignee_prob: f64,
    /// Probability of each rare deep optional field (drives distinct-type
    /// growth).
    pub rare_prob: f64,
}

impl Default for GitHubProfile {
    fn default() -> Self {
        GitHubProfile {
            null_prob: 0.35,
            milestone_prob: 0.15,
            assignee_prob: 0.25,
            rare_prob: 0.004,
        }
    }
}

impl DatasetProfile for GitHubProfile {
    fn name(&self) -> &'static str {
        "github"
    }

    fn record(&self, seed: u64, index: u64) -> Value {
        let mut rng = record_rng(seed ^ 0x6974_4875_622e_636f, index);
        let r = &mut rng;
        let number = 1 + index as i64;
        // The PR lifecycle state correlates the nullable fields the way
        // real pull requests do: open PRs have no closed_at/merged_at,
        // merged PRs have both plus a merge commit. Correlation keeps the
        // number of *distinct* record types growing slowly (Table 2) where
        // independent nullables would explode combinatorially.
        let state = r.gen_range(0..3u8); // 0 = open, 1 = closed, 2 = merged

        let mut pr = Map::with_capacity(24);
        pr.insert_unchecked("id", 10_000_000 + number);
        pr.insert_unchecked("url", text::url(r, "api.github.com", 3));
        pr.insert_unchecked("number", number);
        pr.insert_unchecked("state", if state == 0 { "open" } else { "closed" });
        pr.insert_unchecked("locked", r.gen_bool(0.05));
        pr.insert_unchecked("title", text::sentence(r, 3, 9));
        pr.insert_unchecked("body", self.nullable_text(r, 5, 40));
        pr.insert_unchecked("created_at", text::iso_date(r));
        pr.insert_unchecked("updated_at", text::iso_date(r));
        pr.insert_unchecked(
            "closed_at",
            if state >= 1 {
                Value::String(text::iso_date(r))
            } else {
                Value::Null
            },
        );
        pr.insert_unchecked(
            "merged_at",
            if state == 2 {
                Value::String(text::iso_date(r))
            } else {
                Value::Null
            },
        );
        pr.insert_unchecked(
            "merge_commit_sha",
            if state == 2 {
                Value::String(text::sha(r))
            } else {
                Value::Null
            },
        );
        pr.insert_unchecked("user", self.user(r));
        pr.insert_unchecked(
            "assignee",
            if r.gen_bool(self.assignee_prob) {
                self.user(r)
            } else {
                Value::Null
            },
        );
        pr.insert_unchecked(
            "milestone",
            if r.gen_bool(self.milestone_prob) {
                self.milestone(r)
            } else {
                Value::Null
            },
        );
        pr.insert_unchecked("head", self.branch(r));
        pr.insert_unchecked("base", self.branch(r));
        pr.insert_unchecked("comments", r.gen_range(0..50i64));
        pr.insert_unchecked("commits", r.gen_range(1..30i64));
        pr.insert_unchecked("additions", r.gen_range(0..5_000i64));
        pr.insert_unchecked("deletions", r.gen_range(0..5_000i64));
        pr.insert_unchecked("changed_files", r.gen_range(1..100i64));
        pr.insert_unchecked("mergeable_state", text::word(r));
        Value::Object(pr)
    }
}

impl GitHubProfile {
    fn nullable_text<R: Rng>(&self, r: &mut R, min: usize, max: usize) -> Value {
        if r.gen_bool(self.null_prob) {
            Value::Null
        } else {
            Value::String(text::sentence(r, min, max))
        }
    }

    fn nullable_date<R: Rng>(&self, r: &mut R) -> Value {
        if r.gen_bool(self.null_prob) {
            Value::Null
        } else {
            Value::String(text::iso_date(r))
        }
    }

    /// depth 2 sub-record.
    fn user<R: Rng>(&self, r: &mut R) -> Value {
        let login = text::username(r);
        let mut u = Map::with_capacity(8);
        u.insert_unchecked("id", r.gen_range(1..5_000_000i64));
        u.insert_unchecked("avatar_url", text::url(r, "avatars.github.com", 1));
        u.insert_unchecked("gravatar_id", "");
        u.insert_unchecked("url", format!("https://api.github.com/users/{login}"));
        u.insert_unchecked("type", "User");
        u.insert_unchecked("site_admin", r.gen_bool(0.01));
        // Rare optional deep fields: each independently present.
        if r.gen_bool(self.rare_prob) {
            u.insert_unchecked("name", text::username(r));
        }
        if r.gen_bool(self.rare_prob) {
            u.insert_unchecked("company", text::word(r).to_string());
        }
        u.insert_unchecked("login", login);
        Value::Object(u)
    }

    fn milestone<R: Rng>(&self, r: &mut R) -> Value {
        let mut m = Map::with_capacity(8);
        m.insert_unchecked("id", r.gen_range(1..100_000i64));
        m.insert_unchecked("number", r.gen_range(1..200i64));
        m.insert_unchecked("title", text::words(r, 2));
        m.insert_unchecked("description", self.nullable_text(r, 3, 12));
        m.insert_unchecked("open_issues", r.gen_range(0..100i64));
        m.insert_unchecked("closed_issues", r.gen_range(0..100i64));
        m.insert_unchecked("state", "open");
        m.insert_unchecked("due_on", self.nullable_date(r));
        Value::Object(m)
    }

    /// depth 3–4 sub-record (`branch.repo.owner` is level 4).
    fn branch<R: Rng>(&self, r: &mut R) -> Value {
        let mut b = Map::with_capacity(5);
        b.insert_unchecked("label", format!("{}:{}", text::username(r), text::word(r)));
        b.insert_unchecked("ref", text::word(r).to_string());
        b.insert_unchecked("sha", text::sha(r));
        b.insert_unchecked("user", self.user(r));
        b.insert_unchecked("repo", self.repo(r));
        Value::Object(b)
    }

    fn repo<R: Rng>(&self, r: &mut R) -> Value {
        let name = text::word(r);
        let mut repo = Map::with_capacity(14);
        repo.insert_unchecked("id", r.gen_range(1..10_000_000i64));
        repo.insert_unchecked("name", name);
        repo.insert_unchecked("full_name", format!("{}/{}", text::username(r), name));
        repo.insert_unchecked("owner", self.user(r));
        repo.insert_unchecked("private", r.gen_bool(0.1));
        repo.insert_unchecked(
            "description",
            if r.gen_bool(0.06) {
                Value::Null
            } else {
                Value::String(text::sentence(r, 2, 10))
            },
        );
        repo.insert_unchecked("fork", r.gen_bool(0.3));
        repo.insert_unchecked("size", r.gen_range(0..1_000_000i64));
        repo.insert_unchecked("stargazers_count", r.gen_range(0..50_000i64));
        repo.insert_unchecked("language", self.nullable_language(r));
        repo.insert_unchecked("has_issues", r.gen_bool(0.9));
        repo.insert_unchecked("has_wiki", r.gen_bool(0.7));
        repo.insert_unchecked("default_branch", "master");
        if r.gen_bool(self.rare_prob) {
            repo.insert_unchecked("homepage", text::url(r, "example.com", 1));
        }
        Value::Object(repo)
    }

    fn nullable_language<R: Rng>(&self, r: &mut R) -> Value {
        const LANGS: &[&str] = &["Rust", "Scala", "Java", "Python", "Go", "C"];
        if r.gen_bool(0.06) {
            Value::Null
        } else {
            Value::String(LANGS[r.gen_range(0..LANGS.len())].to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Value> {
        GitHubProfile::default().generate(99, n).collect()
    }

    #[test]
    fn no_arrays_anywhere() {
        fn has_array(v: &Value) -> bool {
            match v {
                Value::Array(_) => true,
                Value::Object(m) => m.values().any(has_array),
                _ => false,
            }
        }
        for v in sample(100) {
            assert!(!has_array(&v), "GitHub records must not contain arrays");
        }
    }

    #[test]
    fn depth_at_most_five() {
        // Paper: nesting never greater than four *below* the root record;
        // with our depth() convention (root counts 1) that is ≤ 5.
        for v in sample(100) {
            assert!(v.depth() <= 5, "depth {} too deep: {v}", v.depth());
        }
    }

    #[test]
    fn top_level_keys_are_fixed() {
        let records = sample(50);
        let first: Vec<&str> = records[0].as_object().unwrap().keys().collect();
        for v in &records {
            let keys: Vec<&str> = v.as_object().unwrap().keys().collect();
            assert_eq!(keys, first, "top-level schema must be identical");
        }
    }

    #[test]
    fn nullable_fields_actually_vary() {
        let records = sample(200);
        let nulls = records
            .iter()
            .filter(|v| v.get("closed_at").unwrap().is_null())
            .count();
        assert!(nulls > 10, "some closed_at should be null");
        assert!(nulls < 190, "some closed_at should be set");
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let records = sample(10);
        let ids: Vec<i64> = records
            .iter()
            .map(|v| v.get("id").unwrap().as_i64().unwrap())
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }
}
