//! The Twitter profile: statuses and deletes.
//!
//! Paper signature (§6.1): "nearly 10 million records corresponding, in
//! majority, to tweet entities. A tiny fraction … corresponds to a
//! specific API call meant to delete tweets … it uses both records and
//! arrays of records, although the maximum level of nesting is 3 …
//! it contains five different top-level schemas sharing common parts …
//! it mixes two kinds of JSON records (tweets and deletes)."
//!
//! The five top-level kinds here: plain tweet, reply, retweet, quote and
//! delete. Deletes are tiny (their inferred type has size ≈ 7 — the
//! `min` column of Table 3). Entity arrays (`hashtags`, `urls`,
//! `user_mentions`) are arrays of records with varying length, including
//! empty — the array-fusion stress the paper uses this dataset for.

use crate::{record_rng, text, DatasetProfile};
use rand::Rng;
use typefuse_json::{Map, Value};

/// Tunable generator for Twitter-like status records.
#[derive(Debug, Clone)]
pub struct TwitterProfile {
    /// Fraction of records that are `delete` envelopes.
    pub delete_frac: f64,
    /// Fraction of statuses that are replies.
    pub reply_frac: f64,
    /// Fraction of statuses that are retweets.
    pub retweet_frac: f64,
    /// Fraction of statuses that are quotes.
    pub quote_frac: f64,
    /// Maximum entities per entity array.
    pub max_entities: usize,
}

impl Default for TwitterProfile {
    fn default() -> Self {
        TwitterProfile {
            delete_frac: 0.03,
            reply_frac: 0.25,
            retweet_frac: 0.20,
            quote_frac: 0.07,
            max_entities: 3,
        }
    }
}

impl DatasetProfile for TwitterProfile {
    fn name(&self) -> &'static str {
        "twitter"
    }

    fn record(&self, seed: u64, index: u64) -> Value {
        let mut rng = record_rng(seed ^ 0x7477_6974_7465_7221, index);
        let r = &mut rng;
        let roll: f64 = r.gen();
        if roll < self.delete_frac {
            return self.delete(r);
        }
        let style = {
            let s: f64 = r.gen();
            if s < self.reply_frac {
                Kind::Reply
            } else if s < self.reply_frac + self.retweet_frac {
                Kind::Retweet
            } else if s < self.reply_frac + self.retweet_frac + self.quote_frac {
                Kind::Quote
            } else {
                Kind::Plain
            }
        };
        self.status(r, style, true)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Plain,
    Reply,
    Retweet,
    Quote,
}

impl TwitterProfile {
    /// The tiny delete envelope — inferred type size 7 once the
    /// single-field records are counted:
    /// `{delete: {status: {id: Num, user_id: Num}, timestamp_ms: Str}}`.
    fn delete<R: Rng>(&self, r: &mut R) -> Value {
        let (id, _) = text::id_str(r);
        let mut status = Map::with_capacity(2);
        status.insert_unchecked("id", id);
        status.insert_unchecked("user_id", r.gen_range(1..100_000_000i64));
        let mut delete = Map::with_capacity(2);
        delete.insert_unchecked("status", Value::Object(status));
        delete.insert_unchecked(
            "timestamp_ms",
            r.gen_range(1_000_000_000_000i64..1_500_000_000_000)
                .to_string(),
        );
        let mut top = Map::with_capacity(1);
        top.insert_unchecked("delete", Value::Object(delete));
        Value::Object(top)
    }

    /// A status record. `top_level` controls whether the embedded
    /// retweeted/quoted status is included (embedded statuses are plain).
    fn status<R: Rng>(&self, r: &mut R, kind: Kind, top_level: bool) -> Value {
        let (id, id_str) = text::id_str(r);
        let mut t = Map::with_capacity(20);
        t.insert_unchecked("created_at", text::iso_date(r));
        t.insert_unchecked("id", id);
        t.insert_unchecked("id_str", id_str);
        t.insert_unchecked("text", text::sentence(r, 3, 16));
        t.insert_unchecked("source", text::url(r, "twitter.com", 1));
        t.insert_unchecked("truncated", r.gen_bool(0.05));
        match kind {
            Kind::Reply => {
                let (rid, rid_str) = text::id_str(r);
                t.insert_unchecked("in_reply_to_status_id", rid);
                t.insert_unchecked("in_reply_to_status_id_str", rid_str);
                t.insert_unchecked("in_reply_to_screen_name", text::username(r));
            }
            _ => {
                t.insert_unchecked("in_reply_to_status_id", Value::Null);
                t.insert_unchecked("in_reply_to_status_id_str", Value::Null);
                t.insert_unchecked("in_reply_to_screen_name", Value::Null);
            }
        }
        t.insert_unchecked("user", self.user(r));
        // geo is almost always null; occasionally a coordinates record —
        // a Null + {…} union in the fused schema.
        t.insert_unchecked(
            "geo",
            if r.gen_bool(0.02) {
                self.geo(r)
            } else {
                Value::Null
            },
        );
        if top_level {
            match kind {
                Kind::Retweet => {
                    t.insert_unchecked("retweeted_status", self.status(r, Kind::Plain, false));
                }
                Kind::Quote => {
                    let (qid, qid_str) = text::id_str(r);
                    t.insert_unchecked("quoted_status_id", qid);
                    t.insert_unchecked("quoted_status_id_str", qid_str);
                    t.insert_unchecked("quoted_status", self.status(r, Kind::Plain, false));
                }
                _ => {}
            }
        }
        t.insert_unchecked("retweet_count", r.gen_range(0..10_000i64));
        t.insert_unchecked("favorite_count", r.gen_range(0..10_000i64));
        t.insert_unchecked("entities", self.entities(r));
        t.insert_unchecked("favorited", false);
        t.insert_unchecked("retweeted", false);
        t.insert_unchecked("filter_level", "low");
        t.insert_unchecked("lang", ["en", "fr", "es", "de", "ja"][r.gen_range(0..5)]);
        Value::Object(t)
    }

    fn user<R: Rng>(&self, r: &mut R) -> Value {
        let (id, id_str) = text::id_str(r);
        let mut u = Map::with_capacity(12);
        u.insert_unchecked("id", id);
        u.insert_unchecked("id_str", id_str);
        u.insert_unchecked("name", text::username(r));
        u.insert_unchecked("screen_name", text::username(r));
        u.insert_unchecked(
            "description",
            if r.gen_bool(0.3) {
                Value::Null
            } else {
                Value::String(text::sentence(r, 2, 8))
            },
        );
        u.insert_unchecked("verified", r.gen_bool(0.02));
        u.insert_unchecked("followers_count", r.gen_range(0..1_000_000i64));
        u.insert_unchecked("friends_count", r.gen_range(0..10_000i64));
        u.insert_unchecked("statuses_count", r.gen_range(0..100_000i64));
        u.insert_unchecked("created_at", text::iso_date(r));
        u.insert_unchecked(
            "lang",
            if r.gen_bool(0.5) {
                Value::Null
            } else {
                Value::from("en")
            },
        );
        Value::Object(u)
    }

    fn geo<R: Rng>(&self, r: &mut R) -> Value {
        let mut g = Map::with_capacity(2);
        g.insert_unchecked("type", "Point");
        g.insert_unchecked(
            "coordinates",
            Value::Array(vec![
                Value::from(r.gen_range(-90.0..90.0)),
                Value::from(r.gen_range(-180.0..180.0)),
            ]),
        );
        Value::Object(g)
    }

    fn entities<R: Rng>(&self, r: &mut R) -> Value {
        let mut e = Map::with_capacity(3);
        e.insert_unchecked(
            "hashtags",
            self.entity_array(r, |r| {
                let mut h = Map::with_capacity(2);
                h.insert_unchecked("text", text::word(r).to_string());
                h.insert_unchecked("indices", index_pair(r));
                Value::Object(h)
            }),
        );
        e.insert_unchecked(
            "urls",
            self.entity_array(r, |r| {
                let mut u = Map::with_capacity(3);
                u.insert_unchecked("url", text::url(r, "t.co", 1));
                u.insert_unchecked("expanded_url", text::url(r, "example.com", 2));
                u.insert_unchecked("indices", index_pair(r));
                Value::Object(u)
            }),
        );
        e.insert_unchecked(
            "user_mentions",
            self.entity_array(r, |r| {
                let (id, id_str) = text::id_str(r);
                let mut m = Map::with_capacity(4);
                m.insert_unchecked("screen_name", text::username(r));
                m.insert_unchecked("id", id);
                m.insert_unchecked("id_str", id_str);
                m.insert_unchecked("indices", index_pair(r));
                Value::Object(m)
            }),
        );
        Value::Object(e)
    }

    fn entity_array<R: Rng>(&self, r: &mut R, mut item: impl FnMut(&mut R) -> Value) -> Value {
        let n = r.gen_range(0..=self.max_entities);
        Value::Array((0..n).map(|_| item(r)).collect())
    }
}

fn index_pair<R: Rng>(r: &mut R) -> Value {
    let start = r.gen_range(0..100i64);
    Value::Array(vec![
        Value::from(start),
        Value::from(start + r.gen_range(1..20i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Value> {
        TwitterProfile::default().generate(7, n).collect()
    }

    fn is_delete(v: &Value) -> bool {
        v.get("delete").is_some()
    }

    #[test]
    fn mixes_deletes_and_tweets() {
        let records = sample(2000);
        let deletes = records.iter().filter(|v| is_delete(v)).count();
        assert!(deletes > 10, "deletes present ({deletes})");
        assert!(deletes < 200, "deletes are a tiny fraction ({deletes})");
    }

    #[test]
    fn deletes_are_tiny() {
        let profile = TwitterProfile {
            delete_frac: 1.0,
            ..Default::default()
        };
        let v = profile.generate(1, 1).next().unwrap();
        assert!(is_delete(&v));
        // {delete: {status: {id, user_id}, timestamp_ms}}: 3 record nodes,
        // 4 field nodes, 3 leaves = 10-11 nodes — orders of magnitude
        // smaller than a tweet.
        assert!(v.tree_size() <= 12, "delete tree size {}", v.tree_size());
    }

    #[test]
    fn five_top_level_kinds_appear() {
        let records = sample(3000);
        let mut kinds = [0usize; 5];
        for v in &records {
            if is_delete(v) {
                kinds[0] += 1;
            } else if v.get("retweeted_status").is_some() {
                kinds[1] += 1;
            } else if v.get("quoted_status").is_some() {
                kinds[2] += 1;
            } else if !v.get("in_reply_to_status_id").unwrap().is_null() {
                kinds[3] += 1;
            } else {
                kinds[4] += 1;
            }
        }
        for (i, count) in kinds.iter().enumerate() {
            assert!(*count > 0, "kind {i} never generated");
        }
    }

    #[test]
    fn entity_arrays_hold_records() {
        let records = sample(300);
        let with_hashtags = records.iter().find_map(|v| {
            let tags = v.get("entities")?.get("hashtags")?.as_array()?;
            if tags.is_empty() {
                None
            } else {
                Some(tags[0].clone())
            }
        });
        let tag = with_hashtags.expect("some tweet has hashtags");
        assert!(tag.get("text").is_some());
        assert_eq!(tag.get("indices").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn empty_entity_arrays_occur() {
        let records = sample(300);
        let empty = records.iter().any(|v| {
            v.get("entities")
                .and_then(|e| e.get("hashtags"))
                .and_then(Value::as_array)
                .is_some_and(|a| a.is_empty())
        });
        assert!(empty, "empty entity arrays must occur (fusion ε case)");
    }

    #[test]
    fn statuses_share_common_top_level_parts() {
        let records = sample(100);
        for v in records.iter().filter(|v| !is_delete(v)) {
            for key in ["created_at", "id", "text", "user", "entities", "lang"] {
                assert!(v.get(key).is_some(), "missing {key}");
            }
        }
    }
}
