//! Dataset-level measurements: serialized byte size, record counts, depth
//! distribution — the raw ingredients of the paper's Table 1.

use typefuse_json::Value;

/// Aggregate statistics over a stream of records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetStats {
    /// Number of records.
    pub records: u64,
    /// Total serialized size in bytes (compact NDJSON, including the
    /// newline per record) — the Table 1 metric.
    pub bytes: u64,
    /// Maximum nesting depth observed.
    pub max_depth: usize,
    /// Sum of depths (for the average).
    depth_sum: u64,
    /// Sum of value-tree node counts.
    node_sum: u64,
}

impl DatasetStats {
    /// Measure a stream of values.
    pub fn measure<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let mut s = DatasetStats::default();
        for v in values {
            s.add(v);
        }
        s
    }

    /// Fold one record into the statistics.
    pub fn add(&mut self, value: &Value) {
        self.records += 1;
        self.bytes += typefuse_json::to_string(value).len() as u64 + 1;
        let d = value.depth();
        self.max_depth = self.max_depth.max(d);
        self.depth_sum += d as u64;
        self.node_sum += value.tree_size() as u64;
    }

    /// Combine with stats from another partition.
    pub fn merge(&mut self, other: &DatasetStats) {
        self.records += other.records;
        self.bytes += other.bytes;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.depth_sum += other.depth_sum;
        self.node_sum += other.node_sum;
    }

    /// Mean nesting depth.
    pub fn avg_depth(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.records as f64
        }
    }

    /// Mean nodes per record.
    pub fn avg_nodes(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.node_sum as f64 / self.records as f64
        }
    }

    /// Human-readable size (`14.0 MB` style, powers of 1000 like the
    /// paper's tables).
    pub fn human_bytes(&self) -> String {
        human_bytes(self.bytes)
    }
}

/// Format a byte count the way the paper's Table 1 does.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: &[&str] = &["B", "KB", "MB", "GB", "TB"];
    let mut size = bytes as f64;
    let mut unit = 0;
    while size >= 1000.0 && unit + 1 < UNITS.len() {
        size /= 1000.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{size:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    #[test]
    fn measures_counts_and_bytes() {
        let values = [json!({"a": 1}), json!({"a": 22})];
        let s = DatasetStats::measure(&values);
        assert_eq!(s.records, 2);
        // {"a":1}\n = 8, {"a":22}\n = 9
        assert_eq!(s.bytes, 17);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.avg_depth(), 2.0);
        assert!(s.avg_nodes() > 0.0);
    }

    #[test]
    fn merge_is_additive() {
        let a = DatasetStats::measure(&[json!({"a": 1})]);
        let b = DatasetStats::measure(&[json!([1, [2]])]);
        let mut merged = a.clone();
        merged.merge(&b);
        let direct = DatasetStats::measure(&[json!({"a": 1}), json!([1, [2]])]);
        assert_eq!(merged, direct);
    }

    #[test]
    fn empty_stats() {
        let s = DatasetStats::default();
        assert_eq!(s.avg_depth(), 0.0);
        assert_eq!(s.avg_nodes(), 0.0);
        assert_eq!(s.records, 0);
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(14), "14 B");
        assert_eq!(human_bytes(14_000), "14.0 KB");
        assert_eq!(human_bytes(14_200_000), "14.2 MB");
        assert_eq!(human_bytes(2_100_000_000), "2.1 GB");
    }
}
