//! Differential properties of the event fast path: folding a value's
//! serialized bytes through `infer_from_events` must be indistinguishable
//! from materialising the tree and running Figure 4 on it. This is the
//! contract that lets the pipeline default to the event route while the
//! paper's correctness results are stated for the tree one.

use proptest::prelude::*;
use typefuse_infer::streaming::{
    infer_type_from_slice, infer_type_from_str, infer_type_from_str_recorded,
};
use typefuse_infer::{fuse_all, infer_type};
use typefuse_json::{to_string, to_string_pretty};
use typefuse_obs::Recorder;
use typefuse_types::testkit::arb_value;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The core equivalence: serialize → event fold == tree inference.
    #[test]
    fn event_fold_of_serialized_bytes_matches_tree_inference(v in arb_value()) {
        let bytes = to_string(&v).into_bytes();
        prop_assert_eq!(infer_type_from_slice(&bytes).unwrap(), infer_type(&v));
    }

    // Whitespace-insensitive: the pretty serialization (newlines and
    // indentation between tokens) folds to the same type.
    #[test]
    fn pretty_serialization_folds_identically(v in arb_value()) {
        let pretty = to_string_pretty(&v);
        prop_assert_eq!(infer_type_from_str(&pretty).unwrap(), infer_type(&v));
    }

    // Lemma 5.1 soundness holds on the event route: the inferred type
    // admits the value it came from.
    #[test]
    fn event_inferred_type_admits_the_value(v in arb_value()) {
        let ty = infer_type_from_str(&to_string(&v)).unwrap();
        prop_assert!(ty.admits(&v), "{} does not admit {}", ty, v);
    }

    // The recorded variant is observationally pure: same type, and one
    // `infer.types` tick per record regardless of the recorder state.
    #[test]
    fn recorded_event_fold_is_observationally_pure(v in arb_value()) {
        let enabled = Recorder::enabled();
        let text = to_string(&v);
        let ty = infer_type_from_str_recorded(&text, &enabled).unwrap();
        prop_assert_eq!(&ty, &infer_type(&v));
        prop_assert_eq!(enabled.counter_value("infer.types"), 1);
        prop_assert!(enabled.counter_value("infer.events") >= 1);

        let disabled = Recorder::disabled();
        prop_assert_eq!(
            infer_type_from_str_recorded(&text, &disabled).unwrap(),
            ty
        );
        prop_assert!(disabled.snapshot().counters.is_empty());
    }

    // End-to-end over a whole stream: fusing event-route types equals
    // fusing tree-route types — the schemas of the two Map paths are
    // byte-identical, not merely equivalent.
    #[test]
    fn fused_schemas_agree_across_routes(values in prop::collection::vec(arb_value(), 1..12)) {
        let via_events: Vec<_> = values
            .iter()
            .map(|v| infer_type_from_str(&to_string(v)).unwrap())
            .collect();
        let via_trees: Vec<_> = values.iter().map(infer_type).collect();
        let a = fuse_all(&via_events);
        let b = fuse_all(&via_trees);
        prop_assert_eq!(a.to_string(), b.to_string(), "schemas must render identically");
        prop_assert_eq!(a, b);
    }
}
