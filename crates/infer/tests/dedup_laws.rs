//! Property tests for the shape-dedup reduce: the hash-consing interner
//! and the memoized id-level fusion must be invisible — every law is an
//! agreement with the plain (uninterned, unmemoized) operators.
//!
//! * Interner round-trip: `resolve(intern(t)) = t` exactly.
//! * `fuse_ids` ≡ `fuse_with` on arbitrary pairs, for both array-fusion
//!   configurations, *including* equal pairs (fusion is only
//!   semantically idempotent: `[Bool] ⊔ [Bool] = [Bool*]`, so the
//!   dedup route may not skip self-fusions — it memoizes them).
//! * The memo cache is transparent: repeats and swapped operand orders
//!   (the key is the unordered id pair, licensed by Theorem 5.4) return
//!   exactly the uncached answer.
//! * Self-fusion reaches its fixpoint in one step at the id level, the
//!   same law the plain operator satisfies.
//! * End-to-end: `DedupFuser` accumulation and arbitrary
//!   partition/merge splits equal `fuse_all` over the same stream.

use proptest::prelude::*;
use typefuse_infer::{
    fuse_all, fuse_ids, fuse_with, infer_type, ArrayFusion, DedupAcc, FuseCache, FuseConfig,
};
use typefuse_types::testkit::{arb_type, arb_value};
use typefuse_types::TypeInterner;

fn configs() -> [FuseConfig; 2] {
    [
        FuseConfig::default(),
        FuseConfig {
            array_fusion: ArrayFusion::PositionalWhenAligned,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // ---- Interner round-trip ---------------------------------------------

    #[test]
    fn intern_resolve_is_identity(t in arb_type()) {
        let mut interner = TypeInterner::new();
        let id = interner.intern(&t);
        prop_assert_eq!(interner.resolve(id), t);
    }

    // Hash-consing: equal trees get equal ids, and re-interning the
    // resolved type is stable.
    #[test]
    fn interning_is_stable(t in arb_type()) {
        let mut interner = TypeInterner::new();
        let id = interner.intern(&t);
        prop_assert_eq!(interner.intern(&t), id);
        let resolved = interner.resolve(id);
        prop_assert_eq!(interner.intern(&resolved), id);
    }

    // ---- fuse_ids ≡ fuse_with --------------------------------------------

    #[test]
    fn fuse_ids_agrees_with_fuse_with(t1 in arb_type(), t2 in arb_type()) {
        for cfg in configs() {
            let mut interner = TypeInterner::new();
            let mut cache = FuseCache::new();
            let id1 = interner.intern(&t1);
            let id2 = interner.intern(&t2);
            let fused = fuse_ids(cfg, &mut interner, &mut cache, id1, id2);
            prop_assert_eq!(interner.resolve(fused), fuse_with(cfg, &t1, &t2));
        }
    }

    // Equal pairs too: Fuse(T,T) is *not* syntactically T when T holds a
    // positional array, and the id route must reproduce that exactly.
    #[test]
    fn fuse_ids_agrees_with_fuse_with_on_equal_pairs(t in arb_type()) {
        for cfg in configs() {
            let mut interner = TypeInterner::new();
            let mut cache = FuseCache::new();
            let id = interner.intern(&t);
            let fused = fuse_ids(cfg, &mut interner, &mut cache, id, id);
            prop_assert_eq!(interner.resolve(fused), fuse_with(cfg, &t, &t));
        }
    }

    // ---- Memo transparency (Theorem 5.4 keys the unordered pair) ---------

    #[test]
    fn memo_cache_is_transparent(t1 in arb_type(), t2 in arb_type()) {
        let cfg = FuseConfig::default();
        let mut interner = TypeInterner::new();
        let mut cache = FuseCache::new();
        let id1 = interner.intern(&t1);
        let id2 = interner.intern(&t2);
        let first = fuse_ids(cfg, &mut interner, &mut cache, id1, id2);
        let hits_before = cache.hits();
        // Repeat and swap both replay from the cache…
        let repeat = fuse_ids(cfg, &mut interner, &mut cache, id1, id2);
        let swapped = fuse_ids(cfg, &mut interner, &mut cache, id2, id1);
        prop_assert_eq!(repeat, first);
        prop_assert_eq!(swapped, first);
        if id1 != typefuse_types::TypeId::BOTTOM && id2 != typefuse_types::TypeId::BOTTOM {
            prop_assert_eq!(cache.hits(), hits_before + 2);
        }
        // …and the cached answer is the uncached one.
        prop_assert_eq!(interner.resolve(first), fuse_with(cfg, &t1, &t2));
    }

    // ---- Idempotence at the fixpoint --------------------------------------

    #[test]
    fn id_self_fusion_reaches_fixpoint_in_one_step(t in arb_type()) {
        let cfg = FuseConfig::default();
        let mut interner = TypeInterner::new();
        let mut cache = FuseCache::new();
        let id = interner.intern(&t);
        let once = fuse_ids(cfg, &mut interner, &mut cache, id, id);
        let twice = fuse_ids(cfg, &mut interner, &mut cache, once, once);
        prop_assert_eq!(twice, once, "fuse(u,u) must equal u for u = fuse(t,t)");
    }

    // ---- End-to-end: DedupAcc ≡ fuse_all -----------------------------------

    #[test]
    fn dedup_accumulation_equals_fuse_all(values in prop::collection::vec(arb_value(), 0..12)) {
        let cfg = FuseConfig::default();
        let types: Vec<_> = values.iter().map(infer_type).collect();
        let mut acc = DedupAcc::new();
        for ty in &types {
            acc.absorb_type(cfg, ty);
        }
        prop_assert_eq!(acc.schema(), fuse_all(&types));
        prop_assert_eq!(acc.records(), types.len() as u64);
    }

    // Any split into partitions, merged in order, equals the single
    // stream — the law `Dataset::reduce_fused` relies on.
    #[test]
    fn dedup_merge_is_partition_invariant(
        values in prop::collection::vec(arb_value(), 1..12),
        split in any::<prop::sample::Index>(),
    ) {
        let cfg = FuseConfig::default();
        let types: Vec<_> = values.iter().map(infer_type).collect();
        let mid = split.index(types.len() + 1);
        let mut left = DedupAcc::new();
        for ty in &types[..mid] {
            left.absorb_type(cfg, ty);
        }
        let mut right = DedupAcc::new();
        for ty in &types[mid..] {
            right.absorb_type(cfg, ty);
        }
        left.merge(cfg, &right);
        prop_assert_eq!(left.schema(), fuse_all(&types));
        prop_assert_eq!(left.records(), types.len() as u64);
    }
}
