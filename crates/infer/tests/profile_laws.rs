//! Property tests for the profiling accumulator's monoid laws.
//!
//! The profiler rides the same parallel reduce as fusion, so its merge
//! must satisfy the same algebra (the profile analogue of Theorems
//! 5.4/5.5), and the two Map routes must observe identically:
//!
//! * **commutativity** — `merge(a, b) = merge(b, a)`;
//! * **associativity** — `merge(merge(a, b), c) = merge(a, merge(b, c))`;
//! * **identity** — merging an empty accumulator changes nothing;
//! * **partition invariance** — any split of the input into contiguous
//!   partitions, merged in any association, equals sequential
//!   absorption (this is what makes provenance lines exact under
//!   `--workers N`);
//! * **route equivalence** — the event fold and the tree walk produce
//!   byte-identical profiles for the same lines.
//!
//! Equality is checked on the finished [`ProfileReport`] (structural)
//! and on its serialized JSON (byte-level, what CI diffs).

use proptest::prelude::*;
use typefuse_infer::{ProfileAcc, ProfileReport};
use typefuse_json::Value;
use typefuse_types::testkit::arb_value;

/// Absorb `values` as records numbered from `first_line`.
fn acc_from(first_line: u64, values: &[Value]) -> ProfileAcc {
    let mut acc = ProfileAcc::new();
    for (i, v) in values.iter().enumerate() {
        acc.absorb_value_at(first_line + i as u64, v);
    }
    acc
}

fn merged(a: &ProfileAcc, b: &ProfileAcc) -> ProfileAcc {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn finish(acc: &ProfileAcc) -> ProfileReport {
    acc.clone().finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(arb_value(), 0..8),
        b in prop::collection::vec(arb_value(), 0..8),
    ) {
        // Distinct line ranges, as partitions of one input would have.
        let a = acc_from(1, &a);
        let b = acc_from(100, &b);
        let ab = finish(&merged(&a, &b));
        let ba = finish(&merged(&b, &a));
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(arb_value(), 0..6),
        b in prop::collection::vec(arb_value(), 0..6),
        c in prop::collection::vec(arb_value(), 0..6),
    ) {
        let a = acc_from(1, &a);
        let b = acc_from(100, &b);
        let c = acc_from(200, &c);
        let left = finish(&merged(&merged(&a, &b), &c));
        let right = finish(&merged(&a, &merged(&b, &c)));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.to_json(), right.to_json());
    }

    #[test]
    fn empty_acc_is_identity(values in prop::collection::vec(arb_value(), 0..8)) {
        let acc = acc_from(1, &values);
        let empty = ProfileAcc::new();
        prop_assert_eq!(finish(&merged(&acc, &empty)), finish(&acc));
        prop_assert_eq!(finish(&merged(&empty, &acc)), finish(&acc));
    }

    #[test]
    fn partitioned_merge_equals_sequential(
        values in prop::collection::vec(arb_value(), 1..14),
        raw_splits in prop::collection::vec(0usize..14, 0..3),
    ) {
        let sequential = finish(&acc_from(1, &values));
        // Split the record stream at arbitrary (deduped, sorted)
        // boundaries, preserving each record's global line number.
        let mut splits: Vec<usize> = raw_splits
            .into_iter()
            .map(|s| s % (values.len() + 1))
            .collect();
        splits.sort_unstable();
        splits.dedup();
        splits.push(values.len());
        let mut parts: Vec<ProfileAcc> = Vec::new();
        let mut start = 0usize;
        for end in splits {
            if end > start {
                parts.push(acc_from(start as u64 + 1, &values[start..end]));
                start = end;
            }
        }
        let mut combined = ProfileAcc::new();
        for part in &parts {
            combined.merge(part);
        }
        let combined = finish(&combined);
        prop_assert_eq!(&combined, &sequential);
        prop_assert_eq!(combined.to_json(), sequential.to_json());
    }

    #[test]
    fn event_and_value_routes_produce_identical_profiles(
        values in prop::collection::vec(arb_value(), 1..10),
    ) {
        let mut via_events = ProfileAcc::new();
        let mut via_values = ProfileAcc::new();
        for (i, v) in values.iter().enumerate() {
            let line = i as u64 + 1;
            let text = v.to_string();
            via_events.absorb_line(line, &text);
            via_values.absorb_line_as_value(line, &text);
        }
        let a = finish(&via_events);
        let b = finish(&via_values);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn profiled_schema_matches_plain_fusion(
        values in prop::collection::vec(arb_value(), 1..10),
    ) {
        use typefuse_infer::{fuse_all, infer_type};
        let types: Vec<_> = values.iter().map(infer_type).collect();
        let profile = finish(&acc_from(1, &values));
        prop_assert_eq!(profile.schema, fuse_all(&types));
        prop_assert_eq!(profile.records, values.len() as u64);
    }
}
