//! Property tests for the paper's theorems.
//!
//! * Lemma 5.1  — soundness of inference: `v ∈ ⟦infer(v)⟧`.
//! * Theorem 5.2 — correctness of `Fuse`: `T₁ <: Fuse(T₁,T₂)` and
//!   `T₂ <: Fuse(T₁,T₂)` — checked both syntactically (`is_subtype`) and
//!   semantically (sampled members stay admitted).
//! * Theorem 5.4 — commutativity: `Fuse(T₁,T₂) = Fuse(T₂,T₁)`.
//! * Theorem 5.5 — associativity:
//!   `Fuse(Fuse(T₁,T₂),T₃) = Fuse(T₁,Fuse(T₂,T₃))`.
//! * Normality preservation: fusion outputs satisfy all structural
//!   invariants.
//! * Idempotence: `Fuse(T,T) = T` (not stated in the paper but implied by
//!   its examples, and required for the reduce to be stable under
//!   duplicated partitions).

use proptest::prelude::*;
use typefuse_infer::{fuse, fuse_all, infer_type, Incremental};
use typefuse_types::testkit::{arb_type, arb_value, sample_member};
use typefuse_types::{is_subtype, Type};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // ---- Lemma 5.1 -------------------------------------------------------

    #[test]
    fn inference_is_sound(v in arb_value()) {
        let t = infer_type(&v);
        prop_assert!(t.admits(&v), "{} does not admit {}", t, v);
        prop_assert!(t.check_invariants().is_ok());
    }

    // ---- Theorem 5.4 -----------------------------------------------------

    #[test]
    fn fuse_is_commutative(t1 in arb_type(), t2 in arb_type()) {
        prop_assert_eq!(fuse(&t1, &t2), fuse(&t2, &t1));
    }

    // ---- Theorem 5.5 -----------------------------------------------------

    #[test]
    fn fuse_is_associative(t1 in arb_type(), t2 in arb_type(), t3 in arb_type()) {
        let left = fuse(&fuse(&t1, &t2), &t3);
        let right = fuse(&t1, &fuse(&t2, &t3));
        prop_assert_eq!(left, right);
    }

    // ---- Theorem 5.2, syntactic ------------------------------------------

    #[test]
    fn fuse_is_correct_syntactically(t1 in arb_type(), t2 in arb_type()) {
        let fused = fuse(&t1, &t2);
        prop_assert!(is_subtype(&t1, &fused), "{} </: {}", t1, fused);
        prop_assert!(is_subtype(&t2, &fused), "{} </: {}", t2, fused);
    }

    // ---- Theorem 5.2, semantic -------------------------------------------

    #[test]
    fn fuse_preserves_membership(
        (t1, v) in arb_type().prop_flat_map(|t| {
            let s = sample_member(&t);
            (Just(t), s)
        }),
        t2 in arb_type(),
    ) {
        if let Some(v) = v {
            let fused = fuse(&t1, &t2);
            prop_assert!(fused.admits(&v), "{} lost member {} after fusing with {}", fused, v, t2);
        }
    }

    // ---- Structural properties -------------------------------------------

    #[test]
    fn fuse_preserves_normality(t1 in arb_type(), t2 in arb_type()) {
        prop_assert!(fuse(&t1, &t2).check_invariants().is_ok());
    }

    // Fusion is *not* syntactically idempotent on raw types: a positional
    // array meeting itself collapses to its starred form ([] ⊔ [] = [ε*]).
    // But self-fusion collapses every positional array, and on collapsed
    // types fusion is a true fixpoint — one self-fusion always stabilises.
    #[test]
    fn self_fusion_reaches_fixpoint_in_one_step(t in arb_type()) {
        let once = fuse(&t, &t);
        prop_assert!(is_subtype(&t, &once), "{} </: {}", t, once);
        prop_assert_eq!(fuse(&once, &once), once);
    }

    #[test]
    fn bottom_is_identity(t in arb_type()) {
        prop_assert_eq!(fuse(&Type::Bottom, &t), t.clone());
        prop_assert_eq!(fuse(&t, &Type::Bottom), t);
    }

    // Re-fusing an input into the result only moves upward in the subtype
    // order, and the fully collapsed form is an absorbing fixpoint.
    #[test]
    fn refusing_inputs_is_monotone(t1 in arb_type(), t2 in arb_type()) {
        let once = fuse(&t1, &t2);
        let again = fuse(&once, &t1);
        prop_assert!(is_subtype(&once, &again), "{} </: {}", once, again);
        let stable = fuse(&once, &once);
        prop_assert_eq!(fuse(&stable, &once), stable.clone());
        prop_assert_eq!(fuse(&stable, &stable), stable);
    }

    // ---- End-to-end: values in, one schema out ----------------------------

    #[test]
    fn fused_schema_admits_every_input(values in prop::collection::vec(arb_value(), 1..12)) {
        let types: Vec<Type> = values.iter().map(infer_type).collect();
        let schema = fuse_all(&types);
        for v in &values {
            prop_assert!(schema.admits(v), "{} does not admit {}", schema, v);
        }
        prop_assert!(schema.check_invariants().is_ok());
    }

    // Any parenthesisation/order of the reduce gives the same schema: the
    // property Spark relies on (Section 5.2).
    #[test]
    fn reduce_order_is_irrelevant(
        values in prop::collection::vec(arb_value(), 2..10),
        split in any::<prop::sample::Index>(),
    ) {
        let types: Vec<Type> = values.iter().map(infer_type).collect();
        let sequential = fuse_all(&types);

        // Tree shape: fuse two halves.
        let mid = 1 + split.index(types.len() - 1);
        let left = fuse_all(&types[..mid]);
        let right = fuse_all(&types[mid..]);
        prop_assert_eq!(fuse(&left, &right), sequential.clone());

        // Reversed order.
        let reversed = fuse_all(types.iter().rev());
        prop_assert_eq!(reversed, sequential);
    }

    #[test]
    fn incremental_equals_batch(values in prop::collection::vec(arb_value(), 0..10)) {
        let mut inc = Incremental::new();
        for v in &values {
            inc.absorb(v);
        }
        let batch = fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
        prop_assert_eq!(inc.schema(), &batch);
        prop_assert_eq!(inc.count(), values.len() as u64);
    }

    // ---- In-place fusion agrees with by-reference fusion --------------------
    #[test]
    fn fuse_into_agrees_with_fuse(t1 in arb_type(), t2 in arb_type()) {
        let by_ref = fuse(&t1, &t2);
        let mut in_place = t1.clone();
        typefuse_infer::fuse_into(Default::default(), &mut in_place, &t2);
        prop_assert_eq!(in_place, by_ref);
    }

    // ---- Streaming inference agrees with tree inference ---------------------
    #[test]
    fn streaming_inference_agrees_with_tree(v in arb_value()) {
        let text = v.to_string();
        let direct = typefuse_infer::streaming::infer_type_from_str(&text).unwrap();
        prop_assert_eq!(direct, infer_type(&v));
    }

    // ---- Completeness (Section 1) ------------------------------------------
    // Every path traversable in any input value is traversable in the
    // fused schema — the property enabling schema-based query rewriting.
    #[test]
    fn fused_schema_covers_every_value_path(
        values in prop::collection::vec(arb_value(), 1..10)
    ) {
        let schema = fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
        for v in &values {
            prop_assert!(
                typefuse_types::paths::covers_value_paths(&schema, v),
                "{} does not cover paths of {}", schema, v
            );
        }
    }

    // Fusion only adds paths, never removes them.
    #[test]
    fn fusion_is_path_monotone(t1 in arb_type(), t2 in arb_type()) {
        let fused = fuse(&t1, &t2);
        let fused_paths = typefuse_types::paths::type_paths(&fused);
        for p in typefuse_types::paths::type_paths(&t1) {
            prop_assert!(fused_paths.contains(&p), "path {} lost", p);
        }
    }

    // Projecting a value by the fused schema is the identity (nothing the
    // data contains is missing from the schema).
    #[test]
    fn projection_by_fused_schema_is_identity(
        values in prop::collection::vec(arb_value(), 1..8)
    ) {
        let schema = fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
        for v in &values {
            prop_assert_eq!(&typefuse_infer::project(v, &schema), v);
        }
    }

    // Fused size never exceeds the sum of input sizes plus the union node:
    // the succinctness guarantee that motivates fusion (Section 2).
    #[test]
    fn fusion_never_blows_up(t1 in arb_type(), t2 in arb_type()) {
        let fused = fuse(&t1, &t2);
        prop_assert!(
            fused.size() <= t1.size() + t2.size() + 1,
            "|{}| = {} > {} + {} + 1", fused, fused.size(), t1.size(), t2.size()
        );
    }
}
