//! Recorded variants of the inference and fusion entry points.
//!
//! [`infer_type`] and [`fuse`](crate::fuse) are pure
//! functions — the paper's correctness results (Theorem 5.5 in
//! particular) are stated for them as algebra, and the property-test
//! suites exercise them as such. Instrumentation therefore lives in
//! wrappers rather than in the algorithms: the pipeline calls these
//! `*_recorded` functions, everything else (and every law test) keeps
//! calling the pure ones.
//!
//! Metrics emitted (all no-ops with a disabled [`Recorder`]):
//!
//! | name                 | kind      | meaning                                   |
//! |----------------------|-----------|-------------------------------------------|
//! | `infer.types`        | counter   | values mapped to types (Map phase)        |
//! | `infer.record_width` | histogram | field count of each top-level record type |
//! | `infer.max_depth`    | gauge     | deepest inferred type seen (max-merged)   |
//! | `fuse.calls`         | counter   | binary fusions performed (Reduce phase)   |
//! | `fuse.union_width`   | histogram | addend count of each fusion result        |

use typefuse_json::Value;
use typefuse_obs::Recorder;
use typefuse_types::Type;

use crate::{fuse_with, infer_type, FuseConfig};

/// Width of a type at its top level: the number of union addends, or 1
/// for any non-union type (`Bottom` counts as 0 — no value inhabits it).
pub(crate) fn union_width(t: &Type) -> u64 {
    match t {
        Type::Bottom => 0,
        Type::Union(u) => u.addends().len() as u64,
        _ => 1,
    }
}

/// [`infer_type`] plus per-record metrics: counts `infer.types`, records
/// the top-level record width in the `infer.record_width` histogram and
/// max-merges the type's depth into the `infer.max_depth` gauge.
pub fn infer_type_recorded(value: &Value, rec: &Recorder) -> Type {
    let ty = infer_type(value);
    if rec.is_enabled() {
        rec.add("infer.types", 1);
        if let Type::Record(r) = &ty {
            rec.record("infer.record_width", r.len() as u64);
        }
        rec.gauge_max("infer.max_depth", ty.depth() as u64);
    }
    ty
}

/// [`fuse_with`] plus per-call metrics: counts
/// `fuse.calls` and records the result's top-level union width in the
/// `fuse.union_width` histogram.
pub fn fuse_with_recorded(cfg: FuseConfig, a: &Type, b: &Type, rec: &Recorder) -> Type {
    let fused = fuse_with(cfg, a, b);
    if rec.is_enabled() {
        rec.add("fuse.calls", 1);
        rec.record("fuse.union_width", union_width(&fused));
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    #[test]
    fn recorded_infer_matches_pure_and_counts() {
        let rec = Recorder::enabled();
        let values = [
            json!({"a": 1, "b": {"c": [1, 2]}}),
            json!({"a": "x"}),
            json!(42),
        ];
        for v in &values {
            assert_eq!(infer_type_recorded(v, &rec), infer_type(v));
        }
        let report = rec.snapshot();
        assert_eq!(report.counters["infer.types"], 3);
        // Two top-level records (widths 2 and 1); the bare number has none.
        let widths = &report.histograms["infer.record_width"];
        assert_eq!(widths.count, 2);
        assert_eq!(widths.sum, 3);
        assert_eq!(
            report.gauges["infer.max_depth"],
            infer_type(&values[0]).depth() as u64
        );
    }

    #[test]
    fn recorded_fuse_matches_pure_and_tracks_union_width() {
        let rec = Recorder::enabled();
        let cfg = FuseConfig::default();
        let a = infer_type(&json!(1));
        let b = infer_type(&json!("s"));
        let fused = fuse_with_recorded(cfg, &a, &b, &rec);
        assert_eq!(fused, fuse_with(cfg, &a, &b));
        let fused2 = fuse_with_recorded(cfg, &fused, &infer_type(&json!(true)), &rec);
        let report = rec.snapshot();
        assert_eq!(report.counters["fuse.calls"], 2);
        let widths = &report.histograms["fuse.union_width"];
        assert_eq!(widths.count, 2);
        assert_eq!(widths.sum, 2 + 3, "Num+Str then Num+Str+Bool");
        assert_eq!(union_width(&fused2), 3);
    }

    #[test]
    fn disabled_recorder_is_free_of_side_effects() {
        let rec = Recorder::disabled();
        let v = json!({"k": null});
        assert_eq!(infer_type_recorded(&v, &rec), infer_type(&v));
        assert!(rec.snapshot().counters.is_empty());
    }

    #[test]
    fn union_width_edge_cases() {
        assert_eq!(union_width(&Type::Bottom), 0);
        assert_eq!(union_width(&Type::Num), 1);
        assert_eq!(
            union_width(&infer_type(&json!([1, "a"]))),
            1,
            "array, not union"
        );
    }
}
