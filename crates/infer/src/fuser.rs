//! The [`Fuser`] trait: one interface for every Reduce-phase strategy.
//!
//! The crate grew several concrete entry points for the same algebraic
//! operation — [`fuse`](crate::fuse) / [`fuse_with`]
//! (by-reference binary fusion), [`fuse_into`]
//! (in-place accumulator fusion) and [`CountingFuser`](crate::counting)
//! (fusion enriched with path statistics). Each caller — the pipeline,
//! the CLI, the bench runner — picked one and wired its own closures
//! into the engine's reduce. This trait captures the common shape
//! (identity, absorb, merge, extract) so the engine's reduce is written
//! once against it (see `typefuse_engine`'s `reduce_fused` /
//! `fuse_values`) and strategies compose with any topology.
//!
//! All implementations must satisfy the paper's laws: `merge` is
//! associative and commutative (Theorems 5.4/5.5) with [`empty`] as
//! identity, which is exactly what licenses partition-order-independent
//! reduction.
//!
//! [`empty`]: Fuser::empty

use crate::fuse::{fuse_with, FuseConfig};
use crate::fuse_inplace::fuse_into;
use crate::infer::infer_type;
use crate::obs::union_width;
use typefuse_json::Value;
use typefuse_obs::Recorder;
use typefuse_types::Type;

/// A Reduce-phase strategy: how per-record types fold into a
/// partition-local accumulator and how accumulators combine.
pub trait Fuser: Sync {
    /// Partition-local accumulator.
    type Acc: Send + Sync + Clone;

    /// The identity accumulator (the paper's `ε`).
    fn empty(&self) -> Self::Acc;

    /// Fold one inferred type into the accumulator.
    fn absorb_type(&self, acc: &mut Self::Acc, ty: &Type);

    /// Fold one JSON value. The default infers the value's type
    /// (Figure 4) and absorbs it; strategies that need the value itself
    /// (e.g. path counting) override this.
    fn absorb_value(&self, acc: &mut Self::Acc, value: &Value) {
        self.absorb_type(acc, &infer_type(value));
    }

    /// Merge another accumulator in (associative and commutative).
    fn merge(&self, acc: &mut Self::Acc, other: &Self::Acc);

    /// Whether the accumulator is still the identity — such partials
    /// can be dropped before combining (empty dataset partitions).
    fn is_empty_acc(&self, acc: &Self::Acc) -> bool;

    /// Extract the fused schema.
    fn finish_schema(&self, acc: Self::Acc) -> Type;
}

/// The canonical strategy: Figure 6 fusion under a [`FuseConfig`], with
/// a bare [`Type`] accumulator. `absorb_type` is
/// [`fuse_into`](crate::fuse_into) (in-place, no clone of untouched
/// subtrees); `merge` is [`fuse_with`](crate::fuse_with).
impl Fuser for FuseConfig {
    type Acc = Type;

    fn empty(&self) -> Type {
        Type::Bottom
    }

    fn absorb_type(&self, acc: &mut Type, ty: &Type) {
        fuse_into(*self, acc, ty);
    }

    fn merge(&self, acc: &mut Type, other: &Type) {
        *acc = fuse_with(*self, acc, other);
    }

    fn is_empty_acc(&self, acc: &Type) -> bool {
        matches!(acc, Type::Bottom)
    }

    fn finish_schema(&self, acc: Type) -> Type {
        acc
    }
}

/// [`FuseConfig`]'s strategy plus the pipeline's fusion metrics:
/// `fuse.calls` and the `fuse.union_width` histogram, as emitted by
/// [`fuse_with_recorded`](crate::fuse_with_recorded). Absorbing into the
/// identity accumulator is a move, not a fusion, and is not counted —
/// matching the engine's historical "fold from the first element"
/// semantics.
#[derive(Debug, Clone)]
pub struct RecordedFuser {
    cfg: FuseConfig,
    rec: Recorder,
}

impl RecordedFuser {
    /// A recorded fuser sharing `rec` with the rest of the run.
    pub fn new(cfg: FuseConfig, rec: Recorder) -> Self {
        RecordedFuser { cfg, rec }
    }

    fn count(&self, fused: &Type) {
        if self.rec.is_enabled() {
            self.rec.add("fuse.calls", 1);
            self.rec.record("fuse.union_width", union_width(fused));
        }
    }
}

impl Fuser for RecordedFuser {
    type Acc = Type;

    fn empty(&self) -> Type {
        Type::Bottom
    }

    fn absorb_type(&self, acc: &mut Type, ty: &Type) {
        if matches!(acc, Type::Bottom) {
            *acc = ty.clone();
            return;
        }
        fuse_into(self.cfg, acc, ty);
        self.count(acc);
    }

    fn merge(&self, acc: &mut Type, other: &Type) {
        *acc = fuse_with(self.cfg, acc, other);
        self.count(acc);
    }

    fn is_empty_acc(&self, acc: &Type) -> bool {
        matches!(acc, Type::Bottom)
    }

    fn finish_schema(&self, acc: Type) -> Type {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse_all;
    use typefuse_json::json;

    fn types() -> Vec<Type> {
        [
            json!({"a": 1, "b": "x"}),
            json!({"a": null}),
            json!({"a": 1, "c": [true]}),
        ]
        .iter()
        .map(infer_type)
        .collect()
    }

    #[test]
    fn config_fuser_matches_fuse_all() {
        let cfg = FuseConfig::default();
        let mut acc = Fuser::empty(&cfg);
        for t in &types() {
            cfg.absorb_type(&mut acc, t);
        }
        assert_eq!(cfg.finish_schema(acc), fuse_all(&types()));
    }

    #[test]
    fn merge_of_split_streams_matches_one_stream() {
        let cfg = FuseConfig::default();
        let ts = types();
        let mut left = Fuser::empty(&cfg);
        cfg.absorb_type(&mut left, &ts[0]);
        let mut right = Fuser::empty(&cfg);
        cfg.absorb_type(&mut right, &ts[1]);
        cfg.absorb_type(&mut right, &ts[2]);
        cfg.merge(&mut left, &right);
        assert_eq!(left, fuse_all(&ts));
    }

    #[test]
    fn recorded_fuser_counts_only_real_fusions() {
        let rec = Recorder::enabled();
        let fuser = RecordedFuser::new(FuseConfig::default(), rec.clone());
        let mut acc = fuser.empty();
        for t in &types() {
            fuser.absorb_type(&mut acc, t);
        }
        // First absorb is a move into ε, then two fusions.
        assert_eq!(rec.counter_value("fuse.calls"), 2);
        assert_eq!(fuser.finish_schema(acc), fuse_all(&types()));
    }

    #[test]
    fn empty_accumulators_are_detected() {
        let cfg = FuseConfig::default();
        let acc = Fuser::empty(&cfg);
        assert!(cfg.is_empty_acc(&acc));
        let mut acc = acc;
        cfg.absorb_type(&mut acc, &Type::Num);
        assert!(!cfg.is_empty_acc(&acc));
    }

    #[test]
    fn counting_strategy_through_the_trait() {
        let counting = crate::counting::Counting;
        let mut acc = counting.empty();
        counting.absorb_value(&mut acc, &json!({"a": 1}));
        counting.absorb_value(&mut acc, &json!({"a": "x", "b": null}));
        assert!(!counting.is_empty_acc(&acc));
        let mut other = counting.empty();
        counting.absorb_value(&mut other, &json!({"a": true}));
        counting.merge(&mut acc, &other);
        assert_eq!(acc.count(), 3);
        let cs = acc.finish();
        assert_eq!(cs.path_counts["$.a"], 3);
        assert_eq!(cs.schema.to_string(), "{a: Bool + Num + Str, b: Null?}");
    }
}
