//! Schema-based projection — the main-memory loading optimisation the
//! paper motivates (Section 1):
//!
//! "by identifying the data requirements of a query … it is possible to
//! match these requirements with the schema in order to load in main
//! memory only those fragments of the input dataset that are actually
//! needed."
//!
//! [`project`] prunes a value down to the fragments described by a
//! *requirement* type (typically a hand-written or query-derived
//! sub-schema of the inferred one): record fields not mentioned in the
//! requirement are dropped, arrays are filtered element-wise. The
//! function is **lossless where the requirement speaks** and total — a
//! structural mismatch (e.g. the requirement expects a record, the data
//! has a string) keeps the value unchanged rather than failing, so
//! projection is always safe to apply before validation.

use typefuse_json::{Map, Value};
use typefuse_types::{Type, TypeKind};

/// Prune `value` to the fragments described by `requirement`.
pub fn project(value: &Value, requirement: &Type) -> Value {
    match requirement {
        // ε and basic requirements carry no structure to prune by.
        Type::Bottom | Type::Null | Type::Bool | Type::Num | Type::Str => value.clone(),
        Type::Record(rt) => match value {
            Value::Object(map) => {
                let mut out = Map::with_capacity(rt.len().min(map.len()));
                for (key, child) in map.iter() {
                    if let Some(field) = rt.field(key) {
                        out.insert_unchecked(key, project(child, &field.ty));
                    }
                }
                Value::Object(out)
            }
            other => other.clone(),
        },
        Type::Star(body) => match value {
            Value::Array(elems) => Value::Array(elems.iter().map(|e| project(e, body)).collect()),
            other => other.clone(),
        },
        Type::Array(at) => match value {
            Value::Array(elems) if elems.len() == at.len() => Value::Array(
                elems
                    .iter()
                    .zip(at.elems())
                    .map(|(e, t)| project(e, t))
                    .collect(),
            ),
            other => other.clone(),
        },
        Type::Union(u) => {
            // Project by the addend matching the value's kind; keep the
            // value whole when no addend matches.
            let kind = value_kind(value);
            match u.addend_of_kind(kind) {
                Some(addend) => project(value, addend),
                None => value.clone(),
            }
        }
    }
}

fn value_kind(v: &Value) -> TypeKind {
    match v {
        Value::Null => TypeKind::Null,
        Value::Bool(_) => TypeKind::Bool,
        Value::Number(_) => TypeKind::Num,
        Value::String(_) => TypeKind::Str,
        Value::Object(_) => TypeKind::Record,
        Value::Array(_) => TypeKind::Array,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_type;
    use typefuse_json::json;
    use typefuse_types::parse_type;

    fn p(value: &Value, req: &str) -> Value {
        project(value, &parse_type(req).unwrap())
    }

    #[test]
    fn drops_unrequested_fields() {
        let v = json!({"a": 1, "b": "x", "c": [1, 2]});
        assert_eq!(p(&v, "{a: Num}"), json!({"a": 1}));
    }

    #[test]
    fn recursive_pruning() {
        let v = json!({"user": {"id": 1, "bio": "long text", "avatar": "url"}, "junk": 0});
        assert_eq!(p(&v, "{user: {id: Num}}"), json!({"user": {"id": 1}}));
    }

    #[test]
    fn arrays_are_projected_elementwise() {
        let v = json!({"ks": [{"name": "a", "rank": 1}, {"name": "b", "rank": 2}]});
        assert_eq!(
            p(&v, "{ks: [{name: Str}*]}"),
            json!({"ks": [{"name": "a"}, {"name": "b"}]})
        );
    }

    #[test]
    fn positional_array_length_mismatch_keeps_value() {
        let v = json!([1, 2, 3]);
        assert_eq!(p(&v, "[Num, Num]"), v);
        assert_eq!(
            p(&json!([{"a": 1, "b": 2}]), "[{a: Num}]"),
            json!([{"a": 1}])
        );
    }

    #[test]
    fn structural_mismatch_is_lossless() {
        let v = json!("not a record");
        assert_eq!(p(&v, "{a: Num}"), v);
        assert_eq!(p(&json!({"a": 1}), "[Num*]"), json!({"a": 1}));
    }

    #[test]
    fn union_projects_by_kind() {
        let req = "Str + {a: Num}";
        assert_eq!(p(&json!({"a": 1, "b": 2}), req), json!({"a": 1}));
        assert_eq!(p(&json!("s"), req), json!("s"));
        // No union addend of kind Bool: kept whole.
        assert_eq!(p(&json!(true), req), json!(true));
    }

    #[test]
    fn projecting_by_own_type_is_identity() {
        for v in [
            json!({"a": 1, "b": [{"c": null}, "x"]}),
            json!([[], [1], [{"k": true}]]),
            json!(null),
        ] {
            assert_eq!(project(&v, &infer_type(&v)), v);
        }
    }

    #[test]
    fn projecting_by_fused_schema_is_identity() {
        let values = [json!({"a": 1, "b": "x"}), json!({"a": null, "c": [1, "s"]})];
        let schema = crate::fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
        for v in &values {
            assert_eq!(&project(v, &schema), v, "schema covers everything");
        }
    }

    #[test]
    fn projection_never_grows_the_value() {
        let v = json!({"a": {"b": [1, 2, {"c": "x", "d": "y"}]}, "e": 5});
        for req in ["{a: {b: [(Num + {c: Str})*]}}", "{e: Num}", "{}", "Num"] {
            let projected = p(&v, req);
            assert!(
                projected.tree_size() <= v.tree_size(),
                "{req} grew the value"
            );
        }
    }

    #[test]
    fn empty_record_requirement_keeps_nothing() {
        assert_eq!(p(&json!({"a": 1}), "{}"), json!({}));
    }
}
