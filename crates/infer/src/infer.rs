//! The Map phase: type inference for single values (Figure 4).
//!
//! The inference rules are deterministic and produce a type isomorphic to
//! the value: records map to record types with all fields mandatory,
//! arrays map to positional array types element by element, atoms map to
//! their basic types. Union types, optional fields and starred arrays are
//! *never* produced here — they only appear through fusion (Section 5.1:
//! "schema inference done in this phase does not exploit the full
//! expressivity of the schema language").

use typefuse_json::Value;
use typefuse_types::{ArrayType, Field, RecordType, Type};

/// Infer the type of a single JSON value (the judgement `⊢ V ∼ T` of
/// Figure 4).
///
/// Soundness (Lemma 5.1): `infer_type(v).admits(v)` for every value `v` —
/// property-tested in this crate's suite.
///
/// ```
/// use typefuse_infer::infer_type;
/// use typefuse_json::parse_value;
///
/// let v = parse_value(r#"{"a": 1, "b": ["x", {"c": null}]}"#).unwrap();
/// assert_eq!(infer_type(&v).to_string(), "{a: Num, b: [Str, {c: Null}]}");
/// ```
pub fn infer_type(value: &Value) -> Type {
    match value {
        Value::Null => Type::Null,
        Value::Bool(_) => Type::Bool,
        Value::Number(_) => Type::Num,
        Value::String(_) => Type::Str,
        Value::Array(elems) => Type::Array(ArrayType::new(elems.iter().map(infer_type).collect())),
        Value::Object(map) => {
            // Key uniqueness is the side-condition `l ∉ Keys(RT)` of the
            // record rule; it is guaranteed by the `Map` invariant.
            let fields = map
                .iter()
                .map(|(k, v)| Field::required(k, infer_type(v)))
                .collect();
            Type::Record(RecordType::new(fields).expect("Map keys are unique"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    #[test]
    fn atoms() {
        assert_eq!(infer_type(&json!(null)), Type::Null);
        assert_eq!(infer_type(&json!(true)), Type::Bool);
        assert_eq!(infer_type(&json!(3.25)), Type::Num);
        assert_eq!(infer_type(&json!(7)), Type::Num);
        assert_eq!(infer_type(&json!("s")), Type::Str);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(infer_type(&json!({})), Type::empty_record());
        assert_eq!(infer_type(&json!([])), Type::empty_array());
    }

    #[test]
    fn record_fields_all_mandatory() {
        let t = infer_type(&json!({"b": 1, "a": "x"}));
        match &t {
            Type::Record(rt) => {
                assert_eq!(rt.len(), 2);
                assert!(rt.fields().iter().all(|f| !f.optional));
            }
            other => panic!("expected record, got {other}"),
        }
        // Canonical (sorted) printing.
        assert_eq!(t.to_string(), "{a: Str, b: Num}");
    }

    #[test]
    fn arrays_are_positional() {
        let t = infer_type(&json!([1, "a", null]));
        assert_eq!(t.to_string(), "[Num, Str, Null]");
    }

    #[test]
    fn mixed_content_array_from_section_2() {
        // ["abc", "cde", {"E": "fr", "F": 12}] ⟼ [Str, Str, {E: Str, F: Num}]
        let v = json!(["abc", "cde", {"E": "fr", "F": 12}]);
        assert_eq!(infer_type(&v).to_string(), "[Str, Str, {E: Str, F: Num}]");
    }

    #[test]
    fn deep_nesting() {
        let v = json!({"a": {"b": {"c": {"d": [[{"e": 0}]]}}}});
        let t = infer_type(&v);
        assert_eq!(t.to_string(), "{a: {b: {c: {d: [[{e: Num}]]}}}}");
        assert_eq!(t.depth(), v.depth());
    }

    #[test]
    fn inferred_type_is_isomorphic_in_size() {
        // For values, tree_size counts the same nodes the type AST has
        // (scalars, containers, fields).
        for v in [
            json!({"a": 1, "b": [true, null]}),
            json!([]),
            json!([[["x"]]]),
            json!({"k": {}}),
        ] {
            assert_eq!(infer_type(&v).size(), v.tree_size(), "value {v}");
        }
    }
}
