//! Raw-shape signature cache: the Map phase as a hash lookup.
//!
//! The dedup PR showed that massive real-world NDJSON collections
//! collapse to a few hundred distinct *types*; this module exploits the
//! stronger fact that they collapse to few distinct *raw shapes* — byte
//! skeletons where only the values differ. [`shape_signature`] hashes a
//! record's structural skeleton straight off the stage-1
//! [`scan`](mod@typefuse_json::scan) index (punctuation and key bytes
//! verbatim, value bytes masked to their kind), and [`ShapeCache`] memoizes
//! signature → inferred [`Type`], backed by the hash-consing
//! [`TypeInterner`]. A hit skips event parsing and inference entirely; a
//! miss replays the ordinary event fold and inserts.
//!
//! # Signature definition
//!
//! Walking the token stream of the structural index:
//!
//! * structural punctuation (`{ } [ ] : ,`) is hashed verbatim;
//! * a string followed by `:` is an object **key** and is hashed verbatim
//!   (raw bytes, quotes included — `"a"` and `"a"` are distinct
//!   signatures, each cached correctly);
//! * any other string **value** is masked to one kind byte `S`;
//! * a scalar token is masked to `n` (null), `b` (true/false) or `d`
//!   (number) — the paper's type language has a single `Num` type, so
//!   every valid number masks alike.
//!
//! Whitespace never reaches the hash, so reformatted records share a
//! signature; field order, key spelling and value kinds all distinguish.
//!
//! # Cache invariants (why hits are sound)
//!
//! The cache may only be consulted when *equal signature implies equal
//! inferred type and equal parse outcome*. Masking is therefore gated on
//! **local token validity**, checked against exactly the parser's
//! grammar: a number must match the strict RFC 8259 number grammar *and*
//! be in range for [`parse_decimal`]
//! (so `1e999` can never collide with `1`); a string must contain no raw
//! control bytes, only legal escapes (with full surrogate-pair
//! validation) and valid UTF-8; literals must be exactly `null`, `true`
//! or `false`. Any other token — and any record with an unterminated
//! string — is *unsignable*: [`shape_signature`] returns `None`, and the
//! record takes the miss path. Two records with equal signatures thus
//! have identical token sequences up to masked value bytes, which the
//! grammar maps to identical types — and identical *success*: structural
//! errors (mismatched brackets, duplicate keys, depth overflow) depend
//! only on the token sequence, so an erroring record can never share a
//! signature with a cached one. Errors are never cached: the miss path
//! replays the real event fold, which reports byte-identical errors.
//!
//! Signatures are 64-bit hashes, so distinct shapes can collide at
//! ~2⁻⁶⁴ per pair — the same acceptance the distinct-shape counters
//! already make.

use std::hash::Hasher;

use typefuse_json::number::parse_decimal;
use typefuse_json::scan::{scan_into, tokens, ScanIndex, Token};
use typefuse_json::{ParserOptions, Result};
use typefuse_obs::Recorder;
use typefuse_types::intern::{FxHashMap, FxHasher};
use typefuse_types::{Type, TypeId, TypeInterner};

use crate::streaming;

/// Compute the raw-shape signature of one JSON record, or `None` when
/// the record is unsignable (any locally invalid token) and must take
/// the ordinary parse path.
pub fn shape_signature(input: &[u8]) -> Option<u64> {
    let mut index = ScanIndex::default();
    shape_signature_with(input, &mut index)
}

/// [`shape_signature`] against a caller-owned scratch [`ScanIndex`],
/// reusing its offset buffers across records — the allocation-free form
/// used by [`ShapeCache`] on its per-record hot path.
pub fn shape_signature_with(input: &[u8], scratch: &mut ScanIndex) -> Option<u64> {
    scan_into(input, scratch);
    if scratch.unterminated {
        return None;
    }
    let mut h = FxHasher::default();
    // One-token lookbehind: a string is a key only once we see its `:`.
    let mut pending_str: Option<&[u8]> = None;
    let mut any = false;
    for tok in tokens(input, scratch) {
        any = true;
        match tok {
            Token::Punct(b':') => {
                if let Some(s) = pending_str.take() {
                    // Key: raw bytes, quotes included.
                    h.write(s);
                }
                h.write_u8(b':');
            }
            Token::Punct(c) => {
                if pending_str.take().is_some() {
                    h.write_u8(b'S');
                }
                h.write_u8(c);
            }
            Token::Str(s) => {
                if pending_str.take().is_some() {
                    h.write_u8(b'S');
                }
                if !valid_string(s) {
                    return None;
                }
                pending_str = Some(s);
            }
            Token::Scalar(s) => {
                if pending_str.take().is_some() {
                    h.write_u8(b'S');
                }
                h.write_u8(classify_scalar(s)?);
            }
        }
    }
    if pending_str.take().is_some() {
        h.write_u8(b'S');
    }
    if !any {
        // Empty / whitespace-only input: the parser reports EOF; replay.
        return None;
    }
    Some(h.finish())
}

/// Mask a scalar token to its kind byte, or `None` when it is not a
/// valid literal or in-range number.
fn classify_scalar(s: &[u8]) -> Option<u8> {
    match s {
        b"null" => Some(b'n'),
        b"true" | b"false" => Some(b'b'),
        _ if valid_number(s) => Some(b'd'),
        _ => None,
    }
}

/// Exactly the parser's number acceptance: strict RFC 8259 grammar over
/// the whole token *and* in range for `parse_decimal`.
fn valid_number(s: &[u8]) -> bool {
    // Fast path: short all-digit tokens are always in i64 range.
    if !s.is_empty() && s.len() <= 18 && s.iter().all(u8::is_ascii_digit) {
        return s[0] != b'0' || s.len() == 1;
    }
    let mut i = 0usize;
    if s.first() == Some(&b'-') {
        i += 1;
    }
    match s.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while s.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
        }
        _ => return false,
    }
    if s.get(i) == Some(&b'.') {
        i += 1;
        if !s.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while s.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
    }
    if matches!(s.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(s.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !s.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while s.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
    }
    if i != s.len() {
        return false;
    }
    // Range check mirrors the parser's NumberOutOfRange rejection.
    let text = std::str::from_utf8(s).expect("number grammar is ASCII");
    parse_decimal(text).is_some()
}

/// Exactly the parser's string acceptance over the raw token (quotes
/// included): no raw control bytes, only legal escapes with surrogate
/// pairing, valid UTF-8. Raw-byte UTF-8 validity is equivalent to the
/// parser's check on the unescaped text because escape sequences are
/// ASCII and substitute whole characters at character boundaries.
fn valid_string(tok: &[u8]) -> bool {
    debug_assert!(tok.len() >= 2 && tok[0] == b'"' && tok[tok.len() - 1] == b'"');
    let inner = &tok[1..tok.len() - 1];
    let mut i = 0usize;
    // Everything before the first non-ASCII byte is ASCII, so checking
    // UTF-8 on the suffix from there is equivalent to the whole string.
    let mut utf8_from = inner.len();
    while i < inner.len() {
        // Bulk-skip clean words: no control byte, no backslash, no
        // non-ASCII byte. The subtract-based detectors can borrow across
        // lanes, but only *after* a true positive, so they are exact as
        // whole-word predicates.
        while i + 8 <= inner.len() {
            let w = u64::from_le_bytes(inner[i..i + 8].try_into().expect("8-byte chunk"));
            const ONES: u64 = 0x0101_0101_0101_0101;
            const HIGH: u64 = 0x8080_8080_8080_8080;
            let lt20 = w.wrapping_sub(ONES * 0x20) & !w & HIGH;
            let x = w ^ (ONES * u64::from(b'\\'));
            let bs = x.wrapping_sub(ONES) & !x & HIGH;
            if ((w & HIGH) | lt20 | bs) != 0 {
                break;
            }
            i += 8;
        }
        let Some(&b) = inner.get(i) else { break };
        if (0x20..0x80).contains(&b) && b != b'\\' {
            i += 1;
            continue;
        }
        if b < 0x20 {
            return false;
        }
        if b >= 0x80 {
            utf8_from = utf8_from.min(i);
            i += 1;
            continue;
        }
        i += 1;
        match inner.get(i) {
            Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 1,
            Some(b'u') => {
                i += 1;
                let Some(cp) = hex4(inner, i) else {
                    return false;
                };
                i += 4;
                if (0xD800..=0xDBFF).contains(&cp) {
                    // High surrogate: a `\u`-escaped low surrogate must follow.
                    if inner.get(i) != Some(&b'\\') || inner.get(i + 1) != Some(&b'u') {
                        return false;
                    }
                    let Some(low) = hex4(inner, i + 2) else {
                        return false;
                    };
                    if !(0xDC00..=0xDFFF).contains(&low) {
                        return false;
                    }
                    i += 6;
                } else if (0xDC00..=0xDFFF).contains(&cp) {
                    return false; // lone low surrogate
                }
            }
            _ => return false,
        }
    }
    utf8_from >= inner.len() || std::str::from_utf8(&inner[utf8_from..]).is_ok()
}

fn hex4(s: &[u8], at: usize) -> Option<u32> {
    let mut cp = 0u32;
    for k in 0..4 {
        let d = match s.get(at + k)? {
            b @ b'0'..=b'9' => u32::from(b - b'0'),
            b @ b'a'..=b'f' => u32::from(b - b'a') + 10,
            b @ b'A'..=b'F' => u32::from(b - b'A') + 10,
            _ => return None,
        };
        cp = cp * 16 + d;
    }
    Some(cp)
}

/// Signature → inferred-type memo for the `MapPath::Shape` route.
///
/// One instance per partition (or per `serve` source): lookups and the
/// hit/miss counters are then deterministic for a fixed partitioning.
/// Interning the cached types through the shared hash-consing
/// [`TypeInterner`] keeps structurally equal types (reached via
/// different signatures) at one allocation.
#[derive(Debug, Default)]
pub struct ShapeCache {
    interner: TypeInterner,
    map: FxHashMap<u64, (TypeId, Type)>,
    scratch: ScanIndex,
    /// Holds the fold result of an unsignable-but-successful record so
    /// [`ShapeCache::infer_line_ref`] can hand out a reference for it.
    spill: Option<Type>,
    hits: u64,
    misses: u64,
}

impl ShapeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Infer the type of one record through the cache.
    ///
    /// A hit returns the memoized type without touching the parser and
    /// mirrors the events route's `infer.types` / `infer.record_width` /
    /// `infer.max_depth` metrics (but not `infer.events`/`infer.frames`,
    /// which count only replayed folds). A miss — including every
    /// unsignable record — replays
    /// [`streaming::infer_with_options_recorded`] so results and errors
    /// are byte-identical to the events route; only successful folds of
    /// signable records are inserted.
    pub fn infer_line(
        &mut self,
        input: &[u8],
        options: &ParserOptions,
        rec: &Recorder,
    ) -> Result<Type> {
        self.infer_line_ref(input, options, rec).cloned()
    }

    /// [`infer_line`](Self::infer_line) without materializing an owned
    /// type: a hit returns a reference to the cached type directly.
    ///
    /// This is the absorb-by-reference hot path for callers that fold
    /// the result straight into an accumulator schema — the whole point
    /// of a hit is that nothing new needs to be allocated.
    pub fn infer_line_ref(
        &mut self,
        input: &[u8],
        options: &ParserOptions,
        rec: &Recorder,
    ) -> Result<&Type> {
        use std::collections::hash_map::Entry;
        let Some(sig) = shape_signature_with(input, &mut self.scratch) else {
            self.misses += 1;
            let ty = streaming::infer_with_options_recorded(input, options.clone(), rec)?;
            return Ok(self.spill.insert(ty));
        };
        match self.map.entry(sig) {
            Entry::Occupied(slot) => {
                self.hits += 1;
                let (_, ty) = slot.into_mut();
                if rec.is_enabled() {
                    rec.add("infer.types", 1);
                    if let Type::Record(r) = ty {
                        rec.record("infer.record_width", r.len() as u64);
                    }
                    rec.gauge_max("infer.max_depth", ty.depth() as u64);
                }
                Ok(ty)
            }
            Entry::Vacant(slot) => {
                self.misses += 1;
                let ty = streaming::infer_with_options_recorded(input, options.clone(), rec)?;
                let id = self.interner.intern(&ty);
                let (_, ty) = slot.insert((id, ty));
                Ok(ty)
            }
        }
    }

    /// Records served straight from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Records that replayed the event fold (unsignable or first-seen).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct signatures cached.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Flush the `infer.shape_hits` / `infer.shape_misses` counters to a
    /// recorder and reset them (called once per partition or poll batch).
    pub fn flush_counters(&mut self, rec: &Recorder) {
        if rec.is_enabled() {
            rec.add("infer.shape_hits", self.hits);
            rec.add("infer.shape_misses", self.misses);
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    fn sig(s: &str) -> Option<u64> {
        shape_signature(s.as_bytes())
    }

    #[test]
    fn whitespace_and_value_bytes_do_not_distinguish() {
        let a = sig(r#"{"id": 12345, "name": "alice", "ok": true}"#).unwrap();
        let b = sig(r#"{ "id":9,"name":"b" ,  "ok": false }"#).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn keys_kinds_and_order_do_distinguish() {
        let base = sig(r#"{"a": 1}"#).unwrap();
        assert_ne!(base, sig(r#"{"b": 1}"#).unwrap(), "key bytes");
        assert_ne!(base, sig(r#"{"a": "1"}"#).unwrap(), "value kind");
        assert_ne!(base, sig(r#"{"a": null}"#).unwrap(), "null kind");
        assert_ne!(base, sig(r#"{"a": [1]}"#).unwrap(), "nesting");
        assert_ne!(
            sig(r#"{"a": 1, "b": 2}"#).unwrap(),
            sig(r#"{"b": 2, "a": 1}"#).unwrap(),
            "field order is part of the raw shape"
        );
    }

    #[test]
    fn numbers_mask_alike_only_when_the_parser_accepts_them() {
        let n = sig(r#"{"a": 1}"#).unwrap();
        assert_eq!(n, sig(r#"{"a": -2.75e10}"#).unwrap());
        assert_eq!(n, sig(r#"{"a": 0}"#).unwrap());
        // Leading zeros and out-of-range numbers are parser errors and
        // must not collide with valid numbers.
        assert_eq!(sig(r#"{"a": 01}"#), None);
        assert_eq!(sig(r#"{"a": 1e999}"#), None);
        assert_eq!(sig(r#"{"a": -}"#), None);
        assert_eq!(sig(r#"{"a": tru}"#), None);
    }

    #[test]
    fn string_validation_mirrors_the_parser() {
        assert!(sig(r#"{"a": "x\"y\\zé"}"#).is_some());
        assert!(sig(r#"{"a": "😀"}"#).is_some(), "surrogate pair");
        assert_eq!(sig(r#"{"a": "\q"}"#), None, "bad escape");
        assert_eq!(sig(r#"{"a": "\ud800"}"#), None, "lone high surrogate");
        assert_eq!(sig(r#"{"a": "\ude00"}"#), None, "lone low surrogate");
        assert_eq!(sig("{\"a\": \"x\u{1}y\"}"), None, "raw control byte");
        assert_eq!(sig(r#"{"a": "open"#), None, "unterminated");
    }

    #[test]
    fn escaped_and_raw_key_spellings_are_distinct_but_both_signable() {
        let raw = sig(r#"{"a": 1}"#).unwrap();
        let esc = sig("{\"\\u0061\": 1}").unwrap();
        assert_ne!(raw, esc);
    }

    #[test]
    fn cache_hits_return_the_replayed_fold_result() {
        let mut cache = ShapeCache::new();
        let rec = Recorder::disabled();
        let opts = ParserOptions::default();
        let a = cache
            .infer_line(br#"{"id": 1, "tags": ["x"]}"#, &opts, &rec)
            .unwrap();
        let b = cache
            .infer_line(br#"{"id": 999, "tags": ["yyyy"]}"#, &opts, &rec)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "{id: Num, tags: [Str]}");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.distinct(), 1);
    }

    #[test]
    fn errors_are_never_cached_and_stay_byte_identical() {
        let mut cache = ShapeCache::new();
        let rec = Recorder::disabled();
        let opts = ParserOptions::default();
        // Structurally broken record: unsignable, so it replays the fold.
        let bad = br#"{"a": 1,}"#;
        let direct = streaming::infer_with_options(bad, opts.clone()).unwrap_err();
        let via_cache = cache.infer_line(bad, &opts, &rec).unwrap_err();
        assert_eq!(via_cache.to_string(), direct.to_string());
        assert_eq!(cache.distinct(), 0);
        // And a later identical record errors again, identically.
        let again = cache.infer_line(bad, &opts, &rec).unwrap_err();
        assert_eq!(again.to_string(), direct.to_string());
    }

    #[test]
    fn signature_agreement_with_full_inference_on_generated_values() {
        // Same signature ⇒ same inferred type, across a grid of nearby
        // records.
        let values = [
            json!({"a": 1, "b": "x"}),
            json!({"a": 2.5, "b": "yyy"}),
            json!({"a": 1, "b": null}),
            json!({"a": [1, 2], "b": "x"}),
            json!({"a": [1], "b": "x"}),
            json!({"b": "x", "a": 1}),
            json!([{"k": true}, {"k": false}]),
            json!([{"k": true}, {"k": null}]),
        ];
        for v in &values {
            for w in &values {
                let (sv, sw) = (v.to_string(), w.to_string());
                let (gv, gw) = (sig(&sv), sig(&sw));
                if let (Some(gv), Some(gw)) = (gv, gw) {
                    if gv == gw {
                        assert_eq!(
                            streaming::infer_type_from_str(&sv).unwrap(),
                            streaming::infer_type_from_str(&sw).unwrap(),
                            "{sv} vs {sw}"
                        );
                    }
                }
            }
        }
    }
}
