//! # typefuse-infer
//!
//! The two algorithmic phases of *Schema Inference for Massive JSON
//! Datasets* (EDBT 2017):
//!
//! 1. **Type inference** ([`infer_type`], Figure 4): map each JSON value to
//!    the type isomorphic to it. This is the Map phase.
//! 2. **Type fusion** ([`fuse`], Figure 6): a commutative, associative
//!    binary operator that merges two normal types into a succinct common
//!    super-type. This is the Reduce phase; associativity (Theorem 5.5) is
//!    what allows the engine to split the reduce across threads, nodes and
//!    partitions in any order.
//!
//! The module also provides:
//!
//! * [`collapse`] — the array-simplification of Section 2 / Figure 6
//!   lines 8–9, exposed separately for the ablation study;
//! * [`FuseConfig`] — the paper's collapse strategy plus a
//!   positional-when-aligned variant used by the precision/succinctness
//!   ablation bench;
//! * [`Incremental`] — the incremental schema maintenance sketched in
//!   Section 7 ("fusion is incremental by essence");
//! * [`counting`] — the statistics enrichment named as future work in
//!   Section 7: a fused schema annotated with per-field presence counts;
//! * [`profile`] — the full data-plane profiler: per-path presence,
//!   kind histograms, length/numeric statistics and provenance lines
//!   (which input line introduced each union branch, which one demoted a
//!   field to optional), mergeable with the same monoid laws as fusion;
//! * [`dedup`] — the shape-dedup Reduce: hash-consed interning plus
//!   weighted, memoized fusion, which the idempotence/commutativity/
//!   associativity theorems (5.3–5.5) license to fuse each *distinct*
//!   shape once instead of every value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counting;
pub mod dedup;
mod fuse;
pub mod fuse_inplace;
pub mod fuser;
pub mod incremental;
pub mod infer;
pub mod maplike;
pub mod obs;
pub mod profile;
mod project;
pub mod shape;
pub mod streaming;

pub use counting::{type_paths, CountedField, CountedSchema, Counting, CountingFuser};
pub use dedup::{fuse_ids, DedupAcc, DedupCounting, DedupCountingAcc, DedupFuser, FuseCache};
pub use fuse::{collapse, fuse, fuse_all, fuse_with, kinds_present, ArrayFusion, FuseConfig};
pub use fuse_inplace::fuse_into;
pub use fuser::{Fuser, RecordedFuser};
pub use incremental::Incremental;
pub use infer::infer_type;
pub use maplike::{find_map_like, MapLikeConfig, MapLikeSite};
pub use obs::{fuse_with_recorded, infer_type_recorded};
pub use profile::{PathProfile, ProfileAcc, ProfileReport, Profiling};
pub use project::project;
pub use shape::{shape_signature, ShapeCache};
