//! The Reduce phase: type fusion (Figure 6).
//!
//! `Fuse(T₁, T₂)` partitions the addends of both (possibly-union) inputs
//! by kind. Addends whose kind appears on both sides (`KMatch`) are merged
//! with `LFuse`; the rest (`KUnmatch`) pass through unchanged; the results
//! are re-assembled into a union with `⊕`. Because the inputs are normal
//! (each kind at most once per union), the partition is a six-slot table.
//!
//! `LFuse` on two same-kind non-union types:
//!
//! * **basic** — they are identical (equal kind ⟹ equal basic type);
//!   return either (line 2);
//! * **record** — merge-join the two sorted field lists: matched keys are
//!   fused recursively, with the `min(m, n)` cardinality rule (`? < 1`, so
//!   a field is mandatory only if mandatory on both sides); unmatched keys
//!   become optional (line 3);
//! * **array** — both sides are first brought to starred form with
//!   [`collapse`], then the bodies are fused and re-starred (lines 4–7).
//!
//! **Documented deviation from Figure 6.** Line 3 writes
//! `l : LFuse(T₁, T₂)` for matched fields, but a matched field's type can
//! be a *union* after an earlier fusion (e.g. `{A: Str + Null}`), for
//! which `LFuse` is undefined. We call [`fuse`] on matched field types;
//! on the non-union same-kind case `fuse` reduces to a single `LFuse`
//! call, so the behaviour on all of the paper's examples is unchanged.

use typefuse_types::{ArrayType, Field, RecordType, Type, TypeKind};

/// How array types are fused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrayFusion {
    /// The paper's strategy (Section 2): always simplify `[T₁,…,Tₙ]` to
    /// the starred form `[(T₁+…+Tₙ)*]` before fusing. Trades positional
    /// precision for succinctness and order-insensitivity.
    #[default]
    Collapse,
    /// Ablation variant: keep positional array types when both sides have
    /// the same length, fusing element-wise; fall back to collapsing
    /// otherwise. More precise, potentially much larger output — the
    /// `ablation` bench quantifies the trade-off the paper discusses
    /// ("we trade some precision for succinctness").
    PositionalWhenAligned,
}

/// Configuration for [`fuse_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FuseConfig {
    /// Array strategy; defaults to the paper's [`ArrayFusion::Collapse`].
    pub array_fusion: ArrayFusion,
}

/// `Fuse(T₁, T₂)` with the paper's configuration.
///
/// ```
/// use typefuse_infer::fuse;
/// use typefuse_types::parse_type;
///
/// let t1 = parse_type("{A: Str, B: Num}").unwrap();
/// let t2 = parse_type("{B: Bool, C: Str}").unwrap();
/// assert_eq!(fuse(&t1, &t2).to_string(), "{A: Str?, B: Bool + Num, C: Str?}");
/// ```
pub fn fuse(t1: &Type, t2: &Type) -> Type {
    fuse_with(FuseConfig::default(), t1, t2)
}

/// `Fuse(T₁, T₂)` with an explicit [`FuseConfig`].
pub fn fuse_with(cfg: FuseConfig, t1: &Type, t2: &Type) -> Type {
    // KMatch / KUnmatch via a kind-indexed table: normality guarantees at
    // most one addend per kind on each side. Slots hold borrows until a
    // same-kind partner shows up, so a KMatch addend is never cloned
    // (LFuse reads it by reference) and a KUnmatch pass-through addend is
    // cloned exactly once, at assembly.
    enum Slot<'a> {
        Borrowed(&'a Type),
        Fused(Type),
    }
    let mut slots: [Option<Slot>; 6] = Default::default();
    for addend in t1.addends().iter().chain(t2.addends()) {
        let k = addend.kind().expect("union addends are kinded") as usize;
        slots[k] = Some(match slots[k].take() {
            None => Slot::Borrowed(addend),
            Some(Slot::Borrowed(prev)) => Slot::Fused(lfuse(cfg, prev, addend)),
            // A third same-kind addend cannot occur on normal inputs
            // (one per kind per side); fuse defensively all the same.
            Some(Slot::Fused(prev)) => Slot::Fused(lfuse(cfg, &prev, addend)),
        });
    }
    Type::union(slots.into_iter().flatten().map(|slot| match slot {
        Slot::Borrowed(t) => t.clone(),
        Slot::Fused(t) => t,
    }))
    .expect("one addend per kind by construction")
}

/// Fold [`fuse`] over a collection of types: the whole Reduce phase on one
/// thread. Returns `ε` for an empty input (the identity of `Fuse`).
pub fn fuse_all<'a>(types: impl IntoIterator<Item = &'a Type>) -> Type {
    types.into_iter().fold(Type::Bottom, |acc, t| fuse(&acc, t))
}

/// `LFuse` — both arguments are non-union types of the same kind.
fn lfuse(cfg: FuseConfig, t1: &Type, t2: &Type) -> Type {
    debug_assert_eq!(t1.kind(), t2.kind(), "LFuse requires matching kinds");
    match (t1, t2) {
        // Line 2: identical basic types.
        (Type::Null, Type::Null)
        | (Type::Bool, Type::Bool)
        | (Type::Num, Type::Num)
        | (Type::Str, Type::Str) => t1.clone(),

        // Line 3: record fusion.
        (Type::Record(r1), Type::Record(r2)) => lfuse_records(cfg, r1, r2),

        // Lines 4–7: array fusion through collapse.
        (Type::Array(a1), Type::Array(a2)) => match cfg.array_fusion {
            ArrayFusion::Collapse => Type::star(fuse_with(
                cfg,
                &collapse_with(cfg, a1),
                &collapse_with(cfg, a2),
            )),
            ArrayFusion::PositionalWhenAligned if a1.len() == a2.len() => {
                let elems = a1
                    .elems()
                    .iter()
                    .zip(a2.elems())
                    .map(|(x, y)| fuse_with(cfg, x, y))
                    .collect();
                Type::Array(ArrayType::new(elems))
            }
            ArrayFusion::PositionalWhenAligned => Type::star(fuse_with(
                cfg,
                &collapse_with(cfg, a1),
                &collapse_with(cfg, a2),
            )),
        },
        (Type::Star(body), Type::Array(a)) => {
            Type::star(fuse_with(cfg, body, &collapse_with(cfg, a)))
        }
        (Type::Array(a), Type::Star(body)) => {
            Type::star(fuse_with(cfg, &collapse_with(cfg, a), body))
        }
        (Type::Star(b1), Type::Star(b2)) => Type::star(fuse_with(cfg, b1, b2)),

        _ => unreachable!("lfuse on mismatched kinds: {t1} vs {t2}"),
    }
}

/// Record fusion: a merge-join over the two sorted field lists.
fn lfuse_records(cfg: FuseConfig, r1: &RecordType, r2: &RecordType) -> Type {
    let (f1s, f2s) = (r1.fields(), r2.fields());
    let mut out: Vec<Field> = Vec::with_capacity(f1s.len().max(f2s.len()));
    let (mut i, mut j) = (0, 0);
    while i < f1s.len() && j < f2s.len() {
        let (f1, f2) = (&f1s[i], &f2s[j]);
        match f1.name.cmp(&f2.name) {
            std::cmp::Ordering::Equal => {
                // FMatch: fuse the types; min(m, n) cardinality with ? < 1
                // means optional wins.
                out.push(Field {
                    name: f1.name.clone(),
                    ty: fuse_with(cfg, &f1.ty, &f2.ty),
                    optional: f1.optional || f2.optional,
                });
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                out.push(as_optional(f1));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(as_optional(f2));
                j += 1;
            }
        }
    }
    // FUnmatch tails: keys present on one side only become optional.
    out.extend(f1s[i..].iter().map(as_optional));
    out.extend(f2s[j..].iter().map(as_optional));
    Type::Record(RecordType::from_sorted(out).expect("merge-join keeps order"))
}

fn as_optional(f: &Field) -> Field {
    Field {
        name: f.name.clone(),
        ty: f.ty.clone(),
        optional: true,
    }
}

/// The array simplification of Figure 6 lines 8–9: fold `Fuse` over the
/// element types of a positional array type.
///
/// Returns the *body* of the starred form: `collapse([T₁,…,Tₙ]) =
/// T₁ ⊔ … ⊔ Tₙ`, so the simplified array type is `[collapse(AT)*]`. For
/// the empty array type the body is `ε` (footnote 1: `[ε*]` has the same
/// semantics as `EArrT`).
pub fn collapse(at: &ArrayType) -> Type {
    collapse_with(FuseConfig::default(), at)
}

fn collapse_with(cfg: FuseConfig, at: &ArrayType) -> Type {
    at.elems()
        .iter()
        .fold(Type::Bottom, |acc, t| fuse_with(cfg, &acc, t))
}

/// The kind-indexed view used by `fuse_with`, exposed for tests and for
/// the engine's metrics: which kinds appear in a normal type.
pub fn kinds_present(t: &Type) -> impl Iterator<Item = TypeKind> + '_ {
    t.addends().iter().map(|a| a.kind().expect("kinded addend"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_type;
    use typefuse_json::json;
    use typefuse_types::parse_type;

    fn f(a: &str, b: &str) -> String {
        fuse(&parse_type(a).unwrap(), &parse_type(b).unwrap()).to_string()
    }

    #[test]
    fn section_2_record_example() {
        // T₁ = {A: Str, B: Num}, T₂ = {B: Bool, C: Str}
        // ⟹ T₁₂ = {A: Str?, B: Num + Bool, C: Str?}
        assert_eq!(
            f("{A: Str, B: Num}", "{B: Bool, C: Str}"),
            "{A: Str?, B: Bool + Num, C: Str?}"
        );
    }

    #[test]
    fn section_2_optionality_prevails() {
        // T₁₂ fused with T₃ = {A: Null, B: Num}
        // ⟹ {A: Str + Null?, B: Num + Bool, C: Str?}
        assert_eq!(
            f("{A: Str?, B: Bool + Num, C: Str?}", "{A: Null, B: Num}"),
            "{A: Null + Str?, B: Bool + Num, C: Str?}"
        );
    }

    #[test]
    fn section_2_nested_record_example() {
        // fuse {l: Bool + Str + {A: Num}} with {l: {A: Str, B: Num}}
        // ⟹ {l: Bool + Str + {A: Num + Str, B: Num?}}
        assert_eq!(
            f("{l: Bool + Str + {A: Num}}", "{l: {A: Str, B: Num}}"),
            "{l: Bool + Str + {A: Num + Str, B: Num?}}"
        );
    }

    #[test]
    fn section_2_mixed_content_simplification() {
        // [Str, Str, {E: Str, F: Num}] and the swapped order both simplify
        // and fuse to [(Str + {E: Str, F: Num})*].
        let t1 = infer_type(&json!(["abc", "cde", {"E": "fr", "F": 12}]));
        let t2 = infer_type(&json!([{"E": "fr", "F": 12}, "abc", "cde"]));
        let expected = "[(Str + {E: Str, F: Num})*]";
        assert_eq!(fuse(&t1, &t1).to_string(), expected);
        assert_eq!(fuse(&t1, &t2).to_string(), expected);
        assert_eq!(fuse(&t2, &t1).to_string(), expected);
    }

    #[test]
    fn section_5_collapse_example() {
        // T = [Num, Bool, Num, {l1: Num, l2: Str}, {l1: Num, l2: Bool, l3: Str}]
        // collapse(T) = Num + Bool + {l1: Num, l2: Str + Bool, l3: Str?}
        let t = parse_type("[Num, Bool, Num, {l1: Num, l2: Str}, {l1: Num, l2: Bool, l3: Str}]")
            .unwrap();
        let at = match t {
            Type::Array(at) => at,
            _ => unreachable!(),
        };
        assert_eq!(
            collapse(&at).to_string(),
            "Bool + Num + {l1: Num, l2: Bool + Str, l3: Str?}"
        );
    }

    #[test]
    fn bottom_is_the_identity() {
        for text in ["Null", "{a: Num}", "[Str*]", "Num + Str"] {
            let t = parse_type(text).unwrap();
            assert_eq!(fuse(&Type::Bottom, &t), t);
            assert_eq!(fuse(&t, &Type::Bottom), t);
        }
        assert_eq!(fuse(&Type::Bottom, &Type::Bottom), Type::Bottom);
    }

    #[test]
    fn idempotence_on_samples() {
        for text in [
            "Null",
            "{a: Str?, b: Bool + Num}",
            "[(Str + {})*]",
            "{a: {b: [Num*]}}",
        ] {
            let t = parse_type(text).unwrap();
            assert_eq!(fuse(&t, &t), t, "fuse({text}, {text})");
        }
    }

    #[test]
    fn different_kinds_union() {
        assert_eq!(f("Num", "Str"), "Num + Str");
        assert_eq!(f("Null", "{}"), "Null + {}");
        assert_eq!(f("Num + Str", "Bool"), "Bool + Num + Str");
        // Same-kind members fuse inside the union.
        assert_eq!(
            f("{a: Num} + Str", "{b: Bool}"),
            "Str + {a: Num?, b: Bool?}"
        );
    }

    #[test]
    fn empty_arrays() {
        // [] ⊔ [] = [ε*] which prints as [].
        assert_eq!(f("[]", "[]"), "[]");
        // [] ⊔ [Num, Num] = [Num*].
        assert_eq!(f("[]", "[Num, Num]"), "[Num*]");
        // Star of bottom against a star.
        assert_eq!(f("[]", "[Str*]"), "[Str*]");
    }

    #[test]
    fn star_absorbs_positional() {
        assert_eq!(f("[Num*]", "[Str, Num]"), "[(Num + Str)*]");
        assert_eq!(f("[Str, Num]", "[Num*]"), "[(Num + Str)*]");
        assert_eq!(f("[Num*]", "[Str*]"), "[(Num + Str)*]");
    }

    #[test]
    fn nested_arrays_of_records() {
        assert_eq!(
            f("[{a: Num}, {b: Str}]", "[{a: Bool}]"),
            "[{a: Bool + Num?, b: Str?}*]"
        );
    }

    #[test]
    fn fuse_all_over_inferred_types() {
        let values = [
            json!({"a": 1, "b": "x"}),
            json!({"a": null}),
            json!({"a": 2, "c": [1, 2]}),
        ];
        let types: Vec<Type> = values.iter().map(infer_type).collect();
        let fused = fuse_all(&types);
        // `c` occurs in a single record, so its array type never passes
        // through LFuse and stays positional (collapse happens only when
        // two array types meet — Figure 6 lines 4–7).
        assert_eq!(
            fused.to_string(),
            "{a: Null + Num, b: Str?, c: [Num, Num]?}"
        );
        // Correctness: every input value is admitted by the fused type.
        for v in &values {
            assert!(fused.admits(v), "{fused} should admit {v}");
        }
    }

    #[test]
    fn fuse_all_empty_is_bottom() {
        assert_eq!(fuse_all([]), Type::Bottom);
    }

    #[test]
    fn positional_when_aligned_keeps_precision() {
        let cfg = FuseConfig {
            array_fusion: ArrayFusion::PositionalWhenAligned,
        };
        let t1 = parse_type("[Num, Str]").unwrap();
        let t2 = parse_type("[Bool, Str]").unwrap();
        assert_eq!(fuse_with(cfg, &t1, &t2).to_string(), "[Bool + Num, Str]");
        // Misaligned lengths fall back to collapse.
        let t3 = parse_type("[Num]").unwrap();
        assert_eq!(fuse_with(cfg, &t1, &t3).to_string(), "[(Num + Str)*]");
        // The paper's default collapses even when aligned.
        assert_eq!(fuse(&t1, &t2).to_string(), "[(Bool + Num + Str)*]");
    }

    #[test]
    fn output_is_always_normal() {
        let pairs = [
            ("{a: Num}", "{a: Str}"),
            ("[{x: Num}]", "[Str, {x: Bool, y: Null}]"),
            ("Num + {a: [Num*]}", "{a: []} + Str"),
        ];
        for (a, b) in pairs {
            let fused = fuse(&parse_type(a).unwrap(), &parse_type(b).unwrap());
            fused.check_invariants().unwrap();
        }
    }

    #[test]
    fn kinds_present_reports_union_members() {
        let t = parse_type("Num + Str + {}").unwrap();
        let kinds: Vec<_> = kinds_present(&t).collect();
        assert_eq!(kinds, vec![TypeKind::Num, TypeKind::Str, TypeKind::Record]);
    }

    #[test]
    fn fusion_grows_size_at_most_additively() {
        // |Fuse(T,U)| ≤ |T| + |U| + 1 on a few structured samples (the
        // succinctness rationale: fusion never duplicates shared parts).
        let samples = [
            ("{a: Num, b: Str}", "{a: Num, b: Str}"),
            ("{a: Num}", "{b: {c: [Num*]}}"),
            ("[Num, Num, Num]", "[Str]"),
        ];
        for (a, b) in samples {
            let (t, u) = (parse_type(a).unwrap(), parse_type(b).unwrap());
            let fused = fuse(&t, &u);
            assert!(
                fused.size() <= t.size() + u.size() + 1,
                "|{fused}| > |{t}| + |{u}| + 1"
            );
        }
    }
}
