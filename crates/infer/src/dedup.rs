//! The shape-dedup Reduce: weighted, memoized fusion over interned
//! [`TypeId`]s.
//!
//! Massive JSON datasets are structurally redundant — the paper's own
//! evaluation sees 1M GitHub values collapse to ~4.6K distinct inferred
//! types. Because `Fuse` is idempotent, commutative and associative
//! (Theorems 5.2–5.5) with `ε` as identity, the weighted reduce — fuse
//! each *distinct* type once, with a multiplicity — is semantically
//! equal to fusing every value's type, in any bracketing and order.
//!
//! One catch keeps this from being a literal skip-the-duplicates fold:
//! idempotence is only *semantic*. Syntactically,
//! `Fuse([Bool], [Bool]) = [Bool*]` — two positional array types
//! collapse whenever they meet (Figure 6 lines 4–7) — and this crate
//! promises byte-identical output across routes. The [`DedupFuser`]
//! therefore realises the weighted reduce through *memoization*: the Map
//! side folds every record to an interned [`TypeId`] and bumps a
//! per-shape multiplicity; the Reduce side still takes every
//! `schema ⊔ shape` step of the plain fold, but memoizes
//! `Fuse(id₁, id₂) → id` in a per-worker [`FuseCache`], so each
//! *distinct* step is computed once and every duplicate record replays
//! it as one interner lookup plus one O(1) cache hit. The schema-state
//! sequence is exactly the plain fold's, which is what makes the output
//! byte-identical rather than merely equivalent. The memo key is the
//! *unordered* pair — licensed by commutativity (Theorem 5.4) — so
//! `Fuse(a, b)` and `Fuse(b, a)` share an entry.
//!
//! Caches and interners are partition-local (no cross-thread locking);
//! [`DedupAcc::merge`] translates the other side's arena and memo table
//! through [`TypeInterner::absorb`] at combine time, which keeps every
//! cache entry valid because fusion results are structural facts about
//! shapes, not about the ids that happen to name them.

use crate::counting::{type_paths, CountedSchema};
use crate::fuse::{ArrayFusion, FuseConfig};
use crate::fuser::Fuser;
use std::collections::HashMap;
use typefuse_obs::Recorder;
use typefuse_types::intern::{FieldShape, FxHashMap, ShapeRef};
use typefuse_types::{Type, TypeId, TypeInterner};

/// Memo table for id-level fusion: `Fuse(min(a,b), max(a,b)) → fused`,
/// plus hit/miss counters surfaced as `fuse.cache_hits` /
/// `fuse.cache_misses`.
///
/// A cache is only meaningful together with the [`TypeInterner`] whose
/// ids it stores and the [`FuseConfig`] under which its entries were
/// computed; [`DedupAcc`] owns all three as one unit.
#[derive(Debug, Clone, Default)]
pub struct FuseCache {
    memo: FxHashMap<(TypeId, TypeId), TypeId>,
    hits: u64,
    misses: u64,
}

impl FuseCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups answered from the memo table (or by idempotence).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run a real structural fusion.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the memo table is empty.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

/// `Fuse(T₁, T₂)` over interned ids, memoized in `cache`.
///
/// Mirrors `fuse_with` exactly (same six-slot KMatch/KUnmatch partition,
/// same `LFuse` cases) but at the id level: pass-through addends are
/// copied as `u32`s instead of cloned as subtrees, identical inputs
/// short-circuit by idempotence, and previously seen unordered pairs are
/// answered from the memo table. Sub-fusions (e.g. matched record fields)
/// recurse through this function too, so shared nested shapes hit the
/// cache even when their parents differ.
pub fn fuse_ids(
    cfg: FuseConfig,
    interner: &mut TypeInterner,
    cache: &mut FuseCache,
    t1: TypeId,
    t2: TypeId,
) -> TypeId {
    // ε is the identity of Fuse — `fuse_with` passes the other side's
    // addends through untouched, so returning the id is byte-identical.
    // Like the engine's fold-from-first semantics this is a move, counted
    // neither as hit nor miss.
    //
    // Note there is deliberately no `t1 == t2` shortcut: `Fuse` is only
    // *semantically* idempotent. Syntactically `Fuse([Bool], [Bool])`
    // collapses to `[Bool*]` (Figure 6 lines 4–7 fire whenever two array
    // types meet), so returning `t1` would diverge from the plain fold.
    // Equal pairs go through the memo like any other pair: computed once,
    // answered O(1) for every duplicate after that.
    if t1 == TypeId::BOTTOM {
        return t2;
    }
    if t2 == TypeId::BOTTOM {
        return t1;
    }
    let key = if t1 < t2 { (t1, t2) } else { (t2, t1) };
    if let Some(&fused) = cache.memo.get(&key) {
        cache.hits += 1;
        return fused;
    }
    cache.misses += 1;

    fn addends(interner: &TypeInterner, id: TypeId) -> Vec<TypeId> {
        match interner.shape(id) {
            ShapeRef::Union(ids) => ids.to_vec(),
            _ => vec![id],
        }
    }
    // KMatch / KUnmatch via the same kind-indexed six-slot table as
    // `fuse_with`; normality guarantees at most one addend per kind on
    // each side.
    let mut slots: [Option<TypeId>; 6] = [None; 6];
    for id in addends(interner, t1)
        .into_iter()
        .chain(addends(interner, t2))
    {
        let k = interner.kind(id).expect("union addends are kinded") as usize;
        slots[k] = Some(match slots[k].take() {
            None => id,
            Some(prev) => lfuse_ids(cfg, interner, cache, prev, id),
        });
    }
    let fused = interner.intern_union(slots.into_iter().flatten());
    cache.memo.insert(key, fused);
    fused
}

/// `LFuse` over ids — both arguments are non-union shapes of one kind.
fn lfuse_ids(
    cfg: FuseConfig,
    interner: &mut TypeInterner,
    cache: &mut FuseCache,
    t1: TypeId,
    t2: TypeId,
) -> TypeId {
    debug_assert_eq!(interner.kind(t1), interner.kind(t2));
    // Copy the one-level child-id lists out so the interner is free to be
    // mutated by the recursive fusions below; these are small Vec<u32>
    // copies, never subtree clones. Basic shapes return immediately
    // (Figure 6 line 2: equal kind ⟹ equal basic type).
    enum Node {
        Basic,
        Record(Vec<FieldShape>),
        Array(Vec<TypeId>),
        Star(TypeId),
    }
    fn node(interner: &TypeInterner, id: TypeId) -> Node {
        match interner.shape(id) {
            ShapeRef::Null | ShapeRef::Bool | ShapeRef::Num | ShapeRef::Str => Node::Basic,
            ShapeRef::Record(fields) => Node::Record(fields.to_vec()),
            ShapeRef::Array(elems) => Node::Array(elems.to_vec()),
            ShapeRef::Star(body) => Node::Star(body),
            _ => unreachable!("lfuse_ids on an ε or union shape"),
        }
    }
    match (node(interner, t1), node(interner, t2)) {
        // Line 2: identical basic types.
        (Node::Basic, Node::Basic) => {
            debug_assert_eq!(t1, t2);
            t1
        }

        // Line 3: record fusion.
        (Node::Record(f1), Node::Record(f2)) => lfuse_records_ids(cfg, interner, cache, &f1, &f2),

        // Lines 4–7: array fusion through collapse.
        (Node::Array(a1), Node::Array(a2)) => match cfg.array_fusion {
            ArrayFusion::PositionalWhenAligned if a1.len() == a2.len() => {
                let elems = a1
                    .iter()
                    .zip(&a2)
                    .map(|(&x, &y)| fuse_ids(cfg, interner, cache, x, y))
                    .collect();
                interner.intern_array(elems)
            }
            _ => {
                let b1 = collapse_ids(cfg, interner, cache, &a1);
                let b2 = collapse_ids(cfg, interner, cache, &a2);
                let body = fuse_ids(cfg, interner, cache, b1, b2);
                interner.intern_star(body)
            }
        },
        (Node::Star(body), Node::Array(a)) => {
            let collapsed = collapse_ids(cfg, interner, cache, &a);
            let body = fuse_ids(cfg, interner, cache, body, collapsed);
            interner.intern_star(body)
        }
        (Node::Array(a), Node::Star(body)) => {
            let collapsed = collapse_ids(cfg, interner, cache, &a);
            let body = fuse_ids(cfg, interner, cache, collapsed, body);
            interner.intern_star(body)
        }
        (Node::Star(b1), Node::Star(b2)) => {
            let body = fuse_ids(cfg, interner, cache, b1, b2);
            interner.intern_star(body)
        }

        _ => unreachable!("lfuse_ids on mismatched kinds"),
    }
}

/// Record fusion: the merge-join of `lfuse_records` over interned fields.
/// Name order is the string order of the interned names; equal ids
/// short-circuit the string comparison.
fn lfuse_records_ids(
    cfg: FuseConfig,
    interner: &mut TypeInterner,
    cache: &mut FuseCache,
    f1s: &[FieldShape],
    f2s: &[FieldShape],
) -> TypeId {
    use std::cmp::Ordering;
    let mut out: Vec<FieldShape> = Vec::with_capacity(f1s.len().max(f2s.len()));
    let (mut i, mut j) = (0, 0);
    while i < f1s.len() && j < f2s.len() {
        let (n1, t1, o1) = f1s[i];
        let (n2, t2, o2) = f2s[j];
        let ord = if n1 == n2 {
            Ordering::Equal
        } else {
            interner.name(n1).cmp(interner.name(n2))
        };
        match ord {
            Ordering::Equal => {
                // FMatch: fuse the types; min(m, n) cardinality with
                // ? < 1 means optional wins.
                let ty = fuse_ids(cfg, interner, cache, t1, t2);
                out.push((n1, ty, o1 || o2));
                i += 1;
                j += 1;
            }
            Ordering::Less => {
                out.push((n1, t1, true));
                i += 1;
            }
            Ordering::Greater => {
                out.push((n2, t2, true));
                j += 1;
            }
        }
    }
    // FUnmatch tails: keys present on one side only become optional.
    out.extend(f1s[i..].iter().map(|&(n, t, _)| (n, t, true)));
    out.extend(f2s[j..].iter().map(|&(n, t, _)| (n, t, true)));
    interner.intern_record(out)
}

/// The array simplification (Figure 6 lines 8–9) over ids: fold
/// [`fuse_ids`] over the element types, yielding the body of the starred
/// form (`ε` for the empty array type).
fn collapse_ids(
    cfg: FuseConfig,
    interner: &mut TypeInterner,
    cache: &mut FuseCache,
    elems: &[TypeId],
) -> TypeId {
    elems.iter().fold(TypeId::BOTTOM, |acc, &e| {
        fuse_ids(cfg, interner, cache, acc, e)
    })
}

/// The shape-dedup accumulator: a partition-local interner, the running
/// fused schema as a [`TypeId`], per-shape multiplicities, and the fusion
/// memo-cache.
#[derive(Debug, Clone)]
pub struct DedupAcc {
    interner: TypeInterner,
    cache: FuseCache,
    schema: TypeId,
    counts: FxHashMap<TypeId, u64>,
    records: u64,
}

impl Default for DedupAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl DedupAcc {
    /// The identity accumulator (`ε`, nothing absorbed).
    pub fn new() -> Self {
        DedupAcc {
            interner: TypeInterner::new(),
            cache: FuseCache::new(),
            schema: TypeId::BOTTOM,
            counts: FxHashMap::default(),
            records: 0,
        }
    }

    /// Resume from a checkpointed schema and record count. The interner,
    /// memo cache, and per-shape multiplicities restart cold — they are
    /// pure performance state (the dedup route is byte-identical to the
    /// plain fold by construction), so `distinct_shapes()` counts only
    /// shapes seen since the resume. The schema sequence continues
    /// exactly where the checkpoint left off.
    pub fn resume(schema: &Type, records: u64) -> Self {
        let mut interner = TypeInterner::new();
        let schema = interner.intern(schema);
        DedupAcc {
            interner,
            cache: FuseCache::new(),
            schema,
            counts: FxHashMap::default(),
            records,
        }
    }

    /// Fold one inferred type in: intern it, bump its shape count, fuse
    /// its id into the running schema. Once the schema has saturated this
    /// is an interner lookup plus a memo hit per duplicate shape.
    pub fn absorb_type(&mut self, cfg: FuseConfig, ty: &Type) {
        let id = self.interner.intern(ty);
        *self.counts.entry(id).or_insert(0) += 1;
        self.records += 1;
        self.schema = fuse_ids(cfg, &mut self.interner, &mut self.cache, self.schema, id);
    }

    /// Merge another partition's accumulator: translate its arena into
    /// ours, add multiplicities, carry over its memo table (entries stay
    /// valid — they are facts about shapes, re-keyed to our ids), and
    /// fuse the two schema ids.
    pub fn merge(&mut self, cfg: FuseConfig, other: &DedupAcc) {
        let map = self.interner.absorb(&other.interner);
        for (&id, &n) in &other.counts {
            *self.counts.entry(map[id.index()]).or_insert(0) += n;
        }
        self.records += other.records;
        for (&(a, b), &fused) in &other.cache.memo {
            let (ta, tb) = (map[a.index()], map[b.index()]);
            let key = if ta < tb { (ta, tb) } else { (tb, ta) };
            self.cache.memo.entry(key).or_insert(map[fused.index()]);
        }
        self.cache.hits += other.cache.hits;
        self.cache.misses += other.cache.misses;
        let other_schema = map[other.schema.index()];
        self.schema = fuse_ids(
            cfg,
            &mut self.interner,
            &mut self.cache,
            self.schema,
            other_schema,
        );
    }

    /// Number of values absorbed (with multiplicity).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Number of distinct top-level shapes absorbed — the
    /// `infer.distinct_shapes` counter, and the size of the weighted
    /// reduce that replaced `records()` fusions.
    pub fn distinct_shapes(&self) -> usize {
        self.counts.len()
    }

    /// The fusion memo-cache (hit/miss counters live here).
    pub fn cache(&self) -> &FuseCache {
        &self.cache
    }

    /// The partition-local interner.
    pub fn interner(&self) -> &TypeInterner {
        &self.interner
    }

    /// The fused schema as an owned [`Type`].
    pub fn schema(&self) -> Type {
        self.interner.resolve(self.schema)
    }

    /// The distinct shapes with their multiplicities, resolved to owned
    /// types. Iteration order is unspecified.
    pub fn shape_counts(&self) -> impl Iterator<Item = (Type, u64)> + '_ {
        self.counts
            .iter()
            .map(|(&id, &n)| (self.interner.resolve(id), n))
    }

    /// Emit the dedup counters (`infer.distinct_shapes`,
    /// `fuse.cache_hits`, `fuse.cache_misses`, and `fuse.calls` — the
    /// number of real fusion computations, i.e. the misses).
    pub fn flush_counters(&self, rec: &Recorder) {
        if rec.is_enabled() {
            rec.add("infer.distinct_shapes", self.counts.len() as u64);
            rec.add("fuse.cache_hits", self.cache.hits);
            rec.add("fuse.cache_misses", self.cache.misses);
            rec.add("fuse.calls", self.cache.misses);
        }
    }
}

/// The shape-dedup Reduce strategy as a pluggable [`Fuser`]: plug-in
/// replacement for the plain/recorded strategies with byte-identical
/// output, selected by `--dedup` in the CLI and by `SchemaJob::dedup` in
/// the pipeline.
#[derive(Debug, Clone)]
pub struct DedupFuser {
    cfg: FuseConfig,
    rec: Recorder,
}

impl DedupFuser {
    /// A dedup fuser emitting its counters into `rec` at finish time.
    pub fn new(cfg: FuseConfig, rec: Recorder) -> Self {
        DedupFuser { cfg, rec }
    }

    /// A dedup fuser without observability.
    pub fn plain(cfg: FuseConfig) -> Self {
        DedupFuser::new(cfg, Recorder::disabled())
    }
}

impl Fuser for DedupFuser {
    type Acc = DedupAcc;

    fn empty(&self) -> DedupAcc {
        DedupAcc::new()
    }

    fn absorb_type(&self, acc: &mut DedupAcc, ty: &Type) {
        acc.absorb_type(self.cfg, ty);
    }

    fn merge(&self, acc: &mut DedupAcc, other: &DedupAcc) {
        acc.merge(self.cfg, other);
    }

    fn is_empty_acc(&self, acc: &DedupAcc) -> bool {
        acc.records == 0
    }

    fn finish_schema(&self, acc: DedupAcc) -> Type {
        acc.flush_counters(&self.rec);
        acc.schema()
    }
}

/// Path counting on the dedup route: multiplicities make per-path
/// presence counts derivable from the distinct shapes alone, because a
/// per-record inferred type (Figure 4) determines exactly which record
/// paths the record contains — see [`type_paths`]. Counting therefore
/// pays the path walk once per *distinct* shape instead of once per
/// value.
#[derive(Debug, Clone, Copy, Default)]
pub struct DedupCounting {
    cfg: FuseConfig,
}

impl DedupCounting {
    /// A counting strategy fusing under `cfg`.
    pub fn new(cfg: FuseConfig) -> Self {
        DedupCounting { cfg }
    }
}

/// Accumulator of [`DedupCounting`]: a [`DedupAcc`] whose shape
/// multiplicities double as weighted path counts at finish time.
#[derive(Debug, Clone, Default)]
pub struct DedupCountingAcc {
    inner: DedupAcc,
}

impl DedupCountingAcc {
    /// Number of values absorbed.
    pub fn count(&self) -> u64 {
        self.inner.records()
    }

    /// The underlying dedup accumulator (counter flushing, stats).
    pub fn acc(&self) -> &DedupAcc {
        &self.inner
    }

    /// Finish, producing the schema + per-path statistics: each distinct
    /// shape contributes its path set weighted by its multiplicity.
    pub fn finish(self) -> CountedSchema {
        let mut path_counts: HashMap<String, u64> = HashMap::new();
        for (ty, n) in self.inner.shape_counts() {
            for path in type_paths(&ty) {
                *path_counts.entry(path).or_insert(0) += n;
            }
        }
        CountedSchema {
            schema: self.inner.schema(),
            total: self.inner.records(),
            path_counts,
        }
    }
}

impl Fuser for DedupCounting {
    type Acc = DedupCountingAcc;

    fn empty(&self) -> DedupCountingAcc {
        DedupCountingAcc::default()
    }

    fn absorb_type(&self, acc: &mut DedupCountingAcc, ty: &Type) {
        acc.inner.absorb_type(self.cfg, ty);
    }

    fn merge(&self, acc: &mut DedupCountingAcc, other: &DedupCountingAcc) {
        acc.inner.merge(self.cfg, &other.inner);
    }

    fn is_empty_acc(&self, acc: &DedupCountingAcc) -> bool {
        acc.inner.records == 0
    }

    fn finish_schema(&self, acc: DedupCountingAcc) -> Type {
        acc.inner.schema()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::Counting;
    use crate::fuse::{fuse_all, fuse_with};
    use crate::infer::infer_type;
    use typefuse_json::json;
    use typefuse_types::parse_type;

    fn values() -> Vec<typefuse_json::Value> {
        vec![
            json!({"a": 1, "b": "x"}),
            json!({"a": 2, "b": "y"}),
            json!({"a": null, "c": [1, 2]}),
            json!({"a": 1, "b": "x"}),
        ]
    }

    fn fuse_ids_oracle(a: &str, b: &str) -> (String, String) {
        let (ta, tb) = (parse_type(a).unwrap(), parse_type(b).unwrap());
        let cfg = FuseConfig::default();
        let mut interner = TypeInterner::new();
        let mut cache = FuseCache::new();
        let (ia, ib) = (interner.intern(&ta), interner.intern(&tb));
        let fused = fuse_ids(cfg, &mut interner, &mut cache, ia, ib);
        (
            interner.resolve(fused).to_string(),
            fuse_with(cfg, &ta, &tb).to_string(),
        )
    }

    #[test]
    fn fuse_ids_matches_fuse_with_on_paper_examples() {
        for (a, b) in [
            ("{A: Str, B: Num}", "{B: Bool, C: Str}"),
            ("{A: Str?, B: Bool + Num, C: Str?}", "{A: Null, B: Num}"),
            ("{l: Bool + Str + {A: Num}}", "{l: {A: Str, B: Num}}"),
            ("[]", "[Num, Num]"),
            ("[Num*]", "[Str, Num]"),
            ("Num + {a: [Num*]}", "{a: []} + Str"),
            ("[{x: Num}]", "[Str, {x: Bool, y: Null}]"),
        ] {
            let (dedup, plain) = fuse_ids_oracle(a, b);
            assert_eq!(dedup, plain, "fuse_ids vs fuse_with on ({a}, {b})");
        }
    }

    #[test]
    fn fuse_ids_positional_arrays_match() {
        let cfg = FuseConfig {
            array_fusion: ArrayFusion::PositionalWhenAligned,
        };
        for (a, b) in [("[Num, Str]", "[Bool, Str]"), ("[Num, Str]", "[Num]")] {
            let (ta, tb) = (parse_type(a).unwrap(), parse_type(b).unwrap());
            let mut interner = TypeInterner::new();
            let mut cache = FuseCache::new();
            let (ia, ib) = (interner.intern(&ta), interner.intern(&tb));
            let fused = fuse_ids(cfg, &mut interner, &mut cache, ia, ib);
            assert_eq!(interner.resolve(fused), fuse_with(cfg, &ta, &tb));
        }
    }

    #[test]
    fn memo_cache_hits_on_repeats_and_swaps() {
        let cfg = FuseConfig::default();
        let mut interner = TypeInterner::new();
        let mut cache = FuseCache::new();
        let a = interner.intern(&parse_type("{x: Num}").unwrap());
        let b = interner.intern(&parse_type("{y: Str}").unwrap());
        let first = fuse_ids(cfg, &mut interner, &mut cache, a, b);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
        let again = fuse_ids(cfg, &mut interner, &mut cache, a, b);
        let swapped = fuse_ids(cfg, &mut interner, &mut cache, b, a);
        assert_eq!(first, again);
        assert_eq!(first, swapped, "unordered key covers both orders");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn dedup_fuser_matches_fuse_all() {
        let fuser = DedupFuser::plain(FuseConfig::default());
        let mut acc = fuser.empty();
        let types: Vec<Type> = values().iter().map(infer_type).collect();
        for t in &types {
            fuser.absorb_type(&mut acc, t);
        }
        assert_eq!(acc.records(), 4);
        assert_eq!(acc.distinct_shapes(), 2, "two of four records repeat");
        assert!(acc.cache().hits() > 0, "duplicates hit the cache");
        assert_eq!(fuser.finish_schema(acc), fuse_all(&types));
    }

    #[test]
    fn dedup_merge_matches_single_stream() {
        let fuser = DedupFuser::plain(FuseConfig::default());
        let types: Vec<Type> = values().iter().map(infer_type).collect();
        let mut whole = fuser.empty();
        for t in &types {
            fuser.absorb_type(&mut whole, t);
        }
        let (mut left, mut right) = (fuser.empty(), fuser.empty());
        for t in &types[..1] {
            fuser.absorb_type(&mut left, t);
        }
        for t in &types[1..] {
            fuser.absorb_type(&mut right, t);
        }
        fuser.merge(&mut left, &right);
        assert_eq!(left.records(), whole.records());
        assert_eq!(left.distinct_shapes(), whole.distinct_shapes());
        assert_eq!(fuser.finish_schema(left), fuser.finish_schema(whole));
    }

    #[test]
    fn merge_translates_the_memo_cache() {
        let fuser = DedupFuser::plain(FuseConfig::default());
        let mut left = fuser.empty();
        let mut right = fuser.empty();
        // Give the right side ids that cannot line up with the left's.
        fuser.absorb_type(&mut left, &parse_type("[Bool*]").unwrap());
        fuser.absorb_type(&mut right, &parse_type("{x: Num}").unwrap());
        fuser.absorb_type(&mut right, &parse_type("{y: Str}").unwrap());
        let right_pairs = right.cache().len();
        assert!(right_pairs > 0);
        fuser.merge(&mut left, &right);
        // The translated entry answers the same fusion on the merged side.
        let hits_before = left.cache.hits;
        let a = left.interner.intern(&parse_type("{x: Num}").unwrap());
        let b = left.interner.intern(&parse_type("{y: Str}").unwrap());
        let cfg = FuseConfig::default();
        let mut cache = left.cache.clone();
        fuse_ids(cfg, &mut left.interner.clone(), &mut cache, a, b);
        assert_eq!(cache.hits, hits_before + 1, "translated memo entry hit");
    }

    #[test]
    fn resume_continues_the_schema_sequence() {
        let fuser = DedupFuser::plain(FuseConfig::default());
        let types: Vec<Type> = values().iter().map(infer_type).collect();
        let mut whole = fuser.empty();
        for t in &types {
            fuser.absorb_type(&mut whole, t);
        }
        // Checkpoint after two records, resume, absorb the rest: the
        // final schema must be byte-identical to the uninterrupted fold.
        let mut before = fuser.empty();
        for t in &types[..2] {
            fuser.absorb_type(&mut before, t);
        }
        let mut resumed = DedupAcc::resume(&before.schema(), before.records());
        for t in &types[2..] {
            fuser.absorb_type(&mut resumed, t);
        }
        assert_eq!(resumed.records(), whole.records());
        assert_eq!(resumed.schema().to_string(), whole.schema().to_string());
        assert_eq!(resumed.schema(), whole.schema());
    }

    #[test]
    fn empty_acc_is_identity() {
        let fuser = DedupFuser::plain(FuseConfig::default());
        let acc = fuser.empty();
        assert!(fuser.is_empty_acc(&acc));
        assert_eq!(fuser.finish_schema(acc), Type::Bottom);
    }

    #[test]
    fn counters_flush_into_the_recorder() {
        let rec = Recorder::enabled();
        let fuser = DedupFuser::new(FuseConfig::default(), rec.clone());
        let mut acc = fuser.empty();
        for v in values() {
            fuser.absorb_value(&mut acc, &v);
        }
        fuser.finish_schema(acc);
        assert_eq!(rec.counter_value("infer.distinct_shapes"), 2);
        assert!(rec.counter_value("fuse.cache_hits") > 0);
        assert!(rec.counter_value("fuse.cache_misses") > 0);
        assert_eq!(
            rec.counter_value("fuse.calls"),
            rec.counter_value("fuse.cache_misses"),
            "a fuse call is a cache miss"
        );
    }

    #[test]
    fn dedup_counting_matches_counting() {
        let plain = Counting;
        let dedup = DedupCounting::new(FuseConfig::default());
        let mut pa = plain.empty();
        let mut da = dedup.empty();
        for v in values() {
            plain.absorb_value(&mut pa, &v);
            dedup.absorb_value(&mut da, &v);
        }
        let (pc, dc) = (pa.finish(), da.finish());
        assert_eq!(pc.total, dc.total);
        assert_eq!(pc.schema, dc.schema);
        assert_eq!(pc.path_counts, dc.path_counts);
    }

    #[test]
    fn dedup_counting_merge_matches_single_stream() {
        let dedup = DedupCounting::new(FuseConfig::default());
        let mut whole = dedup.empty();
        let (mut left, mut right) = (dedup.empty(), dedup.empty());
        for (i, v) in values().iter().enumerate() {
            dedup.absorb_value(&mut whole, v);
            dedup.absorb_value(if i % 2 == 0 { &mut left } else { &mut right }, v);
        }
        dedup.merge(&mut left, &right);
        let (merged, single) = (left.finish(), whole.finish());
        assert_eq!(merged.total, single.total);
        assert_eq!(merged.schema, single.schema);
        assert_eq!(merged.path_counts, single.path_counts);
    }
}
