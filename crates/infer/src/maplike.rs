//! Detection of *map-like* record types — the Wikidata pathology.
//!
//! Section 6.2 diagnoses why Wikidata fuses badly: "user identifiers are
//! directly encoded as keys, whereas a clean design would suggest
//! encoding this information as a value". Key-based fusion then piles up
//! thousands of optional fields whose types are all alike — the fused
//! type is huge but carries almost no extra information.
//!
//! This module mechanises that diagnosis (the paper's §7 future work on
//! the "relationship between precision and efficiency"): a record type is
//! **map-like** when it has many fields, almost all optional, whose types
//! fuse into a body that every field type already fits into. Reporting
//! `{<key>: T}` instead of the exploded record loses only the key names —
//! which were data, not schema, to begin with.
//!
//! [`find_map_like`] walks a schema and returns every map-like site with
//! its statistics; [`summarize`] rewrites those sites into a compact
//! star-keyed *description string* for human consumption (the type
//! language itself has no wildcard constructor, on purpose — normality
//! and fusion stay untouched).

use crate::fuse::fuse_all;
use typefuse_types::{is_subtype, RecordType, Type};

/// Tunables for map-likeness.
#[derive(Debug, Clone, Copy)]
pub struct MapLikeConfig {
    /// Minimum number of fields before a record can be map-like.
    pub min_fields: usize,
    /// Minimum fraction of optional fields (keys-as-data makes nearly
    /// every field optional).
    pub min_optional_ratio: f64,
}

impl Default for MapLikeConfig {
    fn default() -> Self {
        MapLikeConfig {
            min_fields: 12,
            min_optional_ratio: 0.9,
        }
    }
}

/// One detected map-like record site.
#[derive(Debug, Clone, PartialEq)]
pub struct MapLikeSite {
    /// Where in the schema (path notation, `$.claims`).
    pub path: String,
    /// Number of keys the record accumulated.
    pub keys: usize,
    /// The fused value type common to all fields.
    pub value_type: Type,
    /// AST size of the exploded record.
    pub exploded_size: usize,
    /// AST size of the `{<key>: T}` summary (1 map node + 1 key + |T|).
    pub summary_size: usize,
}

impl MapLikeSite {
    /// Size reduction factor of summarising this site.
    pub fn compression(&self) -> f64 {
        if self.summary_size == 0 {
            0.0
        } else {
            self.exploded_size as f64 / self.summary_size as f64
        }
    }
}

/// Scan a schema for map-like record sites.
pub fn find_map_like(schema: &Type, config: MapLikeConfig) -> Vec<MapLikeSite> {
    let mut out = Vec::new();
    walk(schema, "$", config, &mut out);
    out.sort_by_key(|site| std::cmp::Reverse(site.exploded_size));
    out
}

fn walk(t: &Type, path: &str, config: MapLikeConfig, out: &mut Vec<MapLikeSite>) {
    for addend in t.addends() {
        match addend {
            Type::Record(rt) => {
                if let Some(site) = classify(rt, path, config) {
                    out.push(site);
                    // A summarised site still gets its children scanned
                    // through the fused value type below; do not descend
                    // into each exploded field again.
                    if let Some(site) = out.last() {
                        walk(
                            &site.value_type.clone(),
                            &format!("{path}.<key>"),
                            config,
                            out,
                        );
                    }
                } else {
                    for f in rt.fields() {
                        walk(&f.ty, &format!("{path}.{}", f.name), config, out);
                    }
                }
            }
            Type::Star(body) => walk(body, &format!("{path}[]"), config, out),
            Type::Array(at) => {
                for e in at.elems() {
                    walk(e, &format!("{path}[]"), config, out);
                }
            }
            _ => {}
        }
    }
}

fn classify(rt: &RecordType, path: &str, config: MapLikeConfig) -> Option<MapLikeSite> {
    if rt.len() < config.min_fields {
        return None;
    }
    let optional = rt.optional_fields().count();
    if (optional as f64) < config.min_optional_ratio * rt.len() as f64 {
        return None;
    }
    // All field types must fit under their fusion — i.e. the fusion does
    // not need per-key distinctions beyond what one body expresses.
    let body = fuse_all(rt.fields().iter().map(|f| &f.ty));
    if !rt.fields().iter().all(|f| is_subtype(&f.ty, &body)) {
        return None;
    }
    let exploded = Type::Record(rt.clone()).size();
    let summary_size = 2 + body.size();
    Some(MapLikeSite {
        path: path.to_string(),
        keys: rt.len(),
        value_type: body,
        exploded_size: exploded,
        summary_size,
    })
}

/// Human-readable schema description with map-like sites summarised as
/// `{<key>: T}` and everything else printed normally.
pub fn summarize(schema: &Type, config: MapLikeConfig) -> String {
    let sites = find_map_like(schema, config);
    if sites.is_empty() {
        return schema.to_string();
    }
    let mut text = render(schema, "$", &sites);
    // Append the compression report.
    text.push_str("\n\n# map-like sites:");
    for site in &sites {
        text.push_str(&format!(
            "\n#   {}: {} keys, {}x smaller as {{<key>: …}}",
            site.path,
            site.keys,
            site.compression().round()
        ));
    }
    text
}

fn render(t: &Type, path: &str, sites: &[MapLikeSite]) -> String {
    let parts: Vec<String> = t
        .addends()
        .iter()
        .map(|addend| match addend {
            Type::Record(rt) => {
                if let Some(site) = sites.iter().find(|s| s.path == path) {
                    format!(
                        "{{<key>: {}}}",
                        render(&site.value_type, &format!("{path}.<key>"), sites)
                    )
                } else {
                    let fields: Vec<String> = rt
                        .fields()
                        .iter()
                        .map(|f| {
                            format!(
                                "{}: {}{}",
                                f.name,
                                render(&f.ty, &format!("{path}.{}", f.name), sites),
                                if f.optional { "?" } else { "" }
                            )
                        })
                        .collect();
                    format!("{{{}}}", fields.join(", "))
                }
            }
            Type::Star(body) => {
                let inner = render(body, &format!("{path}[]"), sites);
                if body.addends().len() > 1 {
                    format!("[({inner})*]")
                } else {
                    format!("[{inner}*]")
                }
            }
            Type::Array(at) => {
                let elems: Vec<String> = at
                    .elems()
                    .iter()
                    .map(|e| render(e, &format!("{path}[]"), sites))
                    .collect();
                format!("[{}]", elems.join(", "))
            }
            scalar => scalar.to_string(),
        })
        .collect();
    parts.join(" + ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{infer_type, Incremental};
    use typefuse_json::{json, Map, Value};

    /// A record keyed by ids, all values the same shape.
    fn keyed_record(n: usize) -> Value {
        let mut m = Map::new();
        for i in 0..n {
            m.insert_unchecked(format!("P{i:04}"), json!({"v": 1, "w": "x"}));
        }
        Value::Object(m)
    }

    fn fused_over_keyed(records: usize, keys_each: usize) -> Type {
        let mut inc = Incremental::new();
        for r in 0..records {
            let mut m = Map::new();
            for i in 0..keys_each {
                m.insert_unchecked(
                    format!("P{:04}", r * keys_each + i),
                    json!({"v": 1, "w": "x"}),
                );
            }
            inc.absorb(&Value::Object(m));
        }
        inc.into_schema()
    }

    #[test]
    fn detects_ids_as_keys() {
        let schema = fused_over_keyed(10, 5); // 50 distinct keys, all optional
        let sites = find_map_like(&schema, MapLikeConfig::default());
        assert_eq!(sites.len(), 1, "schema: {schema}");
        let site = &sites[0];
        assert_eq!(site.path, "$");
        assert_eq!(site.keys, 50);
        assert_eq!(site.value_type.to_string(), "{v: Num, w: Str}");
        assert!(
            site.compression() > 10.0,
            "compression {}",
            site.compression()
        );
    }

    #[test]
    fn ignores_normal_records() {
        let schema = infer_type(&json!({
            "id": 1, "name": "x", "meta": {"a": 1, "b": 2}
        }));
        assert!(find_map_like(&schema, MapLikeConfig::default()).is_empty());
    }

    #[test]
    fn mandatory_fields_block_detection() {
        // A wide but fully mandatory record is a real schema, not a map.
        let v = keyed_record(30);
        let schema = infer_type(&v); // single record ⇒ all mandatory
        assert!(find_map_like(&schema, MapLikeConfig::default()).is_empty());
    }

    #[test]
    fn heterogeneous_values_block_detection() {
        // Keys whose values have incompatible shapes are not map-like.
        let mut inc = Incremental::new();
        for i in 0..30 {
            let mut m = Map::new();
            if i % 2 == 0 {
                m.insert_unchecked(format!("k{i:03}"), json!({"v": 1}));
            } else {
                m.insert_unchecked(format!("k{i:03}"), json!(i as i64));
            }
            inc.absorb(&Value::Object(m));
        }
        let schema = inc.into_schema();
        // The fused body is {v: Num} + Num; each field type is one of the
        // two, which *is* a subtype of the union — so this is detected.
        // Heterogeneity in the subtype sense means a field whose type
        // escapes the fused body, which cannot happen by construction of
        // fusion. The guard that actually discriminates is the optional
        // ratio and min_fields; verify detection here is intentional.
        let sites = find_map_like(&schema, MapLikeConfig::default());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].value_type.to_string(), "Num + {v: Num}");
    }

    #[test]
    fn nested_sites_are_found_with_paths() {
        let mut inc = Incremental::new();
        for r in 0..10 {
            let mut claims = Map::new();
            for i in 0..4 {
                claims.insert_unchecked(format!("P{:03}", r * 4 + i), json!([{"rank": "normal"}]));
            }
            let mut top = Map::new();
            top.insert_unchecked("id", format!("Q{r}"));
            top.insert_unchecked("claims", Value::Object(claims));
            inc.absorb(&Value::Object(top));
        }
        let schema = inc.into_schema();
        let sites = find_map_like(&schema, MapLikeConfig::default());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].path, "$.claims");
        assert_eq!(sites[0].keys, 40);
    }

    #[test]
    fn summarize_renders_compactly() {
        let schema = fused_over_keyed(10, 5);
        let text = summarize(&schema, MapLikeConfig::default());
        assert!(
            text.starts_with("{<key>: {v: Num, w: Str}}"),
            "text: {text}"
        );
        assert!(text.contains("map-like sites"));
        assert!(text.contains("50 keys"));
        // Without sites the original printing is used.
        let plain = infer_type(&json!({"a": 1}));
        assert_eq!(summarize(&plain, MapLikeConfig::default()), "{a: Num}");
    }

    #[test]
    fn thresholds_are_respected() {
        let schema = fused_over_keyed(3, 2); // only 6 keys
        assert!(find_map_like(&schema, MapLikeConfig::default()).is_empty());
        let lax = MapLikeConfig {
            min_fields: 4,
            ..Default::default()
        };
        assert_eq!(find_map_like(&schema, lax).len(), 1);
    }
}
