//! Statistics-enriched schemas (the Section 7 future-work item: "we plan
//! to enrich schemas with statistical … information about the input
//! data").
//!
//! A [`CountingFuser`] maintains, next to the fused schema, a presence
//! count for every *record path* seen in the data. A path is written
//! `$.headline.main` for nested fields and `$.keywords[].rank` for fields
//! inside arrays. The resulting [`CountedSchema`] tells the user not just
//! that a field is optional, but *how* optional — e.g. that
//! `$.delete` appears in 0.1% of tweets, immediately exposing the
//! tweet/delete split of the Twitter dataset.

use crate::fuser::Fuser;
use crate::incremental::Incremental;
use std::collections::HashMap;
use typefuse_json::Value;
use typefuse_types::Type;

/// A fused schema together with per-path presence statistics.
#[derive(Debug, Clone)]
pub struct CountedSchema {
    /// The fused type.
    pub schema: Type,
    /// Total number of top-level values absorbed.
    pub total: u64,
    /// For each record path, in how many absorbed values it occurred at
    /// least once.
    pub path_counts: HashMap<String, u64>,
}

/// One row of [`CountedSchema::rows`].
#[derive(Debug, Clone, PartialEq)]
pub struct CountedField {
    /// The path, e.g. `$.headline.main`.
    pub path: String,
    /// In how many values the path occurred.
    pub count: u64,
    /// `count / total`.
    pub ratio: f64,
}

impl CountedSchema {
    /// The statistics as sorted rows (by descending count, then path).
    pub fn rows(&self) -> Vec<CountedField> {
        let mut rows: Vec<CountedField> = self
            .path_counts
            .iter()
            .map(|(path, &count)| CountedField {
                path: path.clone(),
                count,
                ratio: if self.total == 0 {
                    0.0
                } else {
                    count as f64 / self.total as f64
                },
            })
            .collect();
        rows.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.path.cmp(&b.path)));
        rows
    }

    /// Paths that occurred in every value — the "always selectable" fields
    /// the paper's property (iii) highlights.
    pub fn mandatory_paths(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .path_counts
            .iter()
            .filter(|&(_, &c)| c == self.total && self.total > 0)
            .map(|(p, _)| p.as_str())
            .collect();
        v.sort();
        v
    }
}

/// Accumulates a fused schema plus path statistics over a value stream.
#[derive(Debug, Clone, Default)]
pub struct CountingFuser {
    inner: Incremental,
    path_counts: HashMap<String, u64>,
}

impl CountingFuser {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one value: fuse its type and count its paths.
    pub fn absorb(&mut self, value: &Value) {
        self.inner.absorb(value);
        let mut seen = Vec::new();
        collect_paths(value, "$", &mut seen);
        seen.sort_unstable();
        seen.dedup();
        for path in seen {
            *self.path_counts.entry(path).or_insert(0) += 1;
        }
    }

    /// Absorb an already inferred type. Path statistics need the value
    /// itself, so this counts the record in `total` but contributes no
    /// path counts — prefer [`CountingFuser::absorb`] whenever the value
    /// is at hand.
    pub fn absorb_type(&mut self, ty: &Type) {
        self.inner.absorb_type(ty.clone());
    }

    /// Merge another accumulator (partition-wise processing).
    pub fn merge(&mut self, other: &CountingFuser) {
        self.inner.merge(&other.inner);
        for (path, count) in &other.path_counts {
            *self.path_counts.entry(path.clone()).or_insert(0) += count;
        }
    }

    /// Number of values absorbed.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Finish, producing the schema + statistics.
    pub fn finish(self) -> CountedSchema {
        CountedSchema {
            total: self.inner.count(),
            schema: self.inner.into_schema(),
            path_counts: self.path_counts,
        }
    }
}

/// The counting strategy as a pluggable [`Fuser`]: the accumulator is a
/// [`CountingFuser`], values are absorbed with their paths, and merging
/// adds counts. This is what lets the engine's trait-driven reduce run
/// path statistics with the same topology code as plain fusion.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counting;

impl Fuser for Counting {
    type Acc = CountingFuser;

    fn empty(&self) -> CountingFuser {
        CountingFuser::new()
    }

    fn absorb_type(&self, acc: &mut CountingFuser, ty: &Type) {
        acc.absorb_type(ty);
    }

    fn absorb_value(&self, acc: &mut CountingFuser, value: &Value) {
        acc.absorb(value);
    }

    fn merge(&self, acc: &mut CountingFuser, other: &CountingFuser) {
        acc.merge(other);
    }

    fn is_empty_acc(&self, acc: &CountingFuser) -> bool {
        acc.count() == 0
    }

    fn finish_schema(&self, acc: CountingFuser) -> Type {
        acc.finish().schema
    }
}

/// Every record path a value of type `ty` can contain, sorted and
/// deduplicated.
///
/// For a *per-record inferred type* (Figure 4) — no unions, no stars, no
/// optional fields — this is exactly the path set [`CountingFuser`]
/// counts for the record itself, which is what lets the shape-dedup
/// route weight one path walk per distinct shape by its multiplicity
/// instead of walking every value. On general (fused) types the walk is
/// a may-contain over-approximation: it descends into every union addend
/// and star body and does not distinguish optional fields.
pub fn type_paths(ty: &Type) -> Vec<String> {
    let mut out = Vec::new();
    collect_type_paths(ty, "$", &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

/// Mirror of [`collect_paths`] over the type AST: record fields push
/// their path and recurse, arrays (positional or starred) recurse under
/// `[]` without pushing, unions recurse into each addend.
fn collect_type_paths(ty: &Type, prefix: &str, out: &mut Vec<String>) {
    match ty {
        Type::Record(rt) => {
            for field in rt.fields() {
                let path = format!("{prefix}.{}", field.name);
                collect_type_paths(&field.ty, &path, out);
                out.push(path);
            }
        }
        Type::Array(at) => {
            let path = format!("{prefix}[]");
            for elem in at.elems() {
                collect_type_paths(elem, &path, out);
            }
        }
        Type::Star(body) => {
            let path = format!("{prefix}[]");
            collect_type_paths(body, &path, out);
        }
        Type::Union(u) => {
            for addend in u.addends() {
                collect_type_paths(addend, prefix, out);
            }
        }
        Type::Bottom | Type::Null | Type::Bool | Type::Num | Type::Str => {}
    }
}

/// Collect every record path present in the value. Each path is recorded
/// once per value (deduplicated by the caller) so counts read as
/// "fraction of records containing this path".
fn collect_paths(value: &Value, prefix: &str, out: &mut Vec<String>) {
    match value {
        Value::Object(map) => {
            for (key, child) in map.iter() {
                let path = format!("{prefix}.{key}");
                collect_paths(child, &path, out);
                out.push(path);
            }
        }
        Value::Array(elems) => {
            let path = format!("{prefix}[]");
            for child in elems {
                collect_paths(child, &path, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    #[test]
    fn counts_top_level_fields() {
        let mut cf = CountingFuser::new();
        cf.absorb(&json!({"a": 1, "b": "x"}));
        cf.absorb(&json!({"a": 2}));
        cf.absorb(&json!({"a": 3}));
        let cs = cf.finish();
        assert_eq!(cs.total, 3);
        assert_eq!(cs.path_counts["$.a"], 3);
        assert_eq!(cs.path_counts["$.b"], 1);
        assert_eq!(cs.mandatory_paths(), vec!["$.a"]);
        assert_eq!(cs.schema.to_string(), "{a: Num, b: Str?}");
    }

    #[test]
    fn nested_and_array_paths() {
        let mut cf = CountingFuser::new();
        cf.absorb(&json!({"h": {"main": "x"}, "kw": [{"rank": 1}, {"rank": 2}]}));
        let cs = cf.finish();
        assert_eq!(cs.path_counts["$.h.main"], 1);
        assert_eq!(
            cs.path_counts["$.kw[].rank"], 1,
            "array paths dedup per record"
        );
        assert_eq!(cs.path_counts["$.kw"], 1);
    }

    #[test]
    fn rows_are_sorted_by_count_then_path() {
        let mut cf = CountingFuser::new();
        cf.absorb(&json!({"a": 1, "z": 1}));
        cf.absorb(&json!({"a": 1}));
        let rows = cf.finish().rows();
        assert_eq!(rows[0].path, "$.a");
        assert_eq!(rows[0].count, 2);
        assert!((rows[0].ratio - 1.0).abs() < 1e-12);
        assert_eq!(rows[1].path, "$.z");
        assert!((rows[1].ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts_and_fuses_schema() {
        let mut p1 = CountingFuser::new();
        p1.absorb(&json!({"a": 1}));
        let mut p2 = CountingFuser::new();
        p2.absorb(&json!({"a": "x", "b": null}));

        let mut merged = p1.clone();
        merged.merge(&p2);
        let cs = merged.finish();
        assert_eq!(cs.total, 2);
        assert_eq!(cs.path_counts["$.a"], 2);
        assert_eq!(cs.path_counts["$.b"], 1);
        assert_eq!(cs.schema.to_string(), "{a: Num + Str, b: Null?}");
    }

    #[test]
    fn scalar_stream_has_no_paths() {
        let mut cf = CountingFuser::new();
        cf.absorb(&json!(1));
        cf.absorb(&json!("x"));
        let cs = cf.finish();
        assert!(cs.path_counts.is_empty());
        assert_eq!(cs.schema.to_string(), "Num + Str");
        assert!(cs.mandatory_paths().is_empty());
        assert!(cs.rows().is_empty());
    }

    #[test]
    fn empty_accumulator() {
        let cs = CountingFuser::new().finish();
        assert_eq!(cs.total, 0);
        assert!(cs.mandatory_paths().is_empty());
    }

    #[test]
    fn type_paths_match_value_paths_on_inferred_types() {
        let values = [
            json!({"a": 1, "b": "x"}),
            json!({"h": {"main": "x"}, "kw": [{"rank": 1}, {"rank": 2}]}),
            json!({"a": [1, {"b": [2]}], "c": {}}),
            json!([{"x": null}, 3]),
            json!(42),
        ];
        for v in &values {
            let mut from_value = Vec::new();
            collect_paths(v, "$", &mut from_value);
            from_value.sort_unstable();
            from_value.dedup();
            let from_type = type_paths(&crate::infer_type(v));
            assert_eq!(from_type, from_value, "paths disagree on {v}");
        }
    }
}
