//! Direct text-to-type inference over the event parser.
//!
//! The Map phase conceptually needs the value tree only to immediately
//! fold it into a type. This module fuses the two steps: types are built
//! straight from the JSON token stream, so the intermediate
//! [`Value`](typefuse_json::Value) tree is never allocated. On the
//! text-heavy NYTimes profile this removes the dominant allocation cost
//! of the Map phase (see the `parsing` bench, group `infer_only`).

use typefuse_json::events::{Event, EventParser};
use typefuse_json::{ErrorKind, ParserOptions, Result};
use typefuse_types::{ArrayType, Field, RecordType, Type};

/// Infer the type of one complete JSON text without materialising the
/// value.
///
/// Equivalent to `infer_type(&parse_value(text)?)` — property-tested —
/// but allocation-free for scalars and string *contents* (keys still
/// allocate, they become part of the type).
///
/// ```
/// use typefuse_infer::streaming::infer_type_from_str;
/// let t = infer_type_from_str(r#"{"a": 1, "b": ["x"]}"#).unwrap();
/// assert_eq!(t.to_string(), "{a: Num, b: [Str]}");
/// ```
pub fn infer_type_from_str(text: &str) -> Result<Type> {
    infer_type_from_slice(text.as_bytes())
}

/// Byte-slice variant of [`infer_type_from_str`].
pub fn infer_type_from_slice(input: &[u8]) -> Result<Type> {
    infer_with_options(input, ParserOptions::default())
}

/// Variant with explicit parser options.
pub fn infer_with_options(input: &[u8], options: ParserOptions) -> Result<Type> {
    let mut parser = EventParser::with_options(input, options);
    let ty = infer_from_events(&mut parser)?;
    parser.finish()?;
    Ok(ty)
}

enum Frame {
    Record {
        fields: Vec<Field>,
        key: Option<String>,
    },
    Array {
        elems: Vec<Type>,
    },
}

/// Fold one value's worth of events into its inferred type.
pub fn infer_from_events(events: &mut EventParser<'_>) -> Result<Type> {
    let mut stack: Vec<Frame> = Vec::new();
    loop {
        let event = match events.next() {
            Some(e) => e?,
            None => {
                return Err(typefuse_json::Error::at(
                    ErrorKind::UnexpectedEof,
                    events.source_position(),
                ))
            }
        };
        let completed: Option<Type> = match event {
            Event::Null => Some(Type::Null),
            Event::Bool(_) => Some(Type::Bool),
            Event::Number(_) => Some(Type::Num),
            Event::String(_) => Some(Type::Str),
            Event::ObjectStart => {
                stack.push(Frame::Record {
                    fields: Vec::new(),
                    key: None,
                });
                None
            }
            Event::ArrayStart => {
                stack.push(Frame::Array { elems: Vec::new() });
                None
            }
            Event::Key(k) => {
                match stack.last_mut() {
                    Some(Frame::Record { key, .. }) => *key = Some(k),
                    _ => unreachable!("Key outside object"),
                }
                None
            }
            Event::ObjectEnd => match stack.pop() {
                Some(Frame::Record { fields, .. }) => Some(Type::Record(
                    RecordType::new(fields).expect("parser enforces key uniqueness"),
                )),
                _ => unreachable!("unbalanced ObjectEnd"),
            },
            Event::ArrayEnd => match stack.pop() {
                Some(Frame::Array { elems }) => Some(Type::Array(ArrayType::new(elems))),
                _ => unreachable!("unbalanced ArrayEnd"),
            },
        };
        if let Some(ty) = completed {
            match stack.last_mut() {
                None => return Ok(ty),
                Some(Frame::Array { elems }) => elems.push(ty),
                Some(Frame::Record { fields, key }) => {
                    let name = key.take().expect("value follows a key");
                    // Under lenient options the parser admits duplicate
                    // keys; keep last-wins semantics like the tree parser.
                    match fields.iter_mut().find(|f| f.name == name) {
                        Some(existing) => existing.ty = ty,
                        None => fields.push(Field::required(name, ty)),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_type;
    use typefuse_json::parse_value;

    #[test]
    fn agrees_with_tree_inference() {
        for text in [
            "null",
            "0",
            r#""s""#,
            "{}",
            "[]",
            r#"{"a": 1, "b": ["x", {"c": null}], "d": {"e": [[true]]}}"#,
            r#"[1, "a", {"k": []}]"#,
        ] {
            let direct = infer_type_from_str(text).unwrap();
            let via_tree = infer_type(&parse_value(text).unwrap());
            assert_eq!(direct, via_tree, "for {text}");
        }
    }

    #[test]
    fn reports_parse_errors() {
        assert!(infer_type_from_str("{oops").is_err());
        assert!(infer_type_from_str("[1,]").is_err());
        assert!(infer_type_from_str("{} trailing").is_err());
        assert!(infer_type_from_str(r#"{"a":1,"a":2}"#).is_err());
        assert!(infer_type_from_str("").is_err());
    }

    #[test]
    fn lenient_options_pass_through() {
        let opts = typefuse_json::ParserOptions {
            allow_duplicate_keys: true,
            ..Default::default()
        };
        let t = infer_with_options(br#"{"a":1,"a":"x"}"#, opts).unwrap();
        // Last binding wins in lenient mode, but the *type* records the
        // surviving field once.
        assert_eq!(t.to_string(), "{a: Str}");
    }

    #[test]
    fn deep_nesting_respects_limit() {
        let deep: String = std::iter::repeat_n('[', 600)
            .chain(std::iter::repeat_n(']', 600))
            .collect();
        assert!(matches!(
            infer_type_from_str(&deep).unwrap_err().kind(),
            ErrorKind::RecursionLimitExceeded
        ));
    }
}
