//! Direct text-to-type inference over the event parser.
//!
//! The Map phase conceptually needs the value tree only to immediately
//! fold it into a type. This module fuses the two steps: types are built
//! straight from the JSON token stream, so the intermediate
//! [`Value`](typefuse_json::Value) tree is never allocated. On the
//! text-heavy NYTimes profile this removes the dominant allocation cost
//! of the Map phase (see the `parsing` bench, group `infer_only`).

use typefuse_json::events::{Event, EventParser};
use typefuse_json::{ErrorKind, ParserOptions, Result};
use typefuse_obs::Recorder;
use typefuse_types::{ArrayType, Field, RecordType, Type};

/// Infer the type of one complete JSON text without materialising the
/// value.
///
/// Equivalent to `infer_type(&parse_value(text)?)` — property-tested —
/// but allocation-free for scalars and string *contents* (keys still
/// allocate, they become part of the type).
///
/// ```
/// use typefuse_infer::streaming::infer_type_from_str;
/// let t = infer_type_from_str(r#"{"a": 1, "b": ["x"]}"#).unwrap();
/// assert_eq!(t.to_string(), "{a: Num, b: [Str]}");
/// ```
pub fn infer_type_from_str(text: &str) -> Result<Type> {
    infer_type_from_slice(text.as_bytes())
}

/// Byte-slice variant of [`infer_type_from_str`].
pub fn infer_type_from_slice(input: &[u8]) -> Result<Type> {
    infer_with_options(input, ParserOptions::default())
}

/// Variant with explicit parser options.
pub fn infer_with_options(input: &[u8], options: ParserOptions) -> Result<Type> {
    let mut parser = EventParser::with_options(input, options);
    let ty = infer_from_events(&mut parser)?;
    parser.finish()?;
    Ok(ty)
}

/// [`infer_with_options`] plus per-record metrics for the event fast
/// path. With an enabled recorder it counts:
///
/// | name                 | kind      | meaning                                  |
/// |----------------------|-----------|------------------------------------------|
/// | `infer.events`       | counter   | parse events folded                      |
/// | `infer.frames`       | histogram | peak frame-stack depth per record        |
/// | `infer.types`        | counter   | records folded to types (Map phase)      |
/// | `infer.record_width` | histogram | field count of each top-level record     |
/// | `infer.max_depth`    | gauge     | deepest inferred type seen (max-merged)  |
///
/// `infer.types` / `infer.record_width` / `infer.max_depth` mirror the
/// value-path metrics of [`crate::obs::infer_type_recorded`], so run
/// reports from either Map-phase route are directly comparable. A
/// disabled recorder makes this identical to [`infer_with_options`].
pub fn infer_with_options_recorded(
    input: &[u8],
    options: ParserOptions,
    rec: &Recorder,
) -> Result<Type> {
    if !rec.is_enabled() {
        return infer_with_options(input, options);
    }
    let mut parser = EventParser::with_options(input, options);
    let mut stats = FoldStats::default();
    let ty = fold_events(&mut parser, Some(&mut stats))?;
    parser.finish()?;
    rec.add("infer.events", stats.events);
    rec.record("infer.frames", stats.peak_frames);
    rec.add("infer.types", 1);
    if let Type::Record(r) = &ty {
        rec.record("infer.record_width", r.len() as u64);
    }
    rec.gauge_max("infer.max_depth", ty.depth() as u64);
    Ok(ty)
}

/// [`infer_type_from_str`] with the metrics of
/// [`infer_with_options_recorded`].
pub fn infer_type_from_str_recorded(text: &str, rec: &Recorder) -> Result<Type> {
    infer_with_options_recorded(text.as_bytes(), ParserOptions::default(), rec)
}

/// Per-record fold statistics (only collected with an enabled recorder).
#[derive(Debug, Default)]
struct FoldStats {
    events: u64,
    peak_frames: u64,
}

/// Fold one value's worth of events into its inferred type.
pub fn infer_from_events(events: &mut EventParser<'_>) -> Result<Type> {
    fold_events(events, None)
}

fn fold_events(events: &mut EventParser<'_>, mut stats: Option<&mut FoldStats>) -> Result<Type> {
    // In strict mode (the default) the parser rejects duplicate keys, so
    // every completed field can be pushed without looking back; only the
    // lenient mode needs last-wins overwrite semantics.
    let dedup_keys = events.options().allow_duplicate_keys;
    let first = next_or_eof(events, &mut stats)?;
    fold_value(events, first, &mut stats, dedup_keys, 0)
}

fn next_or_eof<'a>(
    events: &mut EventParser<'a>,
    stats: &mut Option<&mut FoldStats>,
) -> Result<Event<'a>> {
    match events.next_event()? {
        Some(e) => {
            if let Some(s) = stats.as_deref_mut() {
                s.events += 1;
            }
            Ok(e)
        }
        None => Err(typefuse_json::Error::at(
            ErrorKind::UnexpectedEof,
            events.source_position(),
        )),
    }
}

/// Fold the value whose first event is `event`. Recursion mirrors the
/// tree inferrer's shape, so the frame "stack" is the machine stack;
/// `depth` counts enclosing containers for the `infer.frames` metric.
/// Recursion depth is bounded by the parser's `max_depth` option.
fn fold_value<'a>(
    events: &mut EventParser<'a>,
    event: Event<'a>,
    stats: &mut Option<&mut FoldStats>,
    dedup_keys: bool,
    depth: u64,
) -> Result<Type> {
    Ok(match event {
        Event::Null => Type::Null,
        Event::Bool(_) => Type::Bool,
        Event::Number(_) => Type::Num,
        Event::String(_) => Type::Str,
        Event::ObjectStart => {
            if let Some(s) = stats.as_deref_mut() {
                s.peak_frames = s.peak_frames.max(depth + 1);
            }
            // Unlike the tree route there is no size hint; 8 covers most
            // real-world records without a mid-object regrow.
            let mut fields: Vec<Field> = Vec::with_capacity(8);
            loop {
                match next_or_eof(events, stats)? {
                    Event::ObjectEnd => break,
                    Event::Key(name) => {
                        let first = next_or_eof(events, stats)?;
                        let ty = fold_value(events, first, stats, dedup_keys, depth + 1)?;
                        // Under lenient options the parser admits
                        // duplicate keys; keep last-wins semantics like
                        // the tree parser.
                        if dedup_keys {
                            if let Some(existing) =
                                fields.iter_mut().find(|f| f.name == name.as_ref())
                            {
                                existing.ty = ty;
                                continue;
                            }
                        }
                        fields.push(Field::required(name.into_owned(), ty));
                    }
                    _ => unreachable!("parser yields only Key or ObjectEnd inside an object"),
                }
            }
            Type::Record(RecordType::new(fields).expect("parser enforces key uniqueness"))
        }
        Event::ArrayStart => {
            if let Some(s) = stats.as_deref_mut() {
                s.peak_frames = s.peak_frames.max(depth + 1);
            }
            let mut elems: Vec<Type> = Vec::new();
            loop {
                match next_or_eof(events, stats)? {
                    Event::ArrayEnd => break,
                    e => elems.push(fold_value(events, e, stats, dedup_keys, depth + 1)?),
                }
            }
            Type::Array(ArrayType::new(elems))
        }
        Event::Key(_) | Event::ObjectEnd | Event::ArrayEnd => {
            unreachable!("parser yields structurally balanced events")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_type;
    use typefuse_json::parse_value;

    #[test]
    fn agrees_with_tree_inference() {
        for text in [
            "null",
            "0",
            r#""s""#,
            "{}",
            "[]",
            r#"{"a": 1, "b": ["x", {"c": null}], "d": {"e": [[true]]}}"#,
            r#"[1, "a", {"k": []}]"#,
        ] {
            let direct = infer_type_from_str(text).unwrap();
            let via_tree = infer_type(&parse_value(text).unwrap());
            assert_eq!(direct, via_tree, "for {text}");
        }
    }

    #[test]
    fn reports_parse_errors() {
        assert!(infer_type_from_str("{oops").is_err());
        assert!(infer_type_from_str("[1,]").is_err());
        assert!(infer_type_from_str("{} trailing").is_err());
        assert!(infer_type_from_str(r#"{"a":1,"a":2}"#).is_err());
        assert!(infer_type_from_str("").is_err());
    }

    #[test]
    fn lenient_options_pass_through() {
        let opts = typefuse_json::ParserOptions {
            allow_duplicate_keys: true,
            ..Default::default()
        };
        let t = infer_with_options(br#"{"a":1,"a":"x"}"#, opts).unwrap();
        // Last binding wins in lenient mode, but the *type* records the
        // surviving field once.
        assert_eq!(t.to_string(), "{a: Str}");
    }

    #[test]
    fn recorded_fold_matches_and_counts() {
        let rec = Recorder::enabled();
        let text = r#"{"a": 1, "b": ["x", {"c": null}]}"#;
        let ty = infer_type_from_str_recorded(text, &rec).unwrap();
        assert_eq!(ty, infer_type_from_str(text).unwrap());
        let report = rec.snapshot();
        // ObjectStart, Key a, 1, Key b, ArrayStart, "x", ObjectStart,
        // Key c, null, ObjectEnd, ArrayEnd, ObjectEnd = 12 events.
        assert_eq!(report.counters["infer.events"], 12);
        assert_eq!(report.counters["infer.types"], 1);
        let frames = &report.histograms["infer.frames"];
        assert_eq!(frames.count, 1);
        assert_eq!(frames.sum, 3, "outer object, array, inner object");
        assert_eq!(report.histograms["infer.record_width"].sum, 2);
        assert_eq!(report.gauges["infer.max_depth"], ty.depth() as u64);
    }

    #[test]
    fn disabled_recorder_fold_is_identical() {
        let rec = Recorder::disabled();
        let text = r#"[{"k": [1, 2]}, null]"#;
        assert_eq!(
            infer_type_from_str_recorded(text, &rec).unwrap(),
            infer_type_from_str(text).unwrap()
        );
        assert!(rec.snapshot().counters.is_empty());
    }

    #[test]
    fn deep_nesting_respects_limit() {
        let deep: String = std::iter::repeat_n('[', 600)
            .chain(std::iter::repeat_n(']', 600))
            .collect();
        assert!(matches!(
            infer_type_from_str(&deep).unwrap_err().kind(),
            ErrorKind::RecursionLimitExceeded
        ));
    }
}
